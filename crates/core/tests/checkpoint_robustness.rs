//! Property-based robustness tests for the checkpoint formats.
//!
//! The contract under test: loading either format is transactional (any
//! failure leaves the model bit-identical to before), v2 integrity is
//! CRC-guarded (any flipped bit or truncation is rejected), and
//! round-trips restore parameters — and, for v2, the full training state
//! — bit-exactly.

use megablocks_core::checkpoint::{
    encode_v2, load_params, load_train_state, save_params, validate_checkpoint_bytes,
    CheckpointError, TrainState, VERSION_V1, VERSION_V2,
};
use megablocks_core::{DroplessMoe, MoeConfig};
use megablocks_tensor::init::seeded_rng;
use megablocks_tensor::Matrix;
use proptest::prelude::*;

fn layer(seed: u64, experts: usize) -> DroplessMoe {
    let mut rng = seeded_rng(seed);
    DroplessMoe::new(MoeConfig::new(6, 8, experts).with_block_size(4), &mut rng)
}

fn snapshot(l: &mut DroplessMoe) -> Vec<Matrix> {
    l.params_mut().iter().map(|p| p.value().clone()).collect()
}

fn assert_untouched(l: &mut DroplessMoe, before: &[Matrix]) {
    for (p, orig) in l.params_mut().iter().zip(before) {
        assert!(
            p.value().approx_eq(orig, 0.0),
            "a failed load must leave the model bit-identical"
        );
    }
}

fn v1_bytes(l: &mut DroplessMoe) -> Vec<u8> {
    let mut buf = Vec::new();
    save_params(&l.params_mut(), &mut buf).expect("in-memory save");
    buf
}

fn v2_bytes(l: &mut DroplessMoe, seed: u64) -> Vec<u8> {
    let state = train_state_for(l, seed);
    encode_v2(&l.params_mut(), &state).expect("in-memory encode")
}

fn train_state_for(l: &mut DroplessMoe, seed: u64) -> TrainState {
    let shapes: Vec<(usize, usize)> = l.params_mut().iter().map(|p| p.value().shape()).collect();
    let moment = |(i, (r, c)): (usize, (usize, usize))| {
        Matrix::from_fn(r, c, |a, b| ((seed as usize + i + a * 7 + b) as f32).sin())
    };
    TrainState {
        step: seed.wrapping_mul(3) + 1,
        opt_steps: seed + 1,
        rng_state: [seed | 1, seed ^ 7, seed.rotate_left(9) | 1, 42],
        m: shapes.iter().copied().enumerate().map(moment).collect(),
        v: shapes.iter().copied().enumerate().map(moment).collect(),
    }
}

/// Byte offset of parameter `idx`'s (rows, cols) header in a v1 stream.
fn v1_header_offset(shapes: &[(usize, usize)], idx: usize) -> usize {
    let mut pos = 4 + 4 + 8; // magic, version, count
    for &(r, c) in shapes.iter().take(idx) {
        pos += 16 + r * c * 4;
    }
    pos
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn v1_roundtrip_is_bit_exact(seed in 0u64..500, experts in 2usize..5) {
        let mut a = layer(seed, experts);
        let mut b = layer(seed + 1000, experts);
        let buf = v1_bytes(&mut a);
        prop_assert_eq!(validate_checkpoint_bytes(&buf).unwrap(), VERSION_V1);
        load_params(&mut b.params_mut(), buf.as_slice()).expect("valid stream");
        for (pa, pb) in a.params_mut().iter().zip(b.params_mut().iter()) {
            prop_assert!(pa.value().approx_eq(pb.value(), 0.0));
        }
    }

    #[test]
    fn v2_roundtrip_restores_the_full_state(seed in 0u64..500, experts in 2usize..5) {
        let mut a = layer(seed, experts);
        let mut b = layer(seed + 1000, experts);
        let state = train_state_for(&mut a, seed);
        let buf = encode_v2(&a.params_mut(), &state).expect("encode");
        prop_assert_eq!(validate_checkpoint_bytes(&buf).unwrap(), VERSION_V2);
        let loaded = load_train_state(&mut b.params_mut(), buf.as_slice()).expect("valid stream");
        prop_assert_eq!(loaded, state);
        for (pa, pb) in a.params_mut().iter().zip(b.params_mut().iter()) {
            prop_assert!(pa.value().approx_eq(pb.value(), 0.0));
        }
    }

    #[test]
    fn truncated_v1_never_loads_and_never_mutates(seed in 0u64..500, frac in 0.0f64..1.0) {
        let mut a = layer(seed, 3);
        let buf = v1_bytes(&mut a);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        let mut b = layer(seed + 1, 3);
        let before = snapshot(&mut b);
        let err = load_params(&mut b.params_mut(), &buf[..cut]).unwrap_err();
        prop_assert!(matches!(err, CheckpointError::Io(_) | CheckpointError::BadMagic), "{}", err);
        assert_untouched(&mut b, &before);
    }

    #[test]
    fn truncated_v2_fails_integrity(seed in 0u64..500, frac in 0.0f64..1.0) {
        let mut a = layer(seed, 3);
        let buf = v2_bytes(&mut a, seed);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        let err = validate_checkpoint_bytes(&buf[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CheckpointError::Corrupt(_) | CheckpointError::Io(_) | CheckpointError::BadMagic
            ),
            "{}",
            err
        );
    }

    #[test]
    fn any_flipped_bit_in_v2_is_rejected(
        seed in 0u64..500,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut a = layer(seed, 3);
        let mut buf = v2_bytes(&mut a, seed);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= 1 << bit;
        // Whatever the flip hit (magic, version, CRC, payload), the load
        // must fail and the model must be untouched.
        let err = validate_checkpoint_bytes(&buf).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CheckpointError::Corrupt(_) | CheckpointError::BadMagic | CheckpointError::BadVersion(_)
            ),
            "{}",
            err
        );
        let mut b = layer(seed + 1, 3);
        let before = snapshot(&mut b);
        prop_assert!(load_train_state(&mut b.params_mut(), buf.as_slice()).is_err());
        assert_untouched(&mut b, &before);
    }

    #[test]
    fn bad_magic_is_rejected(seed in 0u64..500, first in 0u32..255) {
        let mut a = layer(seed, 2);
        let mut buf = v1_bytes(&mut a);
        // Steer away from the one valid leading byte.
        let first = if first as u8 == b'M' { b'X' } else { first as u8 };
        buf[0] = first;
        let err = validate_checkpoint_bytes(&buf).unwrap_err();
        prop_assert!(matches!(err, CheckpointError::BadMagic), "{}", err);
    }

    #[test]
    fn unknown_versions_are_rejected(seed in 0u64..500, version in 3u32..1000) {
        let mut a = layer(seed, 2);
        let mut buf = v1_bytes(&mut a);
        buf[4..8].copy_from_slice(&version.to_le_bytes());
        let err = validate_checkpoint_bytes(&buf).unwrap_err();
        prop_assert!(matches!(err, CheckpointError::BadVersion(v) if v == version), "{}", err);
    }

    #[test]
    fn midstream_shape_mismatch_is_transactional(
        seed in 0u64..500,
        which in 0usize..6,
        wrong_cols in 100u64..1000,
    ) {
        // Corrupt one parameter's column count in an otherwise valid v1
        // stream: parameters *before* it parse fine, yet none may be
        // written to the model.
        let mut a = layer(seed, 3);
        let shapes: Vec<(usize, usize)> =
            a.params_mut().iter().map(|p| p.value().shape()).collect();
        let idx = which % shapes.len();
        let mut buf = v1_bytes(&mut a);
        let header = v1_header_offset(&shapes, idx);
        buf[header + 8..header + 16].copy_from_slice(&wrong_cols.to_le_bytes());

        let mut b = layer(seed + 1, 3);
        let before = snapshot(&mut b);
        let err = load_params(&mut b.params_mut(), buf.as_slice()).unwrap_err();
        prop_assert!(
            matches!(err, CheckpointError::Mismatch(_) | CheckpointError::Io(_)),
            "{}",
            err
        );
        assert_untouched(&mut b, &before);
    }
}

//! Chaos tests for expert-parallel fault containment and recovery.
//!
//! The fault plan is process-global, so this suite lives in its own
//! integration-test binary (its own process) and serializes every test
//! behind one mutex. Compiled only under the `chaos` feature; the
//! default build runs none of this.

#![cfg(feature = "chaos")]

use megablocks_core::{
    resilient_expert_parallel_forward, try_expert_parallel_forward, DroplessMoe, EpError, EpPolicy,
    MoeConfig,
};
use megablocks_resilience::sites::{EP_SHARD_DELAY, EP_SHARD_FAIL};
use megablocks_resilience::{clear_plan, install_plan, report, FaultPlan, INJECTED_PANIC_PREFIX};
use megablocks_tensor::init::{normal, seeded_rng};
use megablocks_tensor::Matrix;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Clears the installed plan when a test exits, pass or fail.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        clear_plan();
    }
}

fn layer(seed: u64) -> DroplessMoe {
    let mut rng = seeded_rng(seed);
    DroplessMoe::new(MoeConfig::new(6, 8, 4).with_block_size(4), &mut rng)
}

fn input(seed: u64, rows: usize) -> Matrix {
    let mut rng = seeded_rng(seed);
    normal(rows, 6, 1.0, &mut rng)
}

#[test]
fn injected_shard_failure_is_retried_to_the_same_answer() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _plan_guard = PlanGuard;
    let l = layer(1);
    let x = input(2, 20);
    let reference = l.forward(&x).output;

    install_plan(FaultPlan::seeded(7).at_calls(&EP_SHARD_FAIL, &[0]));
    let outcome =
        resilient_expert_parallel_forward(&l, &x, 2, &EpPolicy::default()).expect("recovers");

    assert_eq!(report().injected_at(&EP_SHARD_FAIL), 1);
    assert!(
        outcome.recovery.shard_retries >= 1,
        "{:?}",
        outcome.recovery
    );
    assert!(
        outcome.recovery.shards_recovered >= 1,
        "{:?}",
        outcome.recovery
    );
    assert!(!outcome.recovery.fell_back);
    assert!(
        outcome.output.approx_eq(&reference, 1e-4),
        "recovered output diverged by {}",
        outcome.output.max_abs_diff(&reference)
    );
}

#[test]
fn persistent_shard_failure_falls_back_to_single_device() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _plan_guard = PlanGuard;
    let l = layer(3);
    let x = input(4, 16);
    let reference = l.forward(&x).output;

    // Every shard attempt (first pass and all retries) fails.
    install_plan(FaultPlan::seeded(7).with_rate(&EP_SHARD_FAIL, 1.0, u64::MAX));
    let outcome =
        resilient_expert_parallel_forward(&l, &x, 2, &EpPolicy::default()).expect("falls back");

    assert!(outcome.recovery.fell_back, "{:?}", outcome.recovery);
    assert!(outcome.stats.is_none(), "fallback carries no EP stats");
    assert!(
        outcome.output.approx_eq(&reference, 1e-4),
        "fallback must equal the single-device forward"
    );
    assert!(report().injected_at(&EP_SHARD_FAIL) >= 2);
}

#[test]
fn try_forward_surfaces_the_injected_failure_as_a_structured_error() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _plan_guard = PlanGuard;
    let l = layer(5);
    let x = input(6, 12);

    install_plan(FaultPlan::seeded(7).at_calls(&EP_SHARD_FAIL, &[0]));
    let err = try_expert_parallel_forward(&l, &x, 2).expect_err("shard 0 is scheduled to fail");
    match err {
        EpError::ShardFailed { shard, reason } => {
            assert_eq!(shard, 0);
            assert!(reason.contains(INJECTED_PANIC_PREFIX), "{reason}");
        }
        other => panic!("expected ShardFailed, got {other}"),
    }
}

#[test]
fn injected_straggler_delay_is_detected_and_the_result_still_lands() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _plan_guard = PlanGuard;
    let l = layer(7);
    let x = input(8, 24);
    let reference = l.forward(&x).output;

    install_plan(
        FaultPlan::seeded(7)
            .at_calls(&EP_SHARD_DELAY, &[0])
            .delay_ms(60),
    );
    let policy = EpPolicy {
        straggler_floor_us: 5_000,
        ..EpPolicy::default()
    };
    let outcome = resilient_expert_parallel_forward(&l, &x, 4, &policy).expect("no hard fault");

    assert_eq!(report().injected_at(&EP_SHARD_DELAY), 1);
    assert!(
        outcome.recovery.stragglers_detected >= 1,
        "{:?}",
        outcome.recovery
    );
    assert!(!outcome.recovery.fell_back);
    assert_eq!(
        outcome.recovery.shard_retries, 0,
        "a straggler is not a failure"
    );
    assert!(outcome.output.approx_eq(&reference, 1e-4));
}

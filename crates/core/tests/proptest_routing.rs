//! Property-based tests for routing, permutation and the MoE layers.

use megablocks_core::{
    load_balancing_loss, padded_gather, padded_gather_backward, padded_scatter_backward,
    CapacityFactor, DroplessMoe, DroppingMoe, MoeConfig, PermuteInfo, Router, Routing,
};
use megablocks_tensor::init::{normal, seeded_rng};
use megablocks_tensor::Matrix;
use proptest::prelude::*;

fn routing_inputs() -> impl Strategy<Value = (Vec<usize>, usize, usize)> {
    // (expert assignments, num_experts, top_k)
    (1usize..6, 1usize..3).prop_flat_map(|(experts, top_k)| {
        proptest::collection::vec(0usize..experts, (top_k, 30 * top_k))
            .prop_filter("multiple of top_k", move |v| v.len() % top_k == 0)
            .prop_map(move |v| (v, experts, top_k))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permute_info_invariants((indices, experts, top_k) in routing_inputs(), align in 1usize..9) {
        let info = PermuteInfo::with_alignment(&indices, experts, top_k, align);
        // Every assignment row is unique and in range.
        let mut rows: Vec<usize> = (0..info.num_assignments()).map(|a| info.row_of(a)).collect();
        rows.sort_unstable();
        rows.dedup();
        prop_assert_eq!(rows.len(), info.num_assignments(), "destination rows must be unique");
        prop_assert!(rows.iter().all(|&r| r < info.padded_rows()));
        // Padded counts are aligned and cover the raw counts.
        for (&raw, &padded) in info.tokens_per_expert().iter().zip(info.padded_tokens_per_expert()) {
            prop_assert_eq!(padded % align, 0);
            prop_assert!(padded >= raw && padded < raw + align);
        }
        prop_assert_eq!(
            info.padded_rows(),
            info.padded_tokens_per_expert().iter().sum::<usize>()
        );
        // Rows grouped by expert are contiguous and ordered by token.
        for a in 1..info.num_assignments() {
            let (e_prev, e_cur) = (indices[a - 1], indices[a]);
            if e_prev == e_cur {
                prop_assert!(info.row_of(a) > info.row_of(a - 1));
            }
        }
    }

    #[test]
    fn gather_scatter_adjointness((indices, experts, top_k) in routing_inputs(), align in 1usize..6) {
        // <scatter(y), v> == <y, scatter^T(v)> with unit weights: gather
        // backward is the adjoint of gather, scatter of scatter.
        let info = PermuteInfo::with_alignment(&indices, experts, top_k, align);
        let h = 3;
        let n = info.num_tokens();
        let x = Matrix::from_fn(n, h, |i, j| ((i * 3 + j) as f32).sin());
        let g = padded_gather(&x, &info);
        let v = Matrix::from_fn(info.padded_rows(), h, |i, j| ((i + 2 * j) as f32).cos());
        // <gather(x), v> == <x, gather_backward(v)>
        let lhs: f32 = g.as_slice().iter().zip(v.as_slice()).map(|(a, b)| a * b).sum();
        let gb = padded_gather_backward(&v, &info);
        let rhs: f32 = x.as_slice().iter().zip(gb.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn scatter_backward_weights_match_manual((indices, experts, top_k) in routing_inputs()) {
        let info = PermuteInfo::with_alignment(&indices, experts, top_k, 4);
        let h = 2;
        let y = Matrix::from_fn(info.padded_rows(), h, |i, j| (i + j) as f32 * 0.1);
        let weights: Vec<f32> = (0..info.num_assignments()).map(|a| 0.5 + (a % 3) as f32 * 0.25).collect();
        let d_out = Matrix::from_fn(info.num_tokens(), h, |i, j| ((i * 2 + j) as f32).sin());
        let (dy, dw) = padded_scatter_backward(&d_out, &y, &info, &weights);
        for a in 0..info.num_assignments() {
            let t = info.token_of(a);
            let r = info.row_of(a);
            let manual: f32 = (0..h).map(|j| d_out[(t, j)] * y[(r, j)]).sum();
            prop_assert!((dw[a] - manual).abs() < 1e-5);
            for j in 0..h {
                prop_assert!((dy[(r, j)] - weights[a] * d_out[(t, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn router_weights_are_valid_probabilities(tokens in 1usize..20, seed in 0u64..50) {
        let mut rng = seeded_rng(seed);
        let router = Router::new(5, 4, 2, &mut rng);
        let x = normal(tokens, 5, 1.0, &mut rng);
        let r = router.forward(&x);
        prop_assert_eq!(r.expert_indices.len(), tokens * 2);
        for (a, &w) in r.weights.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&w), "assignment {a} weight {w}");
        }
        // Within a token, the k selections are distinct experts.
        for t in 0..tokens {
            let e0 = r.expert_indices[2 * t];
            let e1 = r.expert_indices[2 * t + 1];
            prop_assert_ne!(e0, e1, "token {} selected the same expert twice", t);
        }
    }

    #[test]
    fn load_balance_loss_is_minimized_by_uniformity(experts in 2usize..8, tokens in 4usize..40) {
        // Uniform probs + balanced assignment = alpha; any collapsed
        // assignment with matching probs scores higher.
        let alpha = 0.01;
        let probs = Matrix::full(tokens, experts, 1.0 / experts as f32);
        let balanced: Vec<usize> = (0..tokens).map(|t| t % experts).collect();
        let weights: Vec<f32> = balanced.iter().map(|_| 1.0 / experts as f32).collect();
        let uniform = Routing {
            probs: probs.clone(),
            expert_indices: balanced,
            weights: weights.clone(),
            top_k: 1,
        };
        let lb_uniform = load_balancing_loss(&uniform, alpha);
        prop_assert!((lb_uniform.loss - alpha).abs() < 1e-6);

        let collapsed = Routing {
            probs,
            expert_indices: vec![0; tokens],
            weights,
            top_k: 1,
        };
        let lb_collapsed = load_balancing_loss(&collapsed, alpha);
        prop_assert!(lb_collapsed.loss >= lb_uniform.loss - 1e-7);
    }

    #[test]
    fn dmoe_handles_any_token_count(tokens in 1usize..40, seed in 0u64..20) {
        let cfg = MoeConfig::new(6, 8, 3).with_block_size(4);
        let mut rng = seeded_rng(seed);
        let layer = DroplessMoe::new(cfg, &mut rng);
        let x = normal(tokens, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        prop_assert_eq!(out.output.shape(), (tokens, 6));
        prop_assert_eq!(out.stats.dropped_tokens, 0);
        prop_assert!(out.output.as_slice().iter().all(|v| v.is_finite()));
        // Padding never exceeds one block per expert.
        prop_assert!(out.stats.padding_rows < 3 * 4);
    }

    #[test]
    fn dropping_never_exceeds_capacity(tokens in 1usize..40, cf in 0.25f32..2.5, seed in 0u64..20) {
        let cfg = MoeConfig::new(6, 8, 3)
            .with_block_size(4)
            .with_capacity(CapacityFactor::Fixed(cf));
        let mut rng = seeded_rng(seed);
        let layer = DroppingMoe::new(cfg.clone(), &mut rng);
        let x = normal(tokens, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        let cap = cfg.expert_capacity(tokens, cf).max(1);
        // kept per expert <= capacity
        for (e, &assigned) in out.stats.tokens_per_expert.iter().enumerate() {
            let kept = assigned.min(cap);
            let _ = (e, kept);
            prop_assert!(assigned.saturating_sub(cap) <= out.stats.dropped_tokens);
        }
        let total_kept: usize = out
            .stats
            .tokens_per_expert
            .iter()
            .map(|&a| a.min(cap))
            .sum();
        prop_assert_eq!(total_kept + out.stats.dropped_tokens, tokens);
    }
}

//! Dropless Mixture-of-Experts layers — the layer-level contribution of the
//! MegaBlocks paper.
//!
//! The crate provides:
//!
//! * [`Router`] — the learned top-k router of Shazeer et al. (2017) used by
//!   the paper (§2.1), with full backward pass.
//! * [`load_balancing_loss`] — the Switch-Transformer auxiliary loss the
//!   paper trains with (§2.2).
//! * [`PermuteInfo`], [`padded_gather`], [`padded_scatter`] — permutation
//!   that groups tokens by expert and pads each group to a multiple of the
//!   block size, fused exactly like the custom kernels of §5.2.
//! * [`DroplessMoe`] — the paper's dMoE layer: expert computation as
//!   SDD/DSD block-sparse products over a per-step topology (Figure 6).
//! * [`DroppingMoe`] — the token-dropping baseline (GShard/Switch/Tutel
//!   formulation, §2–3) computed with batched matrix multiplication,
//!   including Tutel's dynamic capacity factor.
//! * [`DenseFfn`] — the dense FFN layer a standard Transformer uses, for
//!   the Megatron-LM baseline.
//!
//! # Example: a dMoE layer never drops tokens
//!
//! ```
//! use megablocks_core::{DroplessMoe, MoeConfig};
//! use megablocks_tensor::init::{normal, seeded_rng};
//!
//! let cfg = MoeConfig::new(16, 32, 4).with_block_size(8);
//! let mut rng = seeded_rng(0);
//! let mut layer = DroplessMoe::new(cfg, &mut rng);
//! let x = normal(24, 16, 1.0, &mut rng);
//! let out = layer.forward(&x);
//! assert_eq!(out.output.shape(), (24, 16));
//! assert_eq!(out.stats.dropped_tokens, 0); // dropless, by construction
//! ```

#![deny(missing_docs)]

pub mod checkpoint;
mod config;
mod dmoe;
mod dropping;
mod expert_choice;
mod ffn;
pub mod health;
mod loss;
mod parallel;
mod param;
mod permute;
mod router;
mod sinkhorn;
mod variable;

pub use config::{CapacityFactor, MoeConfig};
pub use dmoe::{DmoeCache, DmoeOutput, DroplessMoe};
pub use dropping::{DroppingMoe, DroppingMoeCache, DroppingMoeOutput};
pub use expert_choice::{
    ExpertChoiceAssignment, ExpertChoiceCache, ExpertChoiceMoe, ExpertChoiceOutput,
};
pub use ffn::{DenseFfn, FfnCache};
pub use loss::{load_balancing_loss, LoadBalance};
pub use parallel::{
    expert_parallel_forward, resilient_expert_parallel_forward,
    resilient_expert_parallel_forward_with_breaker, try_expert_parallel_forward, AllToAllBuffers,
    BreakerPolicy, BreakerState, EpBreaker, EpError, EpOutcome, EpPolicy, EpRecovery, EpStats,
};
pub use param::Param;
pub use permute::{
    padded_gather, padded_gather_backward, padded_scatter, padded_scatter_backward, PermuteInfo,
};
pub use router::{Router, Routing};
pub use sinkhorn::{load_imbalance, SinkhornRouter};
pub use variable::{VariableDmoeCache, VariableDmoeOutput, VariableDroplessMoe, VariableMoeConfig};

use megablocks_telemetry as telemetry;

/// Statistics recorded by an MoE layer's forward pass, used by the
/// experiments to report dropping behaviour and padding waste.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MoeStats {
    /// Token-assignments that were dropped (always 0 for dMoE).
    pub dropped_tokens: usize,
    /// Rows of padding added to satisfy block-size or capacity constraints.
    pub padding_rows: usize,
    /// Tokens assigned to each expert before dropping/padding.
    pub tokens_per_expert: Vec<usize>,
    /// The load-balancing auxiliary loss value.
    pub load_balancing_loss: f32,
    /// Rows of padding per row of real data actually processed
    /// (`padding_rows / kept assignments`; 0 when nothing was kept). For a
    /// dMoE this is the block-rounding waste of §5.2; for the dropping
    /// baseline it is the capacity-buffer waste of Figure 3A.
    pub padding_overhead: f32,
    /// Tokens each expert actually processed — after dropping, before
    /// padding. Equal to [`MoeStats::tokens_per_expert`] for dropless
    /// layers.
    pub expert_load: Vec<usize>,
}

impl MoeStats {
    /// Padding overhead as a ratio: `padding_rows / kept`, or 0.0 when no
    /// assignments were kept.
    pub(crate) fn overhead(padding_rows: usize, kept: usize) -> f32 {
        if kept == 0 {
            0.0
        } else {
            padding_rows as f32 / kept as f32
        }
    }
}

/// Shannon entropy (nats) of a count distribution: `ln(len)` when counts
/// are perfectly uniform, 0 when concentrated on one bin or empty. The
/// per-step health report uses this as its router-entropy metric.
pub fn count_entropy(counts: &[usize]) -> f32 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0f32;
    for &c in counts {
        if c > 0 {
            let p = c as f32 / total as f32;
            h -= p * p.ln();
        }
    }
    h
}

/// Records one forward pass's [`MoeStats`] into the global telemetry
/// registry (a no-op without the `telemetry` feature): the per-expert
/// token-count histogram and labelled counters, padding and dropped-token
/// counters, and the padding-overhead and router load-entropy gauges.
pub(crate) fn record_moe_stats(stats: &MoeStats) {
    let hist = telemetry::histogram("moe.tokens_per_expert");
    for (e, &c) in stats.tokens_per_expert.iter().enumerate() {
        hist.record(c as u64);
        telemetry::counter_with("moe.expert_tokens", e).add(c as u64);
    }
    telemetry::counter("moe.padding_rows").add(stats.padding_rows as u64);
    telemetry::counter("moe.dropped_tokens").add(stats.dropped_tokens as u64);
    telemetry::gauge("moe.padding_overhead").set(stats.padding_overhead as f64);
    telemetry::gauge("moe.load_entropy").set(count_entropy(&stats.tokens_per_expert) as f64);
    telemetry::gauge("moe.load_balancing_loss").set(stats.load_balancing_loss as f64);
}

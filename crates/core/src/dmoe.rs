//! The dropless-MoE (dMoE) layer — the paper's core contribution (§4, §5).
//!
//! The forward pass follows the pseudo-code of Figure 6 line for line:
//!
//! 1. route tokens to experts;
//! 2. build the block-sparse topology from the expert assignments;
//! 3. permute tokens into expert-grouped, block-padded order;
//! 4. compute the 2-layer MLP experts as an SDD followed by a DSD;
//! 5. un-permute and scale by the router confidence weights.
//!
//! The backward pass uses the four remaining products the paper lists in
//! §5.1: SDD^T and DS^TD for the second expert layer, DSD^T and DD^TS for
//! the first. No tokens are ever dropped and no expert batch is padded
//! beyond the next block boundary.

use megablocks_exec as exec;
use megablocks_resilience as resilience;
use megablocks_sparse::{ops, BlockSparseMatrix, SparseError, Topology};
use megablocks_telemetry as telemetry;
use megablocks_tensor::ops::{gelu_grad_scalar, gelu_scalar};
use megablocks_tensor::{init, Matrix};
use rand::rngs::StdRng;

use crate::{
    load_balancing_loss, padded_gather, padded_gather_backward, padded_scatter,
    padded_scatter_backward, MoeConfig, MoeStats, Param, PermuteInfo, Router, Routing,
};

/// Elements below this stay single-banded in the elementwise activation
/// plans (same rationale as the permutation kernels: pure memory traffic).
const PARALLEL_THRESHOLD: usize = 1 << 16;

/// Everything the backward pass needs from a forward invocation.
///
/// Holding the cache in a separate value (rather than layer state) keeps
/// the layer reentrant under gradient accumulation: each micro-batch owns
/// its cache.
#[derive(Debug, Clone)]
pub struct DmoeCache {
    x: Matrix,
    routing: Routing,
    permute: PermuteInfo,
    xg: Matrix,
    h_pre: BlockSparseMatrix,
    h_act: BlockSparseMatrix,
    y: Matrix,
    d_probs_aux: Matrix,
}

/// Result of [`DroplessMoe::forward`].
#[derive(Debug, Clone)]
pub struct DmoeOutput {
    /// Layer output, `num_tokens x hidden_size`.
    pub output: Matrix,
    /// Forward-pass statistics (dropping is always zero here).
    pub stats: MoeStats,
    /// Cache to pass to [`DroplessMoe::backward`].
    pub cache: DmoeCache,
}

/// The dropless Mixture-of-Experts layer.
///
/// Expert weights are stored concatenated: `w1` is
/// `hidden_size x (num_experts * ffn_hidden_size)` and `w2` is the mirror
/// shape, exactly as in Figure 6 — expert `e` owns the column (resp. row)
/// slice `e * ffn_hidden_size ..`.
#[derive(Debug, Clone)]
pub struct DroplessMoe {
    cfg: MoeConfig,
    router: Router,
    w1: Param,
    w2: Param,
}

impl DroplessMoe {
    /// Creates a dMoE layer with GPT-2-style initialization.
    ///
    /// # Panics
    ///
    /// Panics if `ffn_hidden_size` is not a multiple of the configured
    /// block size (required for whole-block expert columns, §5.2).
    pub fn new(cfg: MoeConfig, rng: &mut StdRng) -> Self {
        assert!(
            cfg.ffn_hidden_size.is_multiple_of(cfg.block_size.get()),
            "ffn_hidden_size {} must be a multiple of block size {}",
            cfg.ffn_hidden_size,
            cfg.block_size.get()
        );
        let inner = cfg.num_experts * cfg.ffn_hidden_size;
        let router = Router::new(cfg.hidden_size, cfg.num_experts, cfg.top_k, rng);
        let w1 = Param::new(init::gpt2_normal(cfg.hidden_size, inner, rng));
        let w2 = Param::new(init::gpt2_normal(inner, cfg.hidden_size, rng));
        Self {
            cfg,
            router,
            w1,
            w2,
        }
    }

    /// The layer configuration.
    pub fn config(&self) -> &MoeConfig {
        &self.cfg
    }

    /// The router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// All trainable parameters (router, w1, w2), for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![self.router.weight_mut(), &mut self.w1, &mut self.w2]
    }

    /// The first expert-layer weight (`hidden x num_experts*ffn`).
    pub fn w1(&self) -> &Param {
        &self.w1
    }

    /// The second expert-layer weight (`num_experts*ffn x hidden`).
    pub fn w2(&self) -> &Param {
        &self.w2
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.cfg.param_count()
    }

    /// Runs the dMoE forward pass on `x` (`num_tokens x hidden_size`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`, or on a sparse-kernel error
    /// (only possible with corrupted topology metadata or, under
    /// `--features sanitize`, a failed sanitizer invariant).
    pub fn forward(&self, x: &Matrix) -> DmoeOutput {
        self.try_forward(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`DroplessMoe::forward`].
    ///
    /// # Errors
    ///
    /// Returns an error if the per-step topology cannot be built or a
    /// sparse kernel rejects its inputs (including sanitizer failures under
    /// `--features sanitize`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`.
    pub fn try_forward(&self, x: &Matrix) -> Result<DmoeOutput, SparseError> {
        self.try_forward_ctx(x, &exec::Ctx::none())
    }

    /// Deadline-aware form of [`DroplessMoe::try_forward`]: the whole
    /// pass — router, permutation, and every kernel launch — runs under
    /// `ctx`, installed as the thread's ambient context for the
    /// duration, and additionally returns [`SparseError::Cancelled`]
    /// when the context trips (checked at entry, at every launch's band
    /// boundaries, and inside the tiled microkernel's panel loop). An
    /// empty context ([`exec::Ctx::none`]) inherits the caller's ambient
    /// context, making this exactly [`DroplessMoe::try_forward`].
    ///
    /// # Errors
    ///
    /// Everything [`DroplessMoe::try_forward`] returns, plus
    /// [`SparseError::Cancelled`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`.
    pub fn try_forward_ctx(&self, x: &Matrix, ctx: &exec::Ctx) -> Result<DmoeOutput, SparseError> {
        assert_eq!(
            x.cols(),
            self.cfg.hidden_size,
            "input feature size mismatch"
        );
        let _span = telemetry::span("moe.dmoe.forward");
        let _ambient = exec::cancel::enter(ctx);
        if let Some(kind) = ctx.status() {
            return Err(SparseError::Cancelled {
                op: "moe.dmoe.forward",
                kind,
            });
        }

        // (1) Assign tokens to experts.
        let routing = self.router.forward(x);

        // (2) Create the sparse matrix topology (Figure 3C).
        let permute = PermuteInfo::new(&routing, self.cfg.num_experts, self.cfg.block_size);
        let topology = Topology::for_moe(
            permute.padded_tokens_per_expert(),
            self.cfg.ffn_hidden_size,
            self.cfg.block_size,
        )?;

        // (3) Permute the tokens to group by expert.
        let xg = padded_gather(x, &permute);

        // (4) Compute the expert layers: SDD -> GeLU -> DSD.
        let (h_pre, h_act, y) = {
            let _experts = telemetry::span("moe.dmoe.experts");
            let h_pre = ops::try_sdd(&xg, self.w1.value(), &topology)?;
            // Elementwise GeLU over the nonzero blocks as a launch plan
            // into a workspace-backed buffer.
            let pre = h_pre.as_slice();
            let mut act = exec::workspace::take_zeroed(pre.len());
            let bands = exec::parallelism_for(pre.len(), PARALLEL_THRESHOLD);
            let body = |band: &mut [f32], i0: usize| {
                for (i, v) in band.iter_mut().enumerate() {
                    *v = gelu_scalar(pre[i0 + i]);
                }
            };
            exec::LaunchPlan::over_items("moe.gelu", &mut act, 1, pre.len().div_ceil(bands), &body)
                .try_launch()
                .map_err(|e| match e.kind() {
                    Some(kind) => SparseError::Cancelled {
                        op: "moe.gelu",
                        kind,
                    },
                    // Race violations keep the panicking behavior the
                    // plain `launch()` had before cancellation existed.
                    None => panic!("{e}"),
                })?;
            let h_act = BlockSparseMatrix::from_raw(&topology, act)?;
            let y = ops::try_dsd(&h_act, self.w2.value())?;
            (h_pre, h_act, y)
        };

        // (5) Un-permute the tokens and scale by router confidence.
        let mut output = padded_scatter(&y, &permute, &routing.weights);
        // Chaos injection site: an installed FaultPlan may poison the
        // layer output with a NaN here, exercising the trainer's
        // non-finite detection + rollback path. No-op without `chaos`.
        resilience::maybe_poison(&resilience::sites::KERNEL_NAN_POISON, output.as_mut_slice());

        let lb = load_balancing_loss(&routing, self.cfg.load_balance_weight);
        let stats = MoeStats {
            dropped_tokens: 0,
            padding_rows: permute.padding_rows(),
            tokens_per_expert: permute.tokens_per_expert().to_vec(),
            load_balancing_loss: lb.loss,
            padding_overhead: MoeStats::overhead(permute.padding_rows(), permute.num_assignments()),
            // Dropless: every assigned token is processed.
            expert_load: permute.tokens_per_expert().to_vec(),
        };
        crate::record_moe_stats(&stats);
        Ok(DmoeOutput {
            output,
            stats,
            cache: DmoeCache {
                x: x.clone(),
                routing,
                permute,
                xg,
                h_pre,
                h_act,
                y,
                d_probs_aux: lb.d_probs,
            },
        })
    }

    /// Inference-only forward pass: [`DroplessMoe::infer_ctx`] with an
    /// empty context (inheriting the caller's ambient context).
    ///
    /// # Errors
    ///
    /// Same as [`DroplessMoe::infer_ctx`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`.
    pub fn infer(&self, x: &Matrix) -> Result<Matrix, SparseError> {
        self.infer_ctx(x, &exec::Ctx::none())
    }

    /// Deadline-aware inference-only forward pass.
    ///
    /// Numerically identical to [`DroplessMoe::try_forward_ctx`] — same
    /// kernels, same accumulation order, bit-identical outputs — but it
    /// keeps nothing for a backward pass: no [`DmoeCache`] is built, the
    /// input is never cloned, the GeLU runs in place on the SDD output
    /// blocks instead of into a second activation buffer, and every
    /// intermediate (gathered tokens, expert activations, expert
    /// outputs) is recycled through the workspace arena the moment its
    /// last consumer finishes. A steady-state serving loop therefore
    /// allocates nothing per request beyond the returned output matrix.
    ///
    /// The whole pass runs under `ctx` (installed as the thread's
    /// ambient context), checked at entry, at every launch's band
    /// boundaries, and inside the tiled microkernel's panel loop — a
    /// serving engine can hang a per-batch deadline or cancel token here
    /// and the pass unwinds with [`SparseError::Cancelled`] mid-kernel.
    ///
    /// # Errors
    ///
    /// Everything [`DroplessMoe::try_forward`] returns, plus
    /// [`SparseError::Cancelled`] when `ctx` trips.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`.
    pub fn infer_ctx(&self, x: &Matrix, ctx: &exec::Ctx) -> Result<Matrix, SparseError> {
        assert_eq!(
            x.cols(),
            self.cfg.hidden_size,
            "input feature size mismatch"
        );
        let _span = telemetry::span("moe.dmoe.infer");
        let _ambient = exec::cancel::enter(ctx);
        if let Some(kind) = ctx.status() {
            return Err(SparseError::Cancelled {
                op: "moe.dmoe.infer",
                kind,
            });
        }

        // Route, build the per-batch topology, and gather — identical to
        // the training path.
        let routing = self.router.forward(x);
        let permute = PermuteInfo::new(&routing, self.cfg.num_experts, self.cfg.block_size);
        let topology = Topology::for_moe(
            permute.padded_tokens_per_expert(),
            self.cfg.ffn_hidden_size,
            self.cfg.block_size,
        )?;
        let xg = padded_gather(x, &permute);

        // SDD -> in-place GeLU -> DSD, recycling each intermediate as
        // soon as its last consumer is done with it.
        let mut h = ops::try_sdd(&xg, self.w1.value(), &topology)?;
        xg.recycle();
        {
            let data = h.as_mut_slice();
            let bands = exec::parallelism_for(data.len(), PARALLEL_THRESHOLD);
            let per_band = data.len().div_ceil(bands);
            let body = |band: &mut [f32], _i0: usize| {
                for v in band.iter_mut() {
                    *v = gelu_scalar(*v);
                }
            };
            exec::LaunchPlan::over_items("moe.gelu", data, 1, per_band, &body)
                .try_launch()
                .map_err(|e| match e.kind() {
                    Some(kind) => SparseError::Cancelled {
                        op: "moe.gelu",
                        kind,
                    },
                    None => panic!("{e}"),
                })?;
        }
        let y = ops::try_dsd(&h, self.w2.value())?;
        h.recycle();

        let output = padded_scatter(&y, &permute, &routing.weights);
        y.recycle();
        Ok(output)
    }

    /// Runs the backward pass for one forward invocation.
    ///
    /// Accumulates parameter gradients (including the load-balancing loss
    /// contribution to the router) and returns the gradient with respect to
    /// the layer input.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the forward output shape.
    pub fn backward(&mut self, cache: &DmoeCache, d_out: &Matrix) -> Matrix {
        assert_eq!(
            d_out.shape(),
            (cache.permute.num_tokens(), self.cfg.hidden_size),
            "d_out shape mismatch"
        );
        let _span = telemetry::span("moe.dmoe.backward");

        // Un-permutation backward: per-assignment output grads and router
        // confidence-weight grads.
        let (dy, d_weights) =
            padded_scatter_backward(d_out, &cache.y, &cache.permute, &cache.routing.weights);

        // Second expert layer: data grad SDD^T, weight grad DS^TD.
        let dh_act = ops::sdd_t(&dy, self.w2.value(), cache.h_pre.topology());
        let dw2 = ops::dst_d(&cache.h_act, &dy);
        self.w2.accumulate(&dw2);
        dw2.recycle();
        dy.recycle();

        // Activation backward on the stored blocks, as a launch plan over
        // the nonzero elements.
        let mut dh = dh_act;
        {
            let pre = cache.h_pre.as_slice();
            let data = dh.as_mut_slice();
            let bands = exec::parallelism_for(data.len(), PARALLEL_THRESHOLD);
            let per_band = data.len().div_ceil(bands);
            let body = |band: &mut [f32], i0: usize| {
                for (i, g) in band.iter_mut().enumerate() {
                    *g *= gelu_grad_scalar(pre[i0 + i]);
                }
            };
            exec::LaunchPlan::over_items("moe.gelu_grad", data, 1, per_band, &body).launch();
        }

        // First expert layer: data grad DSD^T, weight grad DD^TS.
        let dxg = ops::dsd_t(&dh, self.w1.value());
        let dw1 = ops::ddt_s(&cache.xg, &dh);
        self.w1.accumulate(&dw1);
        dw1.recycle();
        dh.recycle();

        // Permutation backward.
        let mut dx = padded_gather_backward(&dxg, &cache.permute);
        dxg.recycle();

        // Router backward (confidence weights + load-balancing loss).
        let dx_router = self.router.backward(
            &cache.x,
            &cache.routing,
            &d_weights,
            Some(&cache.d_probs_aux),
        );
        exec::workspace::recycle(d_weights);
        dx.add_assign(&dx_router);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_tensor::init::seeded_rng;
    use megablocks_tensor::ops::cross_entropy;

    fn small_layer(seed: u64) -> (DroplessMoe, StdRng) {
        let cfg = MoeConfig::new(6, 8, 3).with_block_size(4);
        let mut rng = seeded_rng(seed);
        let layer = DroplessMoe::new(cfg, &mut rng);
        (layer, rng)
    }

    #[test]
    fn forward_shapes_and_no_drops() {
        let (layer, mut rng) = small_layer(1);
        let x = init::normal(10, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        assert_eq!(out.output.shape(), (10, 6));
        assert_eq!(out.stats.dropped_tokens, 0);
        assert_eq!(out.stats.tokens_per_expert.iter().sum::<usize>(), 10);
        assert!(out.stats.load_balancing_loss > 0.0);
        // Dropless: every assignment is processed, so load == assignments
        // and overhead is exactly the padding-to-data ratio.
        assert_eq!(out.stats.expert_load, out.stats.tokens_per_expert);
        let want_overhead = out.stats.padding_rows as f32 / 10.0;
        assert!((out.stats.padding_overhead - want_overhead).abs() < 1e-6);
        // Padding rounds each nonzero expert group to a multiple of 4.
        for (&t, &p) in out
            .stats
            .tokens_per_expert
            .iter()
            .zip(out.cache.permute.padded_tokens_per_expert())
        {
            assert_eq!(p, t.div_ceil(4) * 4);
        }
    }

    #[test]
    fn dmoe_matches_per_expert_dense_reference() {
        // Compute the same MoE densely: for each token, run its expert MLP
        // directly and scale by the router weight.
        let (layer, mut rng) = small_layer(2);
        let x = init::normal(9, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        let routing = &out.cache.routing;
        let ffn = layer.cfg.ffn_hidden_size;

        for t in 0..9 {
            let e = routing.expert_indices[t];
            let w = routing.weights[t];
            // h = gelu(x_t @ w1_e); y = h @ w2_e
            let mut h = vec![0.0f32; ffn];
            for (j, hv) in h.iter_mut().enumerate() {
                let col = e * ffn + j;
                let mut acc = 0.0;
                for p in 0..6 {
                    acc += x[(t, p)] * layer.w1.value()[(p, col)];
                }
                *hv = gelu_scalar(acc);
            }
            for q in 0..6 {
                let mut acc = 0.0;
                for (j, hv) in h.iter().enumerate() {
                    acc += hv * layer.w2.value()[(e * ffn + j, q)];
                }
                let want = w * acc;
                let got = out.output[(t, q)];
                assert!(
                    (got - want).abs() < 1e-4,
                    "token {t} feature {q}: got {got}, want {want}"
                );
            }
        }
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        // Objective: cross-entropy of a linear readout of the layer output,
        // plus the load-balancing loss (which backward includes).
        let (mut layer, mut rng) = small_layer(3);
        let x = init::normal(8, 6, 0.5, &mut rng);
        let targets: Vec<usize> = (0..8).map(|t| t % 3).collect();
        let readout = init::normal(6, 3, 0.5, &mut rng);

        let objective = |layer: &DroplessMoe, x: &Matrix| -> f32 {
            let out = layer.forward(x);
            let logits = megablocks_tensor::matmul(&out.output, &readout);
            let (ce, _) = cross_entropy(&logits, &targets, None);
            ce + out.stats.load_balancing_loss
        };

        let out = layer.forward(&x);
        let logits = megablocks_tensor::matmul(&out.output, &readout);
        let (_, dlogits) = cross_entropy(&logits, &targets, None);
        let d_out = megablocks_tensor::matmul_nt(&dlogits, &readout);
        let dx = layer.backward(&out.cache, &d_out);

        let base_assignment = out.cache.routing.expert_indices.clone();
        let eps = 2e-3;

        // Input gradient, skipping points where routing flips.
        let mut checked = 0;
        for i in 0..x.rows() {
            for j in [0usize, 3, 5] {
                let mut xp = x.clone();
                xp[(i, j)] += eps;
                let mut xm = x.clone();
                xm[(i, j)] -= eps;
                if layer.router().forward(&xp).expert_indices != base_assignment
                    || layer.router().forward(&xm).expert_indices != base_assignment
                {
                    continue;
                }
                let num = (objective(&layer, &xp) - objective(&layer, &xm)) / (2.0 * eps);
                let ana = dx[(i, j)];
                assert!(
                    (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                    "dx({i},{j}): numeric {num}, analytic {ana}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 10, "only {checked} stable finite-diff points");

        // Weight gradients: spot-check a handful of entries of w1, w2 and
        // the router weight.
        let spots_w1 = [(0usize, 0usize), (3, 7), (5, 20)];
        for &(r, c) in &spots_w1 {
            let ana = layer.w1.grad()[(r, c)];
            let orig = layer.w1.value()[(r, c)];
            layer.w1.value_mut()[(r, c)] = orig + eps;
            let fp = objective(&layer, &x);
            layer.w1.value_mut()[(r, c)] = orig - eps;
            let fm = objective(&layer, &x);
            layer.w1.value_mut()[(r, c)] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                "dw1({r},{c}): numeric {num}, analytic {ana}"
            );
        }
        let spots_w2 = [(0usize, 0usize), (10, 3), (23, 5)];
        for &(r, c) in &spots_w2 {
            let ana = layer.w2.grad()[(r, c)];
            let orig = layer.w2.value()[(r, c)];
            layer.w2.value_mut()[(r, c)] = orig + eps;
            let fp = objective(&layer, &x);
            layer.w2.value_mut()[(r, c)] = orig - eps;
            let fm = objective(&layer, &x);
            layer.w2.value_mut()[(r, c)] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                "dw2({r},{c}): numeric {num}, analytic {ana}"
            );
        }
        for &(r, c) in &[(1usize, 0usize), (4, 2)] {
            let ana = layer.router.weight().grad()[(r, c)];
            let orig = layer.router.weight().value()[(r, c)];
            layer.router.weight_mut().value_mut()[(r, c)] = orig + eps;
            let routing_p = layer.router().forward(&x).expert_indices.clone();
            let fp = objective(&layer, &x);
            layer.router.weight_mut().value_mut()[(r, c)] = orig - eps;
            let routing_m = layer.router().forward(&x).expert_indices.clone();
            let fm = objective(&layer, &x);
            layer.router.weight_mut().value_mut()[(r, c)] = orig;
            if routing_p != base_assignment || routing_m != base_assignment {
                continue;
            }
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                "d_router({r},{c}): numeric {num}, analytic {ana}"
            );
        }
    }

    #[test]
    fn top2_routing_sums_two_experts() {
        let cfg = MoeConfig::new(6, 8, 3).with_block_size(4).with_top_k(2);
        let mut rng = seeded_rng(5);
        let layer = DroplessMoe::new(cfg, &mut rng);
        let x = init::normal(5, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        assert_eq!(out.cache.routing.expert_indices.len(), 10);
        assert_eq!(out.output.shape(), (5, 6));
        // Total assignments = tokens * 2.
        assert_eq!(out.stats.tokens_per_expert.iter().sum::<usize>(), 10);
    }

    #[test]
    fn infer_is_bit_identical_to_forward() {
        // Same kernels, same accumulation order: the inference-only path
        // must reproduce the training forward exactly, not approximately.
        let (layer, mut rng) = small_layer(7);
        let x = init::normal(11, 6, 1.0, &mut rng);
        let trained = layer.forward(&x);
        let inferred = layer.infer(&x).unwrap();
        assert_eq!(inferred.shape(), (11, 6));
        assert_eq!(
            inferred.as_slice(),
            trained.output.as_slice(),
            "infer diverged from forward"
        );
    }

    #[test]
    fn infer_recycles_intermediates_through_the_workspace() {
        let (layer, mut rng) = small_layer(8);
        let x = init::normal(12, 6, 1.0, &mut rng);
        let warm = layer.infer(&x).unwrap();
        warm.recycle();
        let before = exec::workspace::stats();
        let out = layer.infer(&x).unwrap();
        let after = exec::workspace::stats();
        assert!(
            after.hits > before.hits,
            "steady-state infer should reuse the arena: {before:?} -> {after:?}"
        );
        out.recycle();
    }

    #[test]
    fn infer_ctx_respects_an_expired_deadline() {
        let (layer, mut rng) = small_layer(9);
        let x = init::normal(8, 6, 1.0, &mut rng);
        let ctx = exec::Ctx::none().with_deadline(exec::Deadline::after(std::time::Duration::ZERO));
        match layer.infer_ctx(&x, &ctx) {
            Err(SparseError::Cancelled { kind, .. }) => {
                assert_eq!(kind, exec::CancelKind::DeadlineExceeded);
            }
            other => panic!("expected deadline cancellation, got {other:?}"),
        }
    }

    #[test]
    fn infer_ctx_respects_a_cancelled_token() {
        let (layer, mut rng) = small_layer(10);
        let x = init::normal(8, 6, 1.0, &mut rng);
        let token = exec::CancelToken::new();
        token.cancel();
        let ctx = exec::Ctx::none().with_token(&token);
        match layer.infer_ctx(&x, &ctx) {
            Err(SparseError::Cancelled { op, kind }) => {
                assert_eq!(op, "moe.dmoe.infer");
                assert_eq!(kind, exec::CancelKind::Cancelled);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn gradient_accumulation_is_additive() {
        let (mut layer, mut rng) = small_layer(6);
        let x = init::normal(6, 6, 1.0, &mut rng);
        let d = Matrix::full(6, 6, 0.1);
        let out1 = layer.forward(&x);
        let _ = layer.backward(&out1.cache, &d);
        let g1 = layer.w1.grad().clone();
        let out2 = layer.forward(&x);
        let _ = layer.backward(&out2.cache, &d);
        let g2 = layer.w1.grad().clone();
        let mut doubled = g1.clone();
        doubled.scale(2.0);
        assert!(g2.approx_eq(&doubled, 1e-4));
    }
}

use megablocks_tensor::Matrix;

/// A trainable parameter: a value matrix plus its accumulated gradient.
///
/// Layers accumulate gradients into [`Param::grad`] during `backward`; the
/// optimizer consumes them through [`Param::value`]/[`Param::grad`] pairs
/// and calls [`Param::zero_grad`] after each update — the same contract
/// Megatron-LM's fused optimizer has with its layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    value: Matrix,
    grad: Matrix,
}

impl Param {
    /// Wraps an initial value; the gradient starts at zero with the same
    /// shape.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// The current parameter value.
    pub fn value(&self) -> &Matrix {
        &self.value
    }

    /// Mutable access to the value (used by the optimizer).
    pub fn value_mut(&mut self) -> &mut Matrix {
        &mut self.value
    }

    /// The accumulated gradient.
    pub fn grad(&self) -> &Matrix {
        &self.grad
    }

    /// Mutable access to the gradient (used by layers to accumulate).
    pub fn grad_mut(&mut self) -> &mut Matrix {
        &mut self.grad
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the value.
    pub fn accumulate(&mut self, g: &Matrix) {
        self.grad.add_assign(g);
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.accumulate(&Matrix::full(2, 2, 1.5));
        p.accumulate(&Matrix::full(2, 2, 0.5));
        assert!(p.grad().approx_eq(&Matrix::full(2, 2, 2.0), 1e-6));
        p.zero_grad();
        assert_eq!(p.grad().max_abs(), 0.0);
        assert_eq!(p.count(), 4);
    }
}

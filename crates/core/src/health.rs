//! Per-step MoE health reporting.
//!
//! The paper's dropless claim is a *quality-of-routing* claim: no
//! dropped tokens, bounded padding waste, balanced expert load. Scalar
//! telemetry (counters/gauges) only shows end-of-run totals, so this
//! module keeps a per-step record of the routing health signals —
//! expert-load imbalance factor, padding overhead, drop rate, router
//! entropy and throughput — which the trainer appends after every
//! optimizer step and the bench binaries aggregate to
//! `results/health_<cmd>.json`.
//!
//! Recording is gated on the `telemetry` feature (via
//! [`telemetry::is_enabled`]); without it every call is a cheap early
//! return and no memory accumulates.

use std::io;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use megablocks_telemetry as telemetry;
use megablocks_telemetry::json::Json;

/// Routing-health signals for one optimizer step, aggregated across the
/// model's MoE layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthRecord {
    /// Optimizer step index (0-based).
    pub step: u64,
    /// Worst expert-load imbalance across layers: max expert load over
    /// mean expert load (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Padding rows per kept assignment row, summed over layers
    /// (§5.2 block-rounding waste; 0 for an exact fit).
    pub padding_overhead: f64,
    /// Dropped token-assignments over total assignments (always 0 for a
    /// dropless MoE; nonzero only for the dropping baselines).
    pub drop_rate: f64,
    /// Mean Shannon entropy (nats) of the per-expert token counts
    /// across layers; `ln(num_experts)` when routing is uniform.
    pub router_entropy: f64,
    /// End-to-end training throughput for the step.
    pub tokens_per_sec: f64,
}

fn records() -> &'static Mutex<Vec<HealthRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<HealthRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Appends one step's health record (no-op unless the `telemetry`
/// feature is enabled).
pub fn record_step(record: HealthRecord) {
    if !telemetry::is_enabled() {
        return;
    }
    records()
        .lock()
        .expect("health records poisoned")
        .push(record);
}

/// Copies out every recorded step, in recording order.
pub fn health_snapshot() -> Vec<HealthRecord> {
    records().lock().expect("health records poisoned").clone()
}

/// Clears the recorded steps (tests and multi-run binaries).
pub fn reset_health() {
    records().lock().expect("health records poisoned").clear();
}

/// Aggregate view over a run's [`HealthRecord`]s.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HealthSummary {
    /// Number of recorded steps.
    pub steps: u64,
    /// Mean per-step imbalance factor.
    pub mean_imbalance: f64,
    /// Worst per-step imbalance factor.
    pub max_imbalance: f64,
    /// Mean padding overhead.
    pub mean_padding_overhead: f64,
    /// Worst per-step drop rate.
    pub max_drop_rate: f64,
    /// Mean router entropy (nats).
    pub mean_router_entropy: f64,
    /// Mean throughput (tokens/sec).
    pub mean_tokens_per_sec: f64,
}

/// Summarizes a slice of records (all-zero summary for an empty run).
pub fn summarize(records: &[HealthRecord]) -> HealthSummary {
    if records.is_empty() {
        return HealthSummary::default();
    }
    let n = records.len() as f64;
    let mut s = HealthSummary {
        steps: records.len() as u64,
        ..HealthSummary::default()
    };
    for r in records {
        s.mean_imbalance += r.imbalance / n;
        s.max_imbalance = s.max_imbalance.max(r.imbalance);
        s.mean_padding_overhead += r.padding_overhead / n;
        s.max_drop_rate = s.max_drop_rate.max(r.drop_rate);
        s.mean_router_entropy += r.router_entropy / n;
        s.mean_tokens_per_sec += r.tokens_per_sec / n;
    }
    s
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders records as the `health_<cmd>.json` document: a summary block
/// plus one object per step.
pub fn render_health_json(records: &[HealthRecord]) -> String {
    use std::fmt::Write as _;
    let s = summarize(records);
    let mut out = String::new();
    out.push_str("{\n\"report\":\"moe_health\",\n\"summary\":{");
    let _ = write!(
        out,
        "\"steps\":{},\"mean_imbalance\":{},\"max_imbalance\":{},\
         \"mean_padding_overhead\":{},\"max_drop_rate\":{},\
         \"mean_router_entropy\":{},\"mean_tokens_per_sec\":{}",
        s.steps,
        fmt_f64(s.mean_imbalance),
        fmt_f64(s.max_imbalance),
        fmt_f64(s.mean_padding_overhead),
        fmt_f64(s.max_drop_rate),
        fmt_f64(s.mean_router_entropy),
        fmt_f64(s.mean_tokens_per_sec)
    );
    out.push_str("},\n\"records\":[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"step\":{},\"imbalance\":{},\"padding_overhead\":{},\
             \"drop_rate\":{},\"router_entropy\":{},\"tokens_per_sec\":{}}}",
            r.step,
            fmt_f64(r.imbalance),
            fmt_f64(r.padding_overhead),
            fmt_f64(r.drop_rate),
            fmt_f64(r.router_entropy),
            fmt_f64(r.tokens_per_sec)
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a `health_<cmd>.json` document back into its records (the
/// health CLI and tests use this).
pub fn parse_health_json(src: &str) -> Result<Vec<HealthRecord>, String> {
    let doc = Json::parse(src)?;
    if doc.get("report").and_then(Json::as_str) != Some("moe_health") {
        return Err("not a moe_health report".to_string());
    }
    let rows = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("missing records array")?;
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let num = |key: &str| {
            row.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record {i}: missing number {key:?}"))
        };
        out.push(HealthRecord {
            step: num("step")? as u64,
            imbalance: num("imbalance")?,
            padding_overhead: num("padding_overhead")?,
            drop_rate: num("drop_rate")?,
            router_entropy: num("router_entropy")?,
            tokens_per_sec: num("tokens_per_sec")?,
        });
    }
    Ok(out)
}

/// Writes the current health records to `path` (parent directories are
/// created). No-op returning `Ok` when recording is disabled or no
/// steps were recorded.
pub fn export_health_json(path: impl AsRef<Path>) -> io::Result<()> {
    let records = health_snapshot();
    if !telemetry::is_enabled() || records.is_empty() {
        return Ok(());
    }
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, render_health_json(&records))?;
    eprintln!("telemetry: wrote {}", path.display());
    Ok(())
}

/// Renders a short human-readable table for a slice of records (the
/// `megablocks-bench health` summarizer).
pub fn render_health_summary(records: &[HealthRecord]) -> String {
    use std::fmt::Write as _;
    let s = summarize(records);
    let mut out = String::new();
    let _ = writeln!(out, "================ moe health ================");
    let _ = writeln!(out, "steps                 {:>12}", s.steps);
    let _ = writeln!(out, "mean imbalance        {:>12.4}", s.mean_imbalance);
    let _ = writeln!(out, "max imbalance         {:>12.4}", s.max_imbalance);
    let _ = writeln!(
        out,
        "mean padding overhead {:>12.4}",
        s.mean_padding_overhead
    );
    let _ = writeln!(out, "max drop rate         {:>12.4}", s.max_drop_rate);
    let _ = writeln!(out, "mean router entropy   {:>12.4}", s.mean_router_entropy);
    let _ = writeln!(out, "mean tokens/sec       {:>12.1}", s.mean_tokens_per_sec);
    let _ = writeln!(out, "============================================");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: u64, imb: f64) -> HealthRecord {
        HealthRecord {
            step,
            imbalance: imb,
            padding_overhead: 0.25,
            drop_rate: 0.0,
            router_entropy: 1.2,
            tokens_per_sec: 1000.0,
        }
    }

    #[test]
    fn health_json_round_trips() {
        let records = vec![rec(0, 1.0), rec(1, 2.5), rec(2, 1.5)];
        let json = render_health_json(&records);
        let back = parse_health_json(&json).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn summary_aggregates() {
        let s = summarize(&[rec(0, 1.0), rec(1, 3.0)]);
        assert_eq!(s.steps, 2);
        assert!((s.mean_imbalance - 2.0).abs() < 1e-12);
        assert_eq!(s.max_imbalance, 3.0);
        assert!((s.mean_padding_overhead - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_run_summarizes_to_zero() {
        assert_eq!(summarize(&[]), HealthSummary::default());
        let json = render_health_json(&[]);
        assert_eq!(parse_health_json(&json).unwrap(), Vec::new());
    }

    #[test]
    fn parse_rejects_other_reports() {
        assert!(parse_health_json("{\"report\":\"other\",\"records\":[]}").is_err());
    }
}

//! Variable-sized experts — the §4.1 extension the paper points at:
//!
//! > "In this formulation, we could also relax the constraint on the
//! > number of columns in each block to build MoE layers with variable
//! > sized experts, as is shown in Figure 3C."
//!
//! [`VariableDroplessMoe`] is a dropless MoE whose experts may each have a
//! different FFN width. The block-diagonal topology simply gets a
//! per-expert block-*column* count to match its per-expert block-row
//! count; the SDD/DSD kernel family needs no changes at all — which is
//! exactly the point the paper makes about the flexibility of the
//! block-sparse formulation.

use megablocks_sparse::{ops, BlockSize, BlockSparseMatrix, Topology};
use megablocks_tensor::ops::{gelu_grad_scalar, gelu_scalar};
use megablocks_tensor::{init, Matrix};
use rand::rngs::StdRng;

use crate::{
    load_balancing_loss, padded_gather, padded_gather_backward, padded_scatter,
    padded_scatter_backward, MoeStats, Param, PermuteInfo, Router, Routing,
};

/// Configuration of a variable-sized-expert dMoE layer.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableMoeConfig {
    /// Token feature dimension.
    pub hidden_size: usize,
    /// FFN hidden width of each expert (one entry per expert; each must
    /// be a multiple of the block size).
    pub ffn_sizes: Vec<usize>,
    /// Experts per token.
    pub top_k: usize,
    /// Sparsity block size.
    pub block_size: BlockSize,
    /// Load-balancing loss coefficient.
    pub load_balance_weight: f32,
}

impl VariableMoeConfig {
    /// Creates a config with top-1 routing and load-balance weight 0.01.
    pub fn new(hidden_size: usize, ffn_sizes: Vec<usize>, block_size: usize) -> Self {
        Self {
            hidden_size,
            ffn_sizes,
            top_k: 1,
            block_size: BlockSize::new(block_size).expect("block size must be nonzero"),
            load_balance_weight: 0.01,
        }
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.ffn_sizes.len()
    }

    /// Total FFN width across experts (the inner dimension of `w1`).
    pub fn inner_dim(&self) -> usize {
        self.ffn_sizes.iter().sum()
    }

    /// Column offset of expert `e` in the concatenated weights.
    pub fn ffn_offset(&self, e: usize) -> usize {
        self.ffn_sizes[..e].iter().sum()
    }
}

/// Forward cache for [`VariableDroplessMoe::backward`].
#[derive(Debug, Clone)]
pub struct VariableDmoeCache {
    x: Matrix,
    routing: Routing,
    permute: PermuteInfo,
    xg: Matrix,
    h_pre: BlockSparseMatrix,
    h_act: BlockSparseMatrix,
    y: Matrix,
    d_probs_aux: Matrix,
}

/// Result of [`VariableDroplessMoe::forward`].
#[derive(Debug, Clone)]
pub struct VariableDmoeOutput {
    /// Layer output, `num_tokens x hidden_size`.
    pub output: Matrix,
    /// Forward statistics.
    pub stats: MoeStats,
    /// Cache for the backward pass.
    pub cache: VariableDmoeCache,
}

/// A dropless MoE whose experts have individually sized FFNs.
#[derive(Debug, Clone)]
pub struct VariableDroplessMoe {
    cfg: VariableMoeConfig,
    router: Router,
    w1: Param,
    w2: Param,
}

impl VariableDroplessMoe {
    /// Creates the layer.
    ///
    /// # Panics
    ///
    /// Panics if any expert's FFN size is zero or not a multiple of the
    /// block size, or if there are no experts.
    pub fn new(cfg: VariableMoeConfig, rng: &mut StdRng) -> Self {
        assert!(!cfg.ffn_sizes.is_empty(), "need at least one expert");
        for (e, &f) in cfg.ffn_sizes.iter().enumerate() {
            assert!(
                f > 0 && f % cfg.block_size.get() == 0,
                "expert {e} ffn size {f} must be a nonzero multiple of block size {}",
                cfg.block_size.get()
            );
        }
        let inner = cfg.inner_dim();
        let router = Router::new(cfg.hidden_size, cfg.num_experts(), cfg.top_k, rng);
        let w1 = Param::new(init::gpt2_normal(cfg.hidden_size, inner, rng));
        let w2 = Param::new(init::gpt2_normal(inner, cfg.hidden_size, rng));
        Self {
            cfg,
            router,
            w1,
            w2,
        }
    }

    /// The layer configuration.
    pub fn config(&self) -> &VariableMoeConfig {
        &self.cfg
    }

    /// The router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// All trainable parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![self.router.weight_mut(), &mut self.w1, &mut self.w2]
    }

    /// The variable-width block-diagonal topology for the given padded
    /// per-expert token counts (Figure 3C with both dimensions variable).
    fn topology(&self, padded_tokens_per_expert: &[usize]) -> Topology {
        let bs = self.cfg.block_size.get();
        let rows_blocks: Vec<usize> = padded_tokens_per_expert.iter().map(|&t| t / bs).collect();
        let cols_blocks: Vec<usize> = self.cfg.ffn_sizes.iter().map(|&f| f / bs).collect();
        Topology::block_diagonal(&rows_blocks, &cols_blocks, self.cfg.block_size)
            .expect("aligned by construction")
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`.
    pub fn forward(&self, x: &Matrix) -> VariableDmoeOutput {
        assert_eq!(
            x.cols(),
            self.cfg.hidden_size,
            "input feature size mismatch"
        );
        let routing = self.router.forward(x);
        let permute = PermuteInfo::new(&routing, self.cfg.num_experts(), self.cfg.block_size);
        let topology = self.topology(permute.padded_tokens_per_expert());
        let xg = padded_gather(x, &permute);
        let h_pre = ops::sdd(&xg, self.w1.value(), &topology);
        let h_act = h_pre.map(gelu_scalar);
        let y = ops::dsd(&h_act, self.w2.value());
        let output = padded_scatter(&y, &permute, &routing.weights);
        let lb = load_balancing_loss(&routing, self.cfg.load_balance_weight);
        let stats = MoeStats {
            dropped_tokens: 0,
            padding_rows: permute.padding_rows(),
            tokens_per_expert: permute.tokens_per_expert().to_vec(),
            load_balancing_loss: lb.loss,
            padding_overhead: MoeStats::overhead(permute.padding_rows(), permute.num_assignments()),
            expert_load: permute.tokens_per_expert().to_vec(),
        };
        crate::record_moe_stats(&stats);
        VariableDmoeOutput {
            output,
            stats,
            cache: VariableDmoeCache {
                x: x.clone(),
                routing,
                permute,
                xg,
                h_pre,
                h_act,
                y,
                d_probs_aux: lb.d_probs,
            },
        }
    }

    /// Backward pass; accumulates parameter gradients and returns the
    /// input gradient.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the forward output shape.
    pub fn backward(&mut self, cache: &VariableDmoeCache, d_out: &Matrix) -> Matrix {
        assert_eq!(
            d_out.shape(),
            (cache.permute.num_tokens(), self.cfg.hidden_size),
            "d_out shape mismatch"
        );
        let (dy, d_weights) =
            padded_scatter_backward(d_out, &cache.y, &cache.permute, &cache.routing.weights);
        let dh_act = ops::sdd_t(&dy, self.w2.value(), cache.h_pre.topology());
        self.w2.accumulate(&ops::dst_d(&cache.h_act, &dy));
        let mut dh = dh_act;
        for (g, &pre) in dh.as_mut_slice().iter_mut().zip(cache.h_pre.as_slice()) {
            *g *= gelu_grad_scalar(pre);
        }
        let dxg = ops::dsd_t(&dh, self.w1.value());
        self.w1.accumulate(&ops::ddt_s(&cache.xg, &dh));
        let mut dx = padded_gather_backward(&dxg, &cache.permute);
        let dx_router = self.router.backward(
            &cache.x,
            &cache.routing,
            &d_weights,
            Some(&cache.d_probs_aux),
        );
        dx.add_assign(&dx_router);
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_tensor::init::seeded_rng;

    fn layer(seed: u64) -> (VariableDroplessMoe, StdRng) {
        // Three experts of widths 4, 8 and 12 (block size 4).
        let cfg = VariableMoeConfig::new(6, vec![4, 8, 12], 4);
        let mut rng = seeded_rng(seed);
        let l = VariableDroplessMoe::new(cfg, &mut rng);
        (l, rng)
    }

    #[test]
    fn forward_shapes_and_stats() {
        let (l, mut rng) = layer(1);
        let x = init::normal(13, 6, 1.0, &mut rng);
        let out = l.forward(&x);
        assert_eq!(out.output.shape(), (13, 6));
        assert_eq!(out.stats.dropped_tokens, 0);
        assert_eq!(out.stats.tokens_per_expert.iter().sum::<usize>(), 13);
    }

    #[test]
    fn equal_widths_match_the_uniform_layer() {
        // With all experts the same width, the variable layer must compute
        // exactly what DroplessMoe computes (same seed -> same weights).
        use crate::{DroplessMoe, MoeConfig};
        let mut r1 = seeded_rng(2);
        let var = VariableDroplessMoe::new(VariableMoeConfig::new(6, vec![8, 8, 8], 4), &mut r1);
        let mut r2 = seeded_rng(2);
        let uni = DroplessMoe::new(MoeConfig::new(6, 8, 3).with_block_size(4), &mut r2);
        let mut rng = seeded_rng(3);
        let x = init::normal(10, 6, 1.0, &mut rng);
        let a = var.forward(&x);
        let b = uni.forward(&x);
        assert!(
            a.output.approx_eq(&b.output, 1e-5),
            "diff {}",
            a.output.max_abs_diff(&b.output)
        );
    }

    #[test]
    fn variable_widths_match_per_expert_dense_reference() {
        let (l, mut rng) = layer(4);
        let x = init::normal(9, 6, 1.0, &mut rng);
        let out = l.forward(&x);
        let routing = &out.cache.routing;
        for t in 0..9 {
            let e = routing.expert_indices[t];
            let w = routing.weights[t];
            let off = l.cfg.ffn_offset(e);
            let width = l.cfg.ffn_sizes[e];
            let mut h = vec![0.0f32; width];
            for (j, hv) in h.iter_mut().enumerate() {
                let mut acc = 0.0;
                for p in 0..6 {
                    acc += x[(t, p)] * l.w1.value()[(p, off + j)];
                }
                *hv = gelu_scalar(acc);
            }
            for q in 0..6 {
                let mut acc = 0.0;
                for (j, hv) in h.iter().enumerate() {
                    acc += hv * l.w2.value()[(off + j, q)];
                }
                let want = w * acc;
                assert!(
                    (out.output[(t, q)] - want).abs() < 1e-4,
                    "token {t} feature {q}"
                );
            }
        }
    }

    #[test]
    fn backward_matches_finite_difference_on_weights() {
        let (mut l, mut rng) = layer(5);
        let x = init::normal(7, 6, 0.6, &mut rng);
        let w = init::normal(7, 6, 0.5, &mut rng);
        let objective = |l: &VariableDroplessMoe, x: &Matrix| -> f32 {
            let out = l.forward(x);
            out.output
                .as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
                + out.stats.load_balancing_loss
        };
        let out = l.forward(&x);
        let _ = l.backward(&out.cache, &w);
        let eps = 2e-3;
        for &(r, c) in &[(0usize, 0usize), (2, 9), (5, 23)] {
            let ana = l.w1.grad()[(r, c)];
            let orig = l.w1.value()[(r, c)];
            l.w1.value_mut()[(r, c)] = orig + eps;
            let fp = objective(&l, &x);
            l.w1.value_mut()[(r, c)] = orig - eps;
            let fm = objective(&l, &x);
            l.w1.value_mut()[(r, c)] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                "dw1({r},{c}): numeric {num}, analytic {ana}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of block size")]
    fn misaligned_ffn_size_rejected() {
        let mut rng = seeded_rng(6);
        let _ = VariableDroplessMoe::new(VariableMoeConfig::new(6, vec![4, 6], 4), &mut rng);
    }
}

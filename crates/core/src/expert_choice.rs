//! Expert-choice routing (Zhou et al. 2022) — the related-work routing
//! algorithm the paper discusses in §7: instead of each token picking its
//! top-k experts, each *expert* picks its top-`capacity` tokens. Load is
//! perfectly balanced by construction, but a token may be picked by zero
//! experts (the residual carries it) or by several.
//!
//! The paper conjectures that improved routing algorithms *complement*
//! block-sparse expert computation; this module demonstrates it: the
//! expert-choice layer reuses the same topology/SDD/DSD machinery as
//! [`crate::DroplessMoe`], only the assignment logic changes.

use megablocks_sparse::{ops, BlockSparseMatrix, Topology};
use megablocks_tensor::ops::{gelu_grad_scalar, gelu_scalar, softmax_rows, softmax_rows_backward};
use megablocks_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::rngs::StdRng;

use crate::{MoeConfig, MoeStats, Param};

/// One expert-choice assignment: expert `expert` picked token `token`
/// with router probability `weight`, placing it at `slot` in the expert's
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpertChoiceAssignment {
    /// The selected token.
    pub token: usize,
    /// The selecting expert.
    pub expert: usize,
    /// Buffer slot within the expert (0..capacity).
    pub slot: usize,
    /// Router probability of the (token, expert) pair.
    pub weight: f32,
}

/// Forward cache for [`ExpertChoiceMoe::backward`].
#[derive(Debug, Clone)]
pub struct ExpertChoiceCache {
    x: Matrix,
    probs: Matrix,
    assignments: Vec<ExpertChoiceAssignment>,
    padded_capacity: usize,
    xg: Matrix,
    h_pre: BlockSparseMatrix,
    h_act: BlockSparseMatrix,
    y: Matrix,
}

/// Result of [`ExpertChoiceMoe::forward`].
#[derive(Debug, Clone)]
pub struct ExpertChoiceOutput {
    /// Layer output; tokens picked by no expert produce zero rows.
    pub output: Matrix,
    /// Forward statistics. `dropped_tokens` counts tokens selected by no
    /// expert (the failure mode §7 notes this router still has).
    pub stats: MoeStats,
    /// Cache for the backward pass.
    pub cache: ExpertChoiceCache,
}

/// A block-sparse MoE layer with expert-choice routing.
///
/// `capacity_per_expert = num_tokens * top_k / num_experts` tokens are
/// selected by each expert (`top_k` plays the role of the average number
/// of experts per token).
#[derive(Debug, Clone)]
pub struct ExpertChoiceMoe {
    cfg: MoeConfig,
    router_weight: Param,
    w1: Param,
    w2: Param,
}

impl ExpertChoiceMoe {
    /// Creates the layer with GPT-2-style initialization.
    ///
    /// # Panics
    ///
    /// Panics if `ffn_hidden_size` is not a multiple of the block size.
    pub fn new(cfg: MoeConfig, rng: &mut StdRng) -> Self {
        assert!(
            cfg.ffn_hidden_size.is_multiple_of(cfg.block_size.get()),
            "ffn_hidden_size must be a multiple of the block size"
        );
        let inner = cfg.num_experts * cfg.ffn_hidden_size;
        Self {
            router_weight: Param::new(init::gpt2_normal(cfg.hidden_size, cfg.num_experts, rng)),
            w1: Param::new(init::gpt2_normal(cfg.hidden_size, inner, rng)),
            w2: Param::new(init::gpt2_normal(inner, cfg.hidden_size, rng)),
            cfg,
        }
    }

    /// The layer configuration.
    pub fn config(&self) -> &MoeConfig {
        &self.cfg
    }

    /// All trainable parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.router_weight, &mut self.w1, &mut self.w2]
    }

    /// Expert capacity for `num_tokens` inputs:
    /// `ceil(num_tokens * top_k / num_experts)`, at least 1.
    pub fn capacity(&self, num_tokens: usize) -> usize {
        (num_tokens * self.cfg.top_k)
            .div_ceil(self.cfg.num_experts)
            .max(1)
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`.
    pub fn forward(&self, x: &Matrix) -> ExpertChoiceOutput {
        assert_eq!(
            x.cols(),
            self.cfg.hidden_size,
            "input feature size mismatch"
        );
        let num_tokens = x.rows();
        let e = self.cfg.num_experts;
        let capacity = self.capacity(num_tokens);
        let bs = self.cfg.block_size;
        let padded_capacity = bs.round_up(capacity);

        // Scores: per-token softmax over experts, then each expert picks
        // its top-capacity tokens down its probability column.
        let logits = matmul(x, self.router_weight.value());
        let probs = softmax_rows(&logits);
        let mut assignments = Vec::with_capacity(e * capacity);
        for expert in 0..e {
            let mut order: Vec<usize> = (0..num_tokens).collect();
            order.sort_by(|&a, &b| {
                probs[(b, expert)]
                    .partial_cmp(&probs[(a, expert)])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for (slot, &token) in order.iter().take(capacity).enumerate() {
                assignments.push(ExpertChoiceAssignment {
                    token,
                    expert,
                    slot,
                    weight: probs[(token, expert)],
                });
            }
        }

        // Every expert has exactly `padded_capacity` rows: a *uniform*
        // block-diagonal topology.
        let topology = Topology::for_moe(&vec![padded_capacity; e], self.cfg.ffn_hidden_size, bs)
            .expect("aligned by construction");

        // Gather into expert-major order.
        let mut xg = Matrix::zeros(e * padded_capacity, self.cfg.hidden_size);
        for a in &assignments {
            xg.row_mut(a.expert * padded_capacity + a.slot)
                .copy_from_slice(x.row(a.token));
        }

        let h_pre = ops::sdd(&xg, self.w1.value(), &topology);
        let h_act = h_pre.map(gelu_scalar);
        let y = ops::dsd(&h_act, self.w2.value());

        // Scatter back with probability weighting; tokens picked by
        // multiple experts sum their contributions.
        let mut output = Matrix::zeros(num_tokens, self.cfg.hidden_size);
        let mut picked = vec![false; num_tokens];
        for a in &assignments {
            picked[a.token] = true;
            let src = y.row(a.expert * padded_capacity + a.slot);
            let dst = output.row_mut(a.token);
            for (o, s) in dst.iter_mut().zip(src) {
                *o += a.weight * s;
            }
        }
        let unpicked = picked.iter().filter(|&&p| !p).count();

        let mut tokens_per_expert = vec![0usize; e];
        for a in &assignments {
            tokens_per_expert[a.expert] += 1;
        }
        let stats = MoeStats {
            dropped_tokens: unpicked,
            padding_rows: e * padded_capacity - assignments.len(),
            load_balancing_loss: 0.0, // balance is guaranteed; no aux loss
            padding_overhead: MoeStats::overhead(
                e * padded_capacity - assignments.len(),
                assignments.len(),
            ),
            // Expert choice processes exactly what each expert picked.
            expert_load: tokens_per_expert.clone(),
            tokens_per_expert,
        };
        crate::record_moe_stats(&stats);
        ExpertChoiceOutput {
            output,
            stats,
            cache: ExpertChoiceCache {
                x: x.clone(),
                probs,
                assignments,
                padded_capacity,
                xg,
                h_pre,
                h_act,
                y,
            },
        }
    }

    /// Backward pass; accumulates parameter gradients and returns the
    /// input gradient.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the forward output shape.
    pub fn backward(&mut self, cache: &ExpertChoiceCache, d_out: &Matrix) -> Matrix {
        let hidden = self.cfg.hidden_size;
        assert_eq!(
            d_out.shape(),
            (cache.x.rows(), hidden),
            "d_out shape mismatch"
        );
        let pc = cache.padded_capacity;

        // Un-permutation backward: per-assignment expert-output grads and
        // router probability grads.
        let mut dy = Matrix::zeros(cache.y.rows(), hidden);
        let mut d_probs = Matrix::zeros(cache.probs.rows(), cache.probs.cols());
        for a in &cache.assignments {
            let row = a.expert * pc + a.slot;
            let d_row = d_out.row(a.token);
            let y_row = cache.y.row(row);
            d_probs[(a.token, a.expert)] +=
                d_row.iter().zip(y_row).map(|(d, v)| d * v).sum::<f32>();
            let dst = dy.row_mut(row);
            for (o, d) in dst.iter_mut().zip(d_row) {
                *o = a.weight * d;
            }
        }

        // Expert MLP backward through the sparse kernels.
        let dh_act = ops::sdd_t(&dy, self.w2.value(), cache.h_pre.topology());
        self.w2.accumulate(&ops::dst_d(&cache.h_act, &dy));
        let mut dh = dh_act;
        for (g, &pre) in dh.as_mut_slice().iter_mut().zip(cache.h_pre.as_slice()) {
            *g *= gelu_grad_scalar(pre);
        }
        let dxg = ops::dsd_t(&dh, self.w1.value());
        self.w1.accumulate(&ops::ddt_s(&cache.xg, &dh));

        // Gather backward.
        let mut dx = Matrix::zeros(cache.x.rows(), hidden);
        for a in &cache.assignments {
            let src = dxg.row(a.expert * pc + a.slot);
            let dst = dx.row_mut(a.token);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }

        // Router backward through the softmax (selection treated as
        // non-differentiable, like top-k in token-choice routing).
        let d_logits = softmax_rows_backward(&cache.probs, &d_probs);
        self.router_weight
            .accumulate(&matmul_tn(&cache.x, &d_logits));
        dx.add_assign(&matmul_nt(&d_logits, self.router_weight.value()));
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_tensor::init::seeded_rng;

    fn layer(seed: u64) -> (ExpertChoiceMoe, StdRng) {
        let cfg = MoeConfig::new(6, 8, 3).with_block_size(4);
        let mut rng = seeded_rng(seed);
        let l = ExpertChoiceMoe::new(cfg, &mut rng);
        (l, rng)
    }

    #[test]
    fn load_is_perfectly_balanced() {
        let (l, mut rng) = layer(1);
        let x = init::normal(30, 6, 1.0, &mut rng);
        let out = l.forward(&x);
        let cap = l.capacity(30);
        assert!(
            out.stats.tokens_per_expert.iter().all(|&t| t == cap),
            "{:?}",
            out.stats.tokens_per_expert
        );
    }

    #[test]
    fn unpicked_tokens_emit_zero_rows() {
        let (l, mut rng) = layer(2);
        let x = init::normal(24, 6, 1.0, &mut rng);
        let out = l.forward(&x);
        let mut picked = [false; 24];
        for a in &out.cache.assignments {
            picked[a.token] = true;
        }
        assert_eq!(
            out.stats.dropped_tokens,
            picked.iter().filter(|&&p| !p).count()
        );
        for (t, &p) in picked.iter().enumerate() {
            if !p {
                assert!(out.output.row(t).iter().all(|&v| v == 0.0), "token {t}");
            }
        }
    }

    #[test]
    fn tokens_may_be_selected_by_multiple_experts() {
        // With top_k = num_experts, capacity = num_tokens and every expert
        // selects every token.
        let cfg = MoeConfig::new(6, 8, 3).with_block_size(4).with_top_k(3);
        let mut rng = seeded_rng(3);
        let l = ExpertChoiceMoe::new(cfg, &mut rng);
        let x = init::normal(5, 6, 1.0, &mut rng);
        let out = l.forward(&x);
        assert_eq!(out.cache.assignments.len(), 3 * 5);
        assert_eq!(out.stats.dropped_tokens, 0);
    }

    #[test]
    fn matches_dense_per_assignment_reference() {
        let (l, mut rng) = layer(4);
        let x = init::normal(12, 6, 1.0, &mut rng);
        let out = l.forward(&x);
        let ffn = 8;
        let mut want = Matrix::zeros(12, 6);
        for a in &out.cache.assignments {
            let mut h = vec![0.0f32; ffn];
            for (j, hv) in h.iter_mut().enumerate() {
                let mut acc = 0.0;
                for p in 0..6 {
                    acc += x[(a.token, p)] * l.w1.value()[(p, a.expert * ffn + j)];
                }
                *hv = gelu_scalar(acc);
            }
            for q in 0..6 {
                let mut acc = 0.0;
                for (j, hv) in h.iter().enumerate() {
                    acc += hv * l.w2.value()[(a.expert * ffn + j, q)];
                }
                want[(a.token, q)] += a.weight * acc;
            }
        }
        assert!(
            out.output.approx_eq(&want, 1e-4),
            "diff {}",
            out.output.max_abs_diff(&want)
        );
    }

    #[test]
    fn backward_weight_grads_match_finite_difference() {
        let (mut l, mut rng) = layer(5);
        let x = init::normal(9, 6, 0.7, &mut rng);
        let w = init::normal(9, 6, 0.5, &mut rng);
        let objective = |l: &ExpertChoiceMoe, x: &Matrix| -> f32 {
            let out = l.forward(x);
            out.output
                .as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let out = l.forward(&x);
        let base_sel: Vec<(usize, usize)> = out
            .cache
            .assignments
            .iter()
            .map(|a| (a.token, a.expert))
            .collect();
        let _ = l.backward(&out.cache, &w);
        let eps = 2e-3;
        for &(r, c) in &[(0usize, 2usize), (3, 11), (5, 20)] {
            let ana = l.w1.grad()[(r, c)];
            let orig = l.w1.value()[(r, c)];
            l.w1.value_mut()[(r, c)] = orig + eps;
            let fp = objective(&l, &x);
            l.w1.value_mut()[(r, c)] = orig - eps;
            let fm = objective(&l, &x);
            l.w1.value_mut()[(r, c)] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-2 * (1.0 + num.abs()),
                "dw1({r},{c}): numeric {num}, analytic {ana}"
            );
        }
        // Router gradient check on a selection-stable perturbation.
        for &(r, c) in &[(1usize, 0usize), (4, 2)] {
            let ana = l.router_weight.grad()[(r, c)];
            let orig = l.router_weight.value()[(r, c)];
            l.router_weight.value_mut()[(r, c)] = orig + eps;
            let sel_p: Vec<(usize, usize)> = l
                .forward(&x)
                .cache
                .assignments
                .iter()
                .map(|a| (a.token, a.expert))
                .collect();
            let fp = objective(&l, &x);
            l.router_weight.value_mut()[(r, c)] = orig - eps;
            let sel_m: Vec<(usize, usize)> = l
                .forward(&x)
                .cache
                .assignments
                .iter()
                .map(|a| (a.token, a.expert))
                .collect();
            let fm = objective(&l, &x);
            l.router_weight.value_mut()[(r, c)] = orig;
            if sel_p != base_sel || sel_m != base_sel {
                continue; // selection flipped; finite diff invalid
            }
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 6e-2 * (1.0 + num.abs()),
                "d_router({r},{c}): numeric {num}, analytic {ana}"
            );
        }
    }
}

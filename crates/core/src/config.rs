use megablocks_sparse::BlockSize;

/// Expert-capacity policy for the token-dropping MoE baseline (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityFactor {
    /// Fixed capacity factor: each expert accepts
    /// `ceil(num_tokens / num_experts * factor)` tokens; the rest drop.
    Fixed(f32),
    /// Tutel's dynamic capacity factor (Hwang et al. 2022): capacity is set
    /// per step to the maximum expert load, so no tokens drop — at the cost
    /// of padding every expert to the worst-case load.
    Dynamic,
}

/// Configuration of an MoE layer, shared by [`crate::DroplessMoe`] and
/// [`crate::DroppingMoe`].
///
/// Mirrors the hyperparameters of the paper's Table 2 models:
/// `num_experts = 64`, `top_k = 1`, experts are 2-layer MLPs with the
/// original FFN dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeConfig {
    /// Model (token feature) dimension.
    pub hidden_size: usize,
    /// Hidden dimension of each expert MLP.
    pub ffn_hidden_size: usize,
    /// Number of experts.
    pub num_experts: usize,
    /// Number of experts each token is routed to.
    pub top_k: usize,
    /// Sparsity block size for the dMoE formulation.
    pub block_size: BlockSize,
    /// Coefficient of the load-balancing auxiliary loss (Switch
    /// Transformer uses 0.01).
    pub load_balance_weight: f32,
    /// Capacity policy used by the token-dropping baseline. Ignored by
    /// [`crate::DroplessMoe`].
    pub capacity: CapacityFactor,
}

impl MoeConfig {
    /// Creates a config with `top_k = 1`, the paper's 128x128 block size,
    /// load-balance weight 0.01 and capacity factor 1.0.
    pub fn new(hidden_size: usize, ffn_hidden_size: usize, num_experts: usize) -> Self {
        Self {
            hidden_size,
            ffn_hidden_size,
            num_experts,
            top_k: 1,
            block_size: BlockSize::PAPER,
            load_balance_weight: 0.01,
            capacity: CapacityFactor::Fixed(1.0),
        }
    }

    /// Sets `top_k`.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds `num_experts`.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        assert!(
            top_k >= 1 && top_k <= self.num_experts,
            "top_k must be in 1..=num_experts"
        );
        self.top_k = top_k;
        self
    }

    /// Sets the sparsity block size (the dMoE pads each expert's tokens to
    /// a multiple of this).
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or does not divide `ffn_hidden_size`.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        let bs = BlockSize::new(block_size).expect("block size must be nonzero");
        assert!(
            self.ffn_hidden_size.is_multiple_of(bs.get()),
            "block size {} must divide ffn_hidden_size {}",
            bs.get(),
            self.ffn_hidden_size
        );
        self.block_size = bs;
        self
    }

    /// Sets the load-balancing loss coefficient.
    pub fn with_load_balance_weight(mut self, w: f32) -> Self {
        self.load_balance_weight = w;
        self
    }

    /// Sets the capacity policy for the dropping baseline.
    pub fn with_capacity(mut self, capacity: CapacityFactor) -> Self {
        self.capacity = capacity;
        self
    }

    /// Expert capacity in tokens for `num_tokens` inputs under a fixed
    /// factor: `ceil(num_tokens / num_experts * factor)` (paper §2.2,
    /// scaled by `top_k` assignments).
    pub fn expert_capacity(&self, num_tokens: usize, factor: f32) -> usize {
        let expected = (num_tokens * self.top_k) as f32 / self.num_experts as f32;
        (expected * factor).ceil() as usize
    }

    /// Number of trainable parameters in one MoE layer
    /// (`router + num_experts * 2 * hidden * ffn`).
    pub fn param_count(&self) -> usize {
        self.hidden_size * self.num_experts
            + self.num_experts * 2 * self.hidden_size * self.ffn_hidden_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let cfg = MoeConfig::new(512, 2048, 64);
        assert_eq!(cfg.top_k, 1);
        assert_eq!(cfg.block_size, BlockSize::PAPER);
        assert_eq!(cfg.capacity, CapacityFactor::Fixed(1.0));
    }

    #[test]
    fn expert_capacity_formula() {
        let cfg = MoeConfig::new(8, 16, 4);
        // 100 tokens, 4 experts, cf 1.0 -> 25
        assert_eq!(cfg.expert_capacity(100, 1.0), 25);
        // cf 1.5 -> 37.5 -> 38
        assert_eq!(cfg.expert_capacity(100, 1.5), 38);
        // top-2 doubles the expected assignments
        let cfg2 = MoeConfig::new(8, 16, 4).with_top_k(2);
        assert_eq!(cfg2.expert_capacity(100, 1.0), 50);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn block_size_must_divide_ffn() {
        let _ = MoeConfig::new(8, 10, 2).with_block_size(4);
    }

    #[test]
    fn param_count_matches_hand_calc() {
        let cfg = MoeConfig::new(4, 8, 3);
        assert_eq!(cfg.param_count(), 4 * 3 + 3 * 2 * 4 * 8);
    }
}

//! Sinkhorn routing — the BASE-layer approximation of Clark et al. (2022)
//! discussed in the paper's §7.
//!
//! BASE layers (Lewis et al. 2021) route by solving a linear assignment
//! problem that maximizes total token-expert affinity under a perfectly
//! balanced assignment; Clark et al. replace the exact (and slow) solver
//! with a few Sinkhorn-normalization iterations over the score matrix.
//! The result is *approximately* balanced — which is why Clark et al.
//! still train with capacity factor 2 — and the paper positions dropless
//! computation as complementary: with MegaBlocks kernels the leftover
//! imbalance costs only its actual FLOPs.
//!
//! [`SinkhornRouter::forward`] produces the same [`Routing`] structure as
//! the learned top-1 router, so it drops into the dMoE pipeline
//! unchanged; the backward pass differentiates through the plain softmax
//! confidence weights (the Sinkhorn plan itself is treated as a
//! non-differentiable assignment, as in Megatron-LM's implementation).

use megablocks_tensor::ops::{softmax_rows, softmax_rows_backward};
use megablocks_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::rngs::StdRng;

use crate::{Param, Routing};

/// A router that balances assignments with Sinkhorn iterations.
#[derive(Debug, Clone)]
pub struct SinkhornRouter {
    weight: Param,
    iterations: usize,
    temperature: f32,
}

impl SinkhornRouter {
    /// Creates a Sinkhorn router (top-1 only, as in Clark et al.).
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0` or `temperature <= 0`.
    pub fn new(
        hidden_size: usize,
        num_experts: usize,
        iterations: usize,
        temperature: f32,
        rng: &mut StdRng,
    ) -> Self {
        assert!(iterations > 0, "need at least one Sinkhorn iteration");
        assert!(temperature > 0.0, "temperature must be positive");
        Self {
            weight: Param::new(init::gpt2_normal(hidden_size, num_experts, rng)),
            iterations,
            temperature,
        }
    }

    /// The projection weight.
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access for the optimizer.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// Runs the Sinkhorn normalization on a score matrix: alternately
    /// scale columns to sum `tokens/experts` and rows to sum 1.
    fn sinkhorn_plan(&self, logits: &Matrix) -> Matrix {
        let tokens = logits.rows();
        let experts = logits.cols();
        let target_col = tokens as f32 / experts as f32;
        let mut p = logits.map(|v| (v / self.temperature).exp());
        for _ in 0..self.iterations {
            // Column normalization.
            let mut col_sums = vec![0.0f32; experts];
            for i in 0..tokens {
                for (s, v) in col_sums.iter_mut().zip(p.row(i)) {
                    *s += v;
                }
            }
            for i in 0..tokens {
                for (v, s) in p.row_mut(i).iter_mut().zip(&col_sums) {
                    if *s > 0.0 {
                        *v *= target_col / s;
                    }
                }
            }
            // Row normalization.
            for i in 0..tokens {
                let sum: f32 = p.row(i).iter().sum();
                if sum > 0.0 {
                    let inv = 1.0 / sum;
                    for v in p.row_mut(i) {
                        *v *= inv;
                    }
                }
            }
        }
        p
    }

    /// Routes a batch of tokens: assignment from the Sinkhorn plan's
    /// row-argmax, confidence weights from the plain softmax (the
    /// differentiable path).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the router's hidden size.
    pub fn forward(&self, x: &Matrix) -> Routing {
        let logits = matmul(x, self.weight.value());
        let probs = softmax_rows(&logits);
        let plan = self.sinkhorn_plan(&logits);
        let mut expert_indices = Vec::with_capacity(x.rows());
        let mut weights = Vec::with_capacity(x.rows());
        for t in 0..x.rows() {
            let row = plan.row(t);
            let e = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            expert_indices.push(e);
            weights.push(probs[(t, e)]);
        }
        Routing {
            probs,
            expert_indices,
            weights,
            top_k: 1,
        }
    }

    /// Backward pass (identical contract to [`crate::Router::backward`]).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the forward pass.
    pub fn backward(
        &mut self,
        x: &Matrix,
        routing: &Routing,
        d_weights: &[f32],
        d_probs_extra: Option<&Matrix>,
    ) -> Matrix {
        assert_eq!(d_weights.len(), routing.expert_indices.len());
        let mut d_probs = match d_probs_extra {
            Some(m) => m.clone(),
            None => Matrix::zeros(routing.probs.rows(), routing.probs.cols()),
        };
        for (t, (&e, &dw)) in routing.expert_indices.iter().zip(d_weights).enumerate() {
            d_probs[(t, e)] += dw;
        }
        let d_logits = softmax_rows_backward(&routing.probs, &d_probs);
        self.weight.accumulate(&matmul_tn(x, &d_logits));
        matmul_nt(&d_logits, self.weight.value())
    }
}

/// Max-over-mean load imbalance of an assignment histogram (1.0 =
/// perfectly balanced).
pub fn load_imbalance(tokens_per_expert: &[usize]) -> f64 {
    let total: usize = tokens_per_expert.iter().sum();
    if total == 0 || tokens_per_expert.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / tokens_per_expert.len() as f64;
    let max = *tokens_per_expert.iter().max().expect("nonempty") as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Router;
    use megablocks_tensor::init::seeded_rng;

    #[test]
    fn sinkhorn_is_more_balanced_than_greedy_top1() {
        let mut rng = seeded_rng(1);
        let hidden = 16;
        let experts = 8;
        let greedy = Router::new(hidden, experts, 1, &mut rng);
        let mut rng2 = seeded_rng(1);
        let sinkhorn = SinkhornRouter::new(hidden, experts, 8, 1.0, &mut rng2);
        // Skewed inputs: a common bias direction makes greedy routing
        // collapse onto few experts.
        let mut x = init::normal(256, hidden, 1.0, &mut rng);
        for i in 0..x.rows() {
            for v in x.row_mut(i).iter_mut().take(4) {
                *v += 2.0;
            }
        }
        let ig = load_imbalance(&greedy.forward(&x).tokens_per_expert());
        let is = load_imbalance(&sinkhorn.forward(&x).tokens_per_expert());
        assert!(
            is < ig,
            "sinkhorn imbalance {is:.2} should beat greedy {ig:.2}"
        );
        assert!(is < 2.0, "sinkhorn imbalance {is:.2} should be near 1");
    }

    #[test]
    fn approximate_balance_is_not_perfect() {
        // Clark et al. §7: the approximation is no longer guaranteed to
        // avoid imbalance — verify it's *approximately* balanced, not
        // exactly (hence their capacity factor 2, hence dropless value).
        let mut rng = seeded_rng(2);
        let sinkhorn = SinkhornRouter::new(12, 6, 4, 1.0, &mut rng);
        let x = init::normal(120, 12, 1.5, &mut rng);
        let counts = sinkhorn.forward(&x).tokens_per_expert();
        let imb = load_imbalance(&counts);
        assert!((1.0..2.5).contains(&imb), "imbalance {imb}");
        assert_eq!(counts.iter().sum::<usize>(), 120);
    }

    #[test]
    fn plan_marginals_converge() {
        let mut rng = seeded_rng(3);
        let router = SinkhornRouter::new(8, 4, 24, 1.0, &mut rng);
        let x = init::normal(32, 8, 1.0, &mut rng);
        let logits = matmul(&x, router.weight().value());
        let plan = router.sinkhorn_plan(&logits);
        // Rows sum to 1 (last normalization is row-wise).
        for t in 0..32 {
            let s: f32 = plan.row(t).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {t} sums to {s}");
        }
        // Columns approximately sum to tokens/experts.
        for e in 0..4 {
            let s: f32 = (0..32).map(|t| plan[(t, e)]).sum();
            assert!((s - 8.0).abs() < 1.0, "column {e} sums to {s}");
        }
    }

    #[test]
    fn backward_accumulates_gradients() {
        let mut rng = seeded_rng(4);
        let mut router = SinkhornRouter::new(6, 3, 4, 1.0, &mut rng);
        let x = init::normal(10, 6, 1.0, &mut rng);
        let routing = router.forward(&x);
        let d_weights = vec![0.1f32; 10];
        let dx = router.backward(&x, &routing, &d_weights, None);
        assert_eq!(dx.shape(), (10, 6));
        assert!(router.weight().grad().max_abs() > 0.0);
    }

    #[test]
    fn imbalance_helper_edges() {
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[0, 0]), 1.0);
        assert_eq!(load_imbalance(&[4, 4, 4, 4]), 1.0);
        assert_eq!(load_imbalance(&[8, 0, 0, 0]), 4.0);
    }
}

//! The dense feed-forward layer of a standard Transformer — the layer that
//! MoE layers replace (paper §2), used by the Megatron-LM dense baseline.

use megablocks_tensor::ops::{add_bias, bias_backward, gelu, gelu_backward};
use megablocks_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::rngs::StdRng;

use crate::Param;

/// Forward-pass cache for [`DenseFfn::backward`].
#[derive(Debug, Clone)]
pub struct FfnCache {
    x: Matrix,
    h_pre: Matrix,
    h_act: Matrix,
}

/// A 2-layer MLP with GeLU and biases: `y = gelu(x W1 + b1) W2 + b2` —
/// the GPT-2 / Megatron FFN.
///
/// Matches the expert architecture of the MoE layers (which are bias-free,
/// as in MegaBlocks) up to the biases, so parameter-count and FLOP
/// comparisons are apples-to-apples.
#[derive(Debug, Clone)]
pub struct DenseFfn {
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
}

impl DenseFfn {
    /// Creates an FFN with GPT-2-style initialization (zero biases).
    pub fn new(hidden_size: usize, ffn_hidden_size: usize, rng: &mut StdRng) -> Self {
        Self {
            w1: Param::new(init::gpt2_normal(hidden_size, ffn_hidden_size, rng)),
            b1: Param::new(Matrix::zeros(1, ffn_hidden_size)),
            w2: Param::new(init::gpt2_normal(ffn_hidden_size, hidden_size, rng)),
            b2: Param::new(Matrix::zeros(1, hidden_size)),
        }
    }

    /// All trainable parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2]
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.w1.count() + self.b1.count() + self.w2.count() + self.b2.count()
    }

    /// Forward pass on `x` (`num_tokens x hidden_size`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the layer's hidden size.
    pub fn forward(&self, x: &Matrix) -> (Matrix, FfnCache) {
        let mut h_pre = matmul(x, self.w1.value());
        add_bias(&mut h_pre, self.b1.value().row(0));
        let h_act = gelu(&h_pre);
        let mut y = matmul(&h_act, self.w2.value());
        add_bias(&mut y, self.b2.value().row(0));
        (
            y,
            FfnCache {
                x: x.clone(),
                h_pre,
                h_act,
            },
        )
    }

    /// Backward pass; accumulates weight gradients and returns the input
    /// gradient.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the forward output shape.
    pub fn backward(&mut self, cache: &FfnCache, d_out: &Matrix) -> Matrix {
        for (g, v) in self
            .b2
            .grad_mut()
            .row_mut(0)
            .iter_mut()
            .zip(bias_backward(d_out))
        {
            *g += v;
        }
        let dh_act = matmul_nt(d_out, self.w2.value());
        self.w2.accumulate(&matmul_tn(&cache.h_act, d_out));
        let dh = gelu_backward(&cache.h_pre, &dh_act);
        for (g, v) in self
            .b1
            .grad_mut()
            .row_mut(0)
            .iter_mut()
            .zip(bias_backward(&dh))
        {
            *g += v;
        }
        self.w1.accumulate(&matmul_tn(&cache.x, &dh));
        matmul_nt(&dh, self.w1.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_tensor::init::seeded_rng;
    use megablocks_tensor::ops::cross_entropy;

    #[test]
    fn forward_shape() {
        let mut rng = seeded_rng(1);
        let ffn = DenseFfn::new(8, 32, &mut rng);
        let x = init::normal(5, 8, 1.0, &mut rng);
        let (y, _) = ffn.forward(&x);
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(ffn.param_count(), 2 * 8 * 32 + 32 + 8);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = seeded_rng(2);
        let mut ffn = DenseFfn::new(6, 10, &mut rng);
        let x = init::normal(4, 6, 0.7, &mut rng);
        let readout = init::normal(6, 3, 0.5, &mut rng);
        let targets = vec![0usize, 1, 2, 1];

        let objective = |ffn: &DenseFfn, x: &Matrix| -> f32 {
            let (y, _) = ffn.forward(x);
            let logits = matmul(&y, &readout);
            cross_entropy(&logits, &targets, None).0
        };

        let (y, cache) = ffn.forward(&x);
        let logits = matmul(&y, &readout);
        let (_, dlogits) = cross_entropy(&logits, &targets, None);
        let d_out = matmul_nt(&dlogits, &readout);
        let dx = ffn.backward(&cache, &d_out);

        let eps = 1e-3;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp[(i, j)] += eps;
                let mut xm = x.clone();
                xm[(i, j)] -= eps;
                let num = (objective(&ffn, &xp) - objective(&ffn, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx[(i, j)]).abs() < 3e-2 * (1.0 + num.abs()),
                    "dx({i},{j}): numeric {num}, analytic {}",
                    dx[(i, j)]
                );
            }
        }

        for &(r, c) in &[(0usize, 0usize), (3, 7)] {
            let ana = ffn.w1.grad()[(r, c)];
            let orig = ffn.w1.value()[(r, c)];
            ffn.w1.value_mut()[(r, c)] = orig + eps;
            let fp = objective(&ffn, &x);
            ffn.w1.value_mut()[(r, c)] = orig - eps;
            let fm = objective(&ffn, &x);
            ffn.w1.value_mut()[(r, c)] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "dw1({r},{c}): numeric {num}, analytic {ana}"
            );
        }
    }
}

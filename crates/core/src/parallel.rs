//! Expert model parallelism, executed (paper §5: "our system supports
//! distributed training of MoEs with both data and expert model
//! parallelism").
//!
//! [`expert_parallel_forward`] runs a [`DroplessMoe`] forward pass the way
//! an expert-parallel deployment would: experts are partitioned across
//! `num_shards` virtual devices, tokens travel to their expert's shard
//! through an explicit all-to-all exchange, each shard runs the
//! block-sparse expert computation over *its own* block-diagonal
//! topology, and a second all-to-all brings the results home. Everything
//! executes in-process, but the data movement is materialized in
//! [`AllToAllBuffers`], so tests can assert both numerical equivalence
//! with the single-device layer and the communication volumes the
//! `gpusim` timeline model charges for.
//!
//! Three entry points with increasing fault tolerance:
//!
//! * [`expert_parallel_forward`] — panics on invalid arguments or shard
//!   failure (the original API).
//! * [`try_expert_parallel_forward`] — the fallible twin: invalid
//!   arguments and shard panics come back as a structured [`EpError`]
//!   instead of unwinding.
//! * [`resilient_expert_parallel_forward`] — the recovery path: each
//!   failed shard is retried up to [`EpPolicy::max_shard_retries`] times,
//!   stragglers (a shard slower than `straggler_factor`× the median,
//!   above a floor) are detected and counted, and if a shard keeps
//!   failing the layer degrades gracefully to a single-device
//!   [`DroplessMoe::forward`]. Every detection and recovery emits
//!   `resilience.*` telemetry against the `ep.shard_fail` /
//!   `ep.shard_delay` fault sites.
//! * [`resilient_expert_parallel_forward_with_breaker`] — the same
//!   recovery path behind a per-shard circuit breaker ([`EpBreaker`]):
//!   a shard that keeps failing (or timing out against
//!   [`EpPolicy::shard_deadline`]) across calls opens its circuit, and
//!   subsequent layer calls short-circuit straight to the single-device
//!   fallback — no doomed shard work, no exchange — until the breaker
//!   half-opens and a probe call proves the shard healthy again.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use megablocks_exec as exec;
use megablocks_resilience as resilience;
use megablocks_resilience::sites::{EP_SHARD_DELAY, EP_SHARD_FAIL};
use megablocks_sparse::{ops, Topology};
use megablocks_telemetry as telemetry;
use megablocks_tensor::ops::gelu_scalar;
use megablocks_tensor::Matrix;

use crate::{padded_gather, padded_scatter, DroplessMoe, PermuteInfo, Routing};

/// The materialized all-to-all exchange of one expert-parallel layer
/// invocation.
#[derive(Debug, Clone)]
pub struct AllToAllBuffers {
    /// For each shard: the (padded) token rows sent to it.
    pub shard_inputs: Vec<Matrix>,
    /// For each shard: its expert outputs, before the return exchange.
    pub shard_outputs: Vec<Matrix>,
    /// Total f32 elements moved in the dispatch direction.
    pub dispatch_elements: usize,
}

/// Statistics of an expert-parallel forward.
#[derive(Debug, Clone, PartialEq)]
pub struct EpStats {
    /// Shards (virtual devices).
    pub num_shards: usize,
    /// Experts owned by each shard.
    pub experts_per_shard: usize,
    /// Padded token rows processed by each shard.
    pub rows_per_shard: Vec<usize>,
    /// Elements exchanged per all-to-all direction.
    pub alltoall_elements: usize,
}

/// Structured failure of an expert-parallel forward.
#[derive(Debug)]
pub enum EpError {
    /// `num_shards` does not evenly partition the expert count.
    InvalidShardCount {
        /// The requested shard count.
        num_shards: usize,
        /// The layer's expert count.
        num_experts: usize,
    },
    /// The input's feature dimension differs from the layer's.
    InputShape {
        /// Columns of the input actually passed.
        got: usize,
        /// The layer's hidden size.
        expected: usize,
    },
    /// A shard's expert computation panicked (includes injected
    /// `ep.shard_fail` faults).
    ShardFailed {
        /// Index of the first failed shard.
        shard: usize,
        /// The panic message, if it carried one.
        reason: String,
    },
}

impl std::fmt::Display for EpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpError::InvalidShardCount {
                num_shards,
                num_experts,
            } => write!(
                f,
                "num_shards {num_shards} must divide num_experts {num_experts}"
            ),
            EpError::InputShape { got, expected } => write!(
                f,
                "input feature size mismatch: x has {got} columns, layer hidden size is {expected}"
            ),
            EpError::ShardFailed { shard, reason } => {
                write!(f, "expert-parallel shard {shard} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for EpError {}

/// Tuning knobs for [`resilient_expert_parallel_forward`].
#[derive(Debug, Clone)]
pub struct EpPolicy {
    /// Retries granted to each failed shard before falling back to the
    /// single-device forward.
    pub max_shard_retries: u32,
    /// A shard is a straggler when it runs longer than this multiple of
    /// the median shard time.
    pub straggler_factor: f64,
    /// Straggler floor in microseconds — below this, slowness is noise,
    /// never a straggler.
    pub straggler_floor_us: u64,
    /// Wall-clock budget for one shard attempt. Each attempt (first run
    /// and every retry) executes under a fresh
    /// [`megablocks_exec::Deadline`] this far in the future, so a shard
    /// stuck past it unwinds at the next cooperative cancellation point
    /// and counts as a shard failure — feeding retry, fallback, and the
    /// circuit breaker. `None` leaves shards unbounded.
    pub shard_deadline: Option<Duration>,
}

impl Default for EpPolicy {
    fn default() -> Self {
        EpPolicy {
            max_shard_retries: 2,
            straggler_factor: 8.0,
            straggler_floor_us: 10_000,
            shard_deadline: None,
        }
    }
}

/// What [`resilient_expert_parallel_forward`] did to produce its output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpRecovery {
    /// Shard re-executions attempted (counts every retry, not shards).
    pub shard_retries: u32,
    /// Failed shards that a retry healed.
    pub shards_recovered: u32,
    /// Shards flagged as stragglers (they completed, but late).
    pub stragglers_detected: u32,
    /// Whether the layer degraded to the single-device forward.
    pub fell_back: bool,
    /// Layer calls answered by the fallback *without* attempting EP at
    /// all, because a shard's circuit breaker was open.
    pub breaker_short_circuits: u32,
}

/// Tuning knobs for a per-shard circuit breaker ([`EpBreaker`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive unhealed failures of a shard that open its circuit.
    pub open_after: u32,
    /// Short-circuited layer calls an open circuit absorbs before
    /// letting one half-open probe attempt through.
    pub probe_after: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            open_after: 3,
            probe_after: 2,
        }
    }
}

/// One shard's circuit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: calls flow through.
    #[default]
    Closed,
    /// Tripped: EP attempts short-circuit to the single-device fallback.
    Open,
    /// Probing: the next EP attempt runs; success closes the circuit,
    /// failure re-opens it immediately.
    HalfOpen,
}

/// Per-shard circuit breaker for
/// [`resilient_expert_parallel_forward_with_breaker`].
///
/// The classic state machine, one circuit per shard: `Closed` until
/// [`BreakerPolicy::open_after`] consecutive unhealed failures, then
/// `Open` (layer calls short-circuit to the single-device fallback
/// without attempting EP), then after [`BreakerPolicy::probe_after`]
/// absorbed calls `HalfOpen` — the next call runs a full EP probe whose
/// outcome either closes or re-opens the circuit. State transitions emit
/// `ep.breaker` counters (`open` / `half_open` / `close` /
/// `short_circuit`).
#[derive(Debug, Clone, Default)]
pub struct EpBreaker {
    policy: BreakerPolicy,
    shards: Vec<ShardCircuit>,
}

#[derive(Debug, Clone, Copy, Default)]
struct ShardCircuit {
    state: BreakerState,
    consecutive_failures: u32,
    open_calls: u32,
}

impl EpBreaker {
    /// A fully closed breaker with the given policy; per-shard circuits
    /// materialize on first use.
    pub fn new(policy: BreakerPolicy) -> Self {
        EpBreaker {
            policy,
            shards: Vec::new(),
        }
    }

    /// A breaker that never opens — the effective policy of
    /// [`resilient_expert_parallel_forward`], which retries and falls
    /// back per call without remembering failures across calls.
    pub fn never() -> Self {
        EpBreaker::new(BreakerPolicy {
            open_after: u32::MAX,
            probe_after: u32::MAX,
        })
    }

    /// The circuit state of `shard` (`Closed` for shards never seen).
    pub fn state(&self, shard: usize) -> BreakerState {
        self.shards
            .get(shard)
            .map_or(BreakerState::Closed, |s| s.state)
    }

    fn resize(&mut self, num_shards: usize) {
        if self.shards.len() < num_shards {
            self.shards.resize(num_shards, ShardCircuit::default());
        }
    }

    /// Advances open circuits one layer call: each either keeps
    /// absorbing (short-circuiting this call) or, after
    /// [`BreakerPolicy::probe_after`] absorbed calls, goes half-open.
    /// Returns the first shard still blocking, if any.
    fn tick_open(&mut self) -> Option<usize> {
        let mut blocked = None;
        for (i, s) in self.shards.iter_mut().enumerate() {
            if s.state != BreakerState::Open {
                continue;
            }
            if s.open_calls >= self.policy.probe_after {
                s.state = BreakerState::HalfOpen;
                telemetry::counter_with("ep.breaker", "half_open").inc();
            } else {
                s.open_calls += 1;
                blocked.get_or_insert(i);
            }
        }
        blocked
    }

    fn record_success(&mut self, shard: usize) {
        let s = &mut self.shards[shard];
        if s.state != BreakerState::Closed {
            telemetry::counter_with("ep.breaker", "close").inc();
        }
        *s = ShardCircuit::default();
    }

    fn record_failure(&mut self, shard: usize) {
        let s = &mut self.shards[shard];
        s.consecutive_failures = s.consecutive_failures.saturating_add(1);
        let reopen = s.state == BreakerState::HalfOpen;
        if reopen || s.consecutive_failures >= self.policy.open_after {
            s.state = BreakerState::Open;
            s.open_calls = 0;
            telemetry::counter_with("ep.breaker", "open").inc();
            telemetry::trace_instant("ep.breaker.open");
        }
    }
}

/// The execution context for one shard attempt: a fresh deadline when
/// the policy bounds shard latency, empty (inheriting the submitter's
/// ambient context) otherwise.
fn shard_ctx(shard_deadline: Option<Duration>) -> exec::Ctx {
    match shard_deadline {
        Some(budget) => exec::Ctx::none().with_deadline(exec::Deadline::after(budget)),
        None => exec::Ctx::none(),
    }
}

/// Result of a resilient expert-parallel forward. When the layer had to
/// fall back to single-device execution, no meaningful exchange happened
/// and `stats`/`buffers` are `None`.
#[derive(Debug)]
pub struct EpOutcome {
    /// The layer output (EP or single-device fallback).
    pub output: Matrix,
    /// Exchange statistics, absent after fallback.
    pub stats: Option<EpStats>,
    /// Materialized all-to-all buffers, absent after fallback.
    pub buffers: Option<AllToAllBuffers>,
    /// What recovery machinery fired.
    pub recovery: EpRecovery,
}

/// Runs the dMoE forward pass with `num_shards`-way expert parallelism
/// and returns `(output, stats, buffers)`.
///
/// The output is numerically identical to [`DroplessMoe::forward`] up to
/// floating-point summation order (tests pin a 1e-4 agreement).
///
/// # Panics
///
/// Panics if `num_shards` does not divide the expert count, if
/// `x.cols()` differs from the layer's hidden size, or if a shard's
/// computation panics ([`try_expert_parallel_forward`] reports these as
/// values instead).
pub fn expert_parallel_forward(
    layer: &DroplessMoe,
    x: &Matrix,
    num_shards: usize,
) -> (Matrix, EpStats, AllToAllBuffers) {
    try_expert_parallel_forward(layer, x, num_shards).unwrap_or_else(|e| panic!("{e}"))
}

/// The fallible twin of [`expert_parallel_forward`].
///
/// # Errors
///
/// Returns [`EpError::InvalidShardCount`] / [`EpError::InputShape`] for
/// argument problems and [`EpError::ShardFailed`] when a shard's expert
/// computation panics; the panic is contained on the worker and reported
/// as a value.
pub fn try_expert_parallel_forward(
    layer: &DroplessMoe,
    x: &Matrix,
    num_shards: usize,
) -> Result<(Matrix, EpStats, AllToAllBuffers), EpError> {
    let plan = EpPlan::new(layer, x, num_shards)?;
    let mut y = Matrix::pooled_zeros(plan.permute.padded_rows(), plan.hidden);
    let attempt = run_all_shards(&plan, &mut y, None);
    if let Some((shard, reason)) = attempt.first_failure() {
        resilience::record_detected(&EP_SHARD_FAIL);
        return Err(EpError::ShardFailed { shard, reason });
    }
    Ok(plan.finish(y))
}

/// Fault-tolerant expert-parallel forward: per-shard retry, straggler
/// detection, and graceful degradation to the single-device layer.
///
/// Never fails on runtime faults — after `policy.max_shard_retries`
/// unsuccessful re-runs of any shard the whole layer falls back to
/// [`DroplessMoe::forward`] and reports it in [`EpRecovery::fell_back`].
///
/// # Errors
///
/// Only argument problems ([`EpError::InvalidShardCount`],
/// [`EpError::InputShape`]) are returned as errors; those are caller
/// bugs, not faults to recover from.
pub fn resilient_expert_parallel_forward(
    layer: &DroplessMoe,
    x: &Matrix,
    num_shards: usize,
    policy: &EpPolicy,
) -> Result<EpOutcome, EpError> {
    let mut breaker = EpBreaker::never();
    resilient_expert_parallel_forward_with_breaker(layer, x, num_shards, policy, &mut breaker)
}

/// [`resilient_expert_parallel_forward`] composed with a per-shard
/// circuit breaker that persists across layer calls.
///
/// When any shard's circuit is open, the call short-circuits straight to
/// the single-device [`DroplessMoe::forward`] — the doomed shard work,
/// its retries, and both all-to-alls are skipped entirely — and
/// [`EpRecovery::breaker_short_circuits`] records it. Otherwise the
/// normal retry/straggler/fallback machinery runs and every shard's
/// outcome (success, or failure after retries) feeds its circuit.
///
/// # Errors
///
/// Only argument problems ([`EpError::InvalidShardCount`],
/// [`EpError::InputShape`]), exactly as the breaker-less form.
pub fn resilient_expert_parallel_forward_with_breaker(
    layer: &DroplessMoe,
    x: &Matrix,
    num_shards: usize,
    policy: &EpPolicy,
    breaker: &mut EpBreaker,
) -> Result<EpOutcome, EpError> {
    let plan = EpPlan::new(layer, x, num_shards)?;
    breaker.resize(num_shards);
    let mut recovery = EpRecovery::default();

    // Open circuits absorb the call before any shard work happens: the
    // whole layer degrades to the single-device forward until the
    // breaker half-opens and lets a probe attempt through.
    if let Some(shard) = breaker.tick_open() {
        telemetry::counter_with("ep.breaker", "short_circuit").inc();
        let _ = shard; // which circuit blocked is visible via state()
        recovery.breaker_short_circuits += 1;
        recovery.fell_back = true;
        let output = layer.forward(x).output;
        return Ok(EpOutcome {
            output,
            stats: None,
            buffers: None,
            recovery,
        });
    }

    let mut y = Matrix::pooled_zeros(plan.permute.padded_rows(), plan.hidden);
    let attempt = run_all_shards(&plan, &mut y, policy.shard_deadline);
    count_stragglers(&attempt.elapsed_us, policy, &mut recovery);

    for (shard, failure) in attempt.failures.iter().enumerate() {
        let Some(reason) = failure else {
            breaker.record_success(shard);
            continue;
        };
        resilience::record_detected(&EP_SHARD_FAIL);
        telemetry::counter_with("resilience.ep.shard_failures", plan.op_label(shard)).inc();
        let mut healed = false;
        for _ in 0..policy.max_shard_retries {
            recovery.shard_retries += 1;
            telemetry::counter_with("resilience.retries", "ep.shard").inc();
            let rerun = catch_unwind(AssertUnwindSafe(|| {
                // A fresh deadline per attempt: deadline expiry is
                // retryable precisely because the retry gets new budget.
                let _ambient = exec::cancel::enter(&shard_ctx(policy.shard_deadline));
                resilience::maybe_panic(&EP_SHARD_FAIL);
                plan.compute_shard(shard)
            }));
            if let Ok(out) = rerun {
                plan.write_shard(&mut y, shard, &out);
                out.recycle();
                resilience::record_recovered(&EP_SHARD_FAIL);
                recovery.shards_recovered += 1;
                healed = true;
                break;
            }
        }
        if !healed {
            breaker.record_failure(shard);
            // Graceful degradation: the shard is gone for good, so run
            // the whole layer single-device. Correctness over speed.
            telemetry::counter("resilience.ep.fallback").inc();
            let _ = reason; // already surfaced via telemetry + counters
            recovery.fell_back = true;
            let output = layer.forward(x).output;
            return Ok(EpOutcome {
                output,
                stats: None,
                buffers: None,
                recovery,
            });
        }
        breaker.record_success(shard);
    }

    let (output, stats, buffers) = plan.finish(y);
    Ok(EpOutcome {
        output,
        stats: Some(stats),
        buffers: Some(buffers),
        recovery,
    })
}

/// Everything computed before shards launch: routing, the global
/// permutation, the dispatch exchange, and per-shard geometry.
struct EpPlan<'a> {
    layer: &'a DroplessMoe,
    routing: Routing,
    permute: PermuteInfo,
    padded: Vec<usize>,
    offsets: Vec<usize>,
    shard_inputs: Vec<Matrix>,
    rows_per_shard: Vec<usize>,
    num_shards: usize,
    experts_per_shard: usize,
    ffn: usize,
    hidden: usize,
}

impl<'a> EpPlan<'a> {
    fn new(layer: &'a DroplessMoe, x: &Matrix, num_shards: usize) -> Result<Self, EpError> {
        let cfg = layer.config();
        if num_shards < 1 || !cfg.num_experts.is_multiple_of(num_shards) {
            return Err(EpError::InvalidShardCount {
                num_shards,
                num_experts: cfg.num_experts,
            });
        }
        if x.cols() != cfg.hidden_size {
            return Err(EpError::InputShape {
                got: x.cols(),
                expected: cfg.hidden_size,
            });
        }
        let experts_per_shard = cfg.num_experts / num_shards;

        // Routing and the global permutation happen where the tokens live.
        let routing = layer.router().forward(x);
        let permute = PermuteInfo::new(&routing, cfg.num_experts, cfg.block_size);
        let xg = padded_gather(x, &permute);
        let padded = permute.padded_tokens_per_expert().to_vec();

        // Dispatch all-to-all: each shard receives the contiguous row
        // range of its experts (the expert-major layout makes this a pure
        // slice).
        let mut offsets = vec![0usize; cfg.num_experts + 1];
        for e in 0..cfg.num_experts {
            offsets[e + 1] = offsets[e] + padded[e];
        }
        let mut shard_inputs = Vec::with_capacity(num_shards);
        let mut rows_per_shard = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let lo = offsets[s * experts_per_shard];
            let hi = offsets[(s + 1) * experts_per_shard];
            shard_inputs.push(xg.rows_range(lo, hi));
            rows_per_shard.push(hi - lo);
        }
        Ok(EpPlan {
            layer,
            routing,
            permute,
            padded,
            offsets,
            shard_inputs,
            rows_per_shard,
            num_shards,
            experts_per_shard,
            ffn: cfg.ffn_hidden_size,
            hidden: cfg.hidden_size,
        })
    }

    /// One shard's expert computation over its local block-diagonal
    /// topology, using its slice of the concatenated weights.
    fn compute_shard(&self, s: usize) -> Matrix {
        let cfg = self.layer.config();
        let eps = self.experts_per_shard;
        let local_padded = &self.padded[s * eps..(s + 1) * eps];
        let topo = Topology::for_moe(local_padded, self.ffn, cfg.block_size)
            .expect("padded counts are block-aligned");
        let col0 = s * eps * self.ffn;
        let cols = eps * self.ffn;
        let w1_local = Matrix::from_fn(self.hidden, cols, |i, j| {
            self.layer.w1().value()[(i, col0 + j)]
        });
        let w2_local = self.layer.w2().value().rows_range(col0, col0 + cols);
        let h = ops::sdd(&self.shard_inputs[s], &w1_local, &topo).map(gelu_scalar);
        let out = ops::dsd(&h, &w2_local);
        h.recycle();
        out
    }

    /// Writes one shard's output into its row range of the combined `y`
    /// (the combine all-to-all for a retried shard).
    fn write_shard(&self, y: &mut Matrix, s: usize, out: &Matrix) {
        let lo = self.offsets[s * self.experts_per_shard] * self.hidden;
        let hi = self.offsets[(s + 1) * self.experts_per_shard] * self.hidden;
        y.as_mut_slice()[lo..hi].copy_from_slice(out.as_slice());
    }

    fn band_lens(&self) -> Vec<usize> {
        self.rows_per_shard
            .iter()
            .map(|&r| r * self.hidden)
            .collect()
    }

    fn op_label(&self, shard: usize) -> &'static str {
        // Telemetry labels are static; bucket shard indices coarsely.
        match shard {
            0 => "shard0",
            1 => "shard1",
            2 => "shard2",
            3 => "shard3",
            _ => "shard4plus",
        }
    }

    /// Materializes the combine all-to-all and the final un-permuted,
    /// confidence-scaled output.
    fn finish(self, y: Matrix) -> (Matrix, EpStats, AllToAllBuffers) {
        let dispatch_elements: usize = self.rows_per_shard.iter().map(|r| r * self.hidden).sum();
        let shard_outputs: Vec<Matrix> = (0..self.num_shards)
            .map(|s| {
                let lo = self.offsets[s * self.experts_per_shard];
                let hi = self.offsets[(s + 1) * self.experts_per_shard];
                y.rows_range(lo, hi)
            })
            .collect();
        let output = padded_scatter(&y, &self.permute, &self.routing.weights);
        let stats = EpStats {
            num_shards: self.num_shards,
            experts_per_shard: self.experts_per_shard,
            rows_per_shard: self.rows_per_shard,
            alltoall_elements: dispatch_elements,
        };
        let buffers = AllToAllBuffers {
            shard_inputs: self.shard_inputs,
            shard_outputs,
            dispatch_elements,
        };
        (output, stats, buffers)
    }
}

/// Per-shard results of one parallel attempt: containment happens at the
/// band level, so one shard's panic never tears down its siblings.
struct Attempt {
    failures: Vec<Option<String>>,
    elapsed_us: Vec<u64>,
}

impl Attempt {
    fn first_failure(&self) -> Option<(usize, String)> {
        self.failures
            .iter()
            .enumerate()
            .find_map(|(s, f)| f.as_ref().map(|r| (s, r.clone())))
    }
}

/// Launches every shard as a band of one plan. Shards that panic
/// (genuine bugs or injected `ep.shard_fail` faults) are contained and
/// reported per shard; the `ep.shard_delay` site and a wall-clock timer
/// sit inside each band for straggler detection, and `shard_deadline`
/// (when set) bounds each shard attempt with a fresh exec deadline.
fn run_all_shards(plan: &EpPlan<'_>, y: &mut Matrix, shard_deadline: Option<Duration>) -> Attempt {
    let failures: Vec<Mutex<Option<String>>> =
        (0..plan.num_shards).map(|_| Mutex::new(None)).collect();
    let elapsed_us: Vec<AtomicU64> = (0..plan.num_shards).map(|_| AtomicU64::new(0)).collect();
    let shard_body = |band: &mut [f32], s: usize| {
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            // The shard's deadline clock starts when the shard does, and
            // the ambient context covers every kernel the shard launches
            // — an injected `ep.shard_delay` that outlives the budget
            // turns the next kernel entry into a deadline panic, which
            // is contained here as an ordinary shard failure.
            let _ambient = exec::cancel::enter(&shard_ctx(shard_deadline));
            resilience::maybe_panic(&EP_SHARD_FAIL);
            resilience::inject_delay(&EP_SHARD_DELAY);
            plan.compute_shard(s)
        }));
        elapsed_us[s].store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        match result {
            Ok(out) => {
                band.copy_from_slice(out.as_slice());
                out.recycle();
            }
            Err(payload) => {
                *failures[s].lock().expect("no panics hold this lock") =
                    Some(panic_reason(payload.as_ref()));
            }
        }
    };
    exec::LaunchPlan::over_bands(
        "moe.expert_parallel",
        y.as_mut_slice(),
        plan.band_lens(),
        &shard_body,
    )
    .launch();
    Attempt {
        failures: failures
            .into_iter()
            .map(|m| m.into_inner().expect("no panics hold this lock"))
            .collect(),
        elapsed_us: elapsed_us.into_iter().map(|a| a.into_inner()).collect(),
    }
}

/// Flags shards that ran longer than `straggler_factor`× the median
/// shard time (with a floor). Stragglers completed, so each detection is
/// immediately a recovery — the counters record how often the EP layer
/// ran degraded-but-correct.
fn count_stragglers(elapsed_us: &[u64], policy: &EpPolicy, recovery: &mut EpRecovery) {
    if elapsed_us.len() < 2 {
        return;
    }
    let mut sorted = elapsed_us.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let threshold =
        ((median as f64 * policy.straggler_factor) as u64).max(policy.straggler_floor_us);
    for &us in elapsed_us {
        if us > threshold {
            resilience::record_detected(&EP_SHARD_DELAY);
            resilience::record_recovered(&EP_SHARD_DELAY);
            recovery.stragglers_detected += 1;
            telemetry::histogram("resilience.ep.straggler_us").record(us);
        }
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MoeConfig;
    use megablocks_tensor::init::{normal, seeded_rng};

    fn layer(seed: u64) -> DroplessMoe {
        let mut rng = seeded_rng(seed);
        DroplessMoe::new(MoeConfig::new(6, 8, 4).with_block_size(4), &mut rng)
    }

    #[test]
    fn matches_single_device_for_every_shard_count() {
        let l = layer(1);
        let mut rng = seeded_rng(2);
        let x = normal(18, 6, 1.0, &mut rng);
        let reference = l.forward(&x).output;
        for shards in [1usize, 2, 4] {
            let (out, stats, _) = expert_parallel_forward(&l, &x, shards);
            assert!(
                out.approx_eq(&reference, 1e-4),
                "{shards} shards diverged by {}",
                out.max_abs_diff(&reference)
            );
            assert_eq!(stats.num_shards, shards);
            assert_eq!(stats.experts_per_shard, 4 / shards);
        }
    }

    #[test]
    fn alltoall_volume_accounts_all_padded_rows() {
        let l = layer(3);
        let mut rng = seeded_rng(4);
        let x = normal(25, 6, 1.0, &mut rng);
        let (_, stats, buffers) = expert_parallel_forward(&l, &x, 2);
        let total_rows: usize = stats.rows_per_shard.iter().sum();
        assert_eq!(stats.alltoall_elements, total_rows * 6);
        assert_eq!(buffers.dispatch_elements, stats.alltoall_elements);
        // Shard buffers have the advertised shapes.
        for (inp, &rows) in buffers.shard_inputs.iter().zip(&stats.rows_per_shard) {
            assert_eq!(inp.shape(), (rows, 6));
        }
        for (out, &rows) in buffers.shard_outputs.iter().zip(&stats.rows_per_shard) {
            assert_eq!(out.shape(), (rows, 6));
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn shard_count_must_divide_experts() {
        let l = layer(5);
        let mut rng = seeded_rng(6);
        let x = normal(8, 6, 1.0, &mut rng);
        let _ = expert_parallel_forward(&l, &x, 3);
    }

    #[test]
    fn imbalanced_shards_carry_their_actual_load() {
        // With heavy imbalance, shard row counts differ — no padding to a
        // worst-case shard (the dropless property survives distribution).
        let l = layer(7);
        let mut rng = seeded_rng(8);
        let x = normal(40, 6, 1.0, &mut rng);
        let (_, stats, _) = expert_parallel_forward(&l, &x, 2);
        let tokens = l.forward(&x).stats.tokens_per_expert;
        let padded: Vec<usize> = tokens.iter().map(|&t| t.div_ceil(4) * 4).collect();
        assert_eq!(stats.rows_per_shard[0], padded[0] + padded[1]);
        assert_eq!(stats.rows_per_shard[1], padded[2] + padded[3]);
    }

    #[test]
    fn try_reports_structured_errors() {
        let l = layer(9);
        let mut rng = seeded_rng(10);
        let x = normal(8, 6, 1.0, &mut rng);
        let err = try_expert_parallel_forward(&l, &x, 3).unwrap_err();
        assert!(matches!(err, EpError::InvalidShardCount { .. }), "{err}");
        assert!(err.to_string().contains("must divide"));
        let bad = normal(8, 5, 1.0, &mut rng);
        let err = try_expert_parallel_forward(&l, &bad, 2).unwrap_err();
        assert!(matches!(err, EpError::InputShape { .. }), "{err}");
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_then_probes_and_closes() {
        let mut b = EpBreaker::new(BreakerPolicy {
            open_after: 2,
            probe_after: 2,
        });
        b.resize(2);
        // One failure is not enough; the second opens the circuit.
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed);
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Open);
        // The open circuit absorbs `probe_after` calls, then half-opens.
        assert_eq!(b.tick_open(), Some(0));
        assert_eq!(b.tick_open(), Some(0));
        assert_eq!(b.tick_open(), None, "probe attempt must be let through");
        assert_eq!(b.state(0), BreakerState::HalfOpen);
        // A successful probe closes the circuit and resets its counters.
        b.record_success(0);
        assert_eq!(b.state(0), BreakerState::Closed);
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Closed, "failure streak was reset");
    }

    #[test]
    fn half_open_failure_reopens_immediately() {
        let mut b = EpBreaker::new(BreakerPolicy {
            open_after: 3,
            probe_after: 1,
        });
        b.resize(1);
        for _ in 0..3 {
            b.record_failure(0);
        }
        assert_eq!(b.state(0), BreakerState::Open);
        assert_eq!(b.tick_open(), Some(0));
        assert_eq!(b.tick_open(), None);
        assert_eq!(b.state(0), BreakerState::HalfOpen);
        // The probe failing re-opens at once — no fresh failure streak
        // is required to keep a known-bad shard fenced off.
        b.record_failure(0);
        assert_eq!(b.state(0), BreakerState::Open);
        assert_eq!(b.tick_open(), Some(0), "reopened circuit absorbs again");
    }

    #[test]
    fn circuits_are_isolated_per_shard_and_never_breaker_stays_closed() {
        let mut b = EpBreaker::new(BreakerPolicy {
            open_after: 1,
            probe_after: 1,
        });
        b.resize(3);
        b.record_failure(1);
        assert_eq!(b.state(0), BreakerState::Closed);
        assert_eq!(b.state(1), BreakerState::Open);
        assert_eq!(b.state(2), BreakerState::Closed);
        // Shards the breaker never saw read as closed.
        assert_eq!(b.state(99), BreakerState::Closed);

        let mut never = EpBreaker::never();
        never.resize(2);
        for _ in 0..1000 {
            never.record_failure(0);
        }
        assert_eq!(never.state(0), BreakerState::Closed);
        assert_eq!(never.tick_open(), None);
    }

    #[test]
    fn expired_shard_deadline_degrades_opens_the_circuit_and_short_circuits() {
        let l = layer(13);
        let mut rng = seeded_rng(14);
        let x = normal(20, 6, 1.0, &mut rng);
        let reference = l.forward(&x).output;
        // A zero deadline expires before any shard kernel launches, so
        // every attempt (and its fresh-deadline retry) dies at a
        // cancellation point; the layer must degrade to the
        // single-device fallback, never panic.
        let policy = EpPolicy {
            shard_deadline: Some(Duration::ZERO),
            max_shard_retries: 1,
            ..EpPolicy::default()
        };
        let mut breaker = EpBreaker::new(BreakerPolicy {
            open_after: 1,
            probe_after: 1,
        });
        let outcome =
            resilient_expert_parallel_forward_with_breaker(&l, &x, 2, &policy, &mut breaker)
                .expect("valid args");
        assert!(outcome.recovery.fell_back);
        assert_eq!(outcome.recovery.breaker_short_circuits, 0);
        assert!(outcome.output.approx_eq(&reference, 1e-4));
        // The unhealed shard opened its circuit; the next call must
        // short-circuit without attempting EP at all.
        assert_eq!(breaker.state(0), BreakerState::Open);
        let outcome =
            resilient_expert_parallel_forward_with_breaker(&l, &x, 2, &policy, &mut breaker)
                .expect("valid args");
        assert!(outcome.recovery.fell_back);
        assert_eq!(outcome.recovery.breaker_short_circuits, 1);
        assert_eq!(outcome.recovery.shard_retries, 0, "EP was never attempted");
        assert!(outcome.output.approx_eq(&reference, 1e-4));
    }

    #[test]
    fn half_open_probe_with_healthy_deadline_closes_the_circuit() {
        let l = layer(15);
        let mut rng = seeded_rng(16);
        let x = normal(16, 6, 1.0, &mut rng);
        let reference = l.forward(&x).output;
        let healthy = EpPolicy {
            shard_deadline: Some(Duration::from_secs(3600)),
            ..EpPolicy::default()
        };
        let mut breaker = EpBreaker::new(BreakerPolicy {
            open_after: 1,
            probe_after: 1,
        });
        breaker.resize(2);
        breaker.record_failure(0);
        assert_eq!(breaker.state(0), BreakerState::Open);
        // Call 1: the open circuit absorbs it (short-circuit fallback).
        let outcome =
            resilient_expert_parallel_forward_with_breaker(&l, &x, 2, &healthy, &mut breaker)
                .expect("valid args");
        assert_eq!(outcome.recovery.breaker_short_circuits, 1);
        // Call 2: the circuit half-opens and the probe succeeds — full
        // EP results come back and the circuit closes.
        let outcome =
            resilient_expert_parallel_forward_with_breaker(&l, &x, 2, &healthy, &mut breaker)
                .expect("valid args");
        assert!(!outcome.recovery.fell_back);
        assert!(outcome.stats.is_some());
        assert!(outcome.output.approx_eq(&reference, 1e-4));
        assert_eq!(breaker.state(0), BreakerState::Closed);
    }

    #[test]
    fn resilient_matches_plain_forward_without_faults() {
        let l = layer(11);
        let mut rng = seeded_rng(12);
        let x = normal(20, 6, 1.0, &mut rng);
        let reference = l.forward(&x).output;
        let outcome =
            resilient_expert_parallel_forward(&l, &x, 2, &EpPolicy::default()).expect("valid args");
        assert!(outcome.output.approx_eq(&reference, 1e-4));
        assert!(!outcome.recovery.fell_back);
        assert_eq!(outcome.recovery.shard_retries, 0);
        assert_eq!(outcome.recovery.shards_recovered, 0);
        let stats = outcome.stats.expect("no fallback, stats present");
        assert_eq!(stats.num_shards, 2);
        assert!(outcome.buffers.is_some());
    }
}

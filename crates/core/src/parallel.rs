//! Expert model parallelism, executed (paper §5: "our system supports
//! distributed training of MoEs with both data and expert model
//! parallelism").
//!
//! [`expert_parallel_forward`] runs a [`DroplessMoe`] forward pass the way
//! an expert-parallel deployment would: experts are partitioned across
//! `num_shards` virtual devices, tokens travel to their expert's shard
//! through an explicit all-to-all exchange, each shard runs the
//! block-sparse expert computation over *its own* block-diagonal
//! topology, and a second all-to-all brings the results home. Everything
//! executes in-process, but the data movement is materialized in
//! [`AllToAllBuffers`], so tests can assert both numerical equivalence
//! with the single-device layer and the communication volumes the
//! `gpusim` timeline model charges for.

use megablocks_exec as exec;
use megablocks_sparse::{ops, Topology};
use megablocks_tensor::ops::gelu_scalar;
use megablocks_tensor::Matrix;

use crate::{padded_gather, padded_scatter, DroplessMoe, PermuteInfo};

/// The materialized all-to-all exchange of one expert-parallel layer
/// invocation.
#[derive(Debug, Clone)]
pub struct AllToAllBuffers {
    /// For each shard: the (padded) token rows sent to it.
    pub shard_inputs: Vec<Matrix>,
    /// For each shard: its expert outputs, before the return exchange.
    pub shard_outputs: Vec<Matrix>,
    /// Total f32 elements moved in the dispatch direction.
    pub dispatch_elements: usize,
}

/// Statistics of an expert-parallel forward.
#[derive(Debug, Clone, PartialEq)]
pub struct EpStats {
    /// Shards (virtual devices).
    pub num_shards: usize,
    /// Experts owned by each shard.
    pub experts_per_shard: usize,
    /// Padded token rows processed by each shard.
    pub rows_per_shard: Vec<usize>,
    /// Elements exchanged per all-to-all direction.
    pub alltoall_elements: usize,
}

/// Runs the dMoE forward pass with `num_shards`-way expert parallelism
/// and returns `(output, stats, buffers)`.
///
/// The output is numerically identical to [`DroplessMoe::forward`] up to
/// floating-point summation order (tests pin a 1e-4 agreement).
///
/// # Panics
///
/// Panics if `num_shards` does not divide the expert count, or if
/// `x.cols()` differs from the layer's hidden size.
pub fn expert_parallel_forward(
    layer: &DroplessMoe,
    x: &Matrix,
    num_shards: usize,
) -> (Matrix, EpStats, AllToAllBuffers) {
    let cfg = layer.config();
    assert!(
        num_shards >= 1 && cfg.num_experts.is_multiple_of(num_shards),
        "num_shards {num_shards} must divide num_experts {}",
        cfg.num_experts
    );
    assert_eq!(x.cols(), cfg.hidden_size, "input feature size mismatch");
    let experts_per_shard = cfg.num_experts / num_shards;
    let ffn = cfg.ffn_hidden_size;
    let hidden = cfg.hidden_size;

    // Routing and the global permutation happen where the tokens live.
    let routing = layer.router().forward(x);
    let permute = PermuteInfo::new(&routing, cfg.num_experts, cfg.block_size);
    let xg = padded_gather(x, &permute);
    let padded = permute.padded_tokens_per_expert();

    // Dispatch all-to-all: each shard receives the contiguous row range
    // of its experts (the expert-major layout makes this a pure slice).
    let mut shard_inputs = Vec::with_capacity(num_shards);
    let mut rows_per_shard = Vec::with_capacity(num_shards);
    let mut offsets = vec![0usize; cfg.num_experts + 1];
    for e in 0..cfg.num_experts {
        offsets[e + 1] = offsets[e] + padded[e];
    }
    for s in 0..num_shards {
        let lo = offsets[s * experts_per_shard];
        let hi = offsets[(s + 1) * experts_per_shard];
        shard_inputs.push(xg.rows_range(lo, hi));
        rows_per_shard.push(hi - lo);
    }
    let dispatch_elements: usize = rows_per_shard.iter().map(|r| r * hidden).sum();

    // Each shard computes its local experts over a local topology using
    // its slice of the concatenated weights. Shards are the bands of one
    // launch plan over the combined output's row space: shard `s` writes
    // its expert outputs straight into its row range of `y` (the combine
    // all-to-all), and the nested sparse ops run inline on the worker.
    let mut y = Matrix::pooled_zeros(permute.padded_rows(), hidden);
    let band_lens: Vec<usize> = rows_per_shard.iter().map(|&r| r * hidden).collect();
    let shard_body = |band: &mut [f32], s: usize| {
        let local_padded = &padded[s * experts_per_shard..(s + 1) * experts_per_shard];
        let topo = Topology::for_moe(local_padded, ffn, cfg.block_size)
            .expect("padded counts are block-aligned");
        // Weight slices for this shard's experts.
        let col0 = s * experts_per_shard * ffn;
        let cols = experts_per_shard * ffn;
        let w1_local = Matrix::from_fn(hidden, cols, |i, j| layer.w1().value()[(i, col0 + j)]);
        let w2_local = layer.w2().value().rows_range(col0, col0 + cols);
        let h = ops::sdd(&shard_inputs[s], &w1_local, &topo).map(gelu_scalar);
        let out = ops::dsd(&h, &w2_local);
        band.copy_from_slice(out.as_slice());
        out.recycle();
        h.recycle();
    };
    exec::LaunchPlan::over_bands(
        "moe.expert_parallel",
        y.as_mut_slice(),
        band_lens,
        &shard_body,
    )
    .launch();

    // Materialize per-shard outputs for the buffers value (tests assert
    // on the exchange volumes and shapes).
    let shard_outputs: Vec<Matrix> = (0..num_shards)
        .map(|s| {
            let lo = offsets[s * experts_per_shard];
            let hi = offsets[(s + 1) * experts_per_shard];
            y.rows_range(lo, hi)
        })
        .collect();
    let output = padded_scatter(&y, &permute, &routing.weights);

    let stats = EpStats {
        num_shards,
        experts_per_shard,
        rows_per_shard,
        alltoall_elements: dispatch_elements,
    };
    let buffers = AllToAllBuffers {
        shard_inputs,
        shard_outputs,
        dispatch_elements,
    };
    (output, stats, buffers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MoeConfig;
    use megablocks_tensor::init::{normal, seeded_rng};

    fn layer(seed: u64) -> DroplessMoe {
        let mut rng = seeded_rng(seed);
        DroplessMoe::new(MoeConfig::new(6, 8, 4).with_block_size(4), &mut rng)
    }

    #[test]
    fn matches_single_device_for_every_shard_count() {
        let l = layer(1);
        let mut rng = seeded_rng(2);
        let x = normal(18, 6, 1.0, &mut rng);
        let reference = l.forward(&x).output;
        for shards in [1usize, 2, 4] {
            let (out, stats, _) = expert_parallel_forward(&l, &x, shards);
            assert!(
                out.approx_eq(&reference, 1e-4),
                "{shards} shards diverged by {}",
                out.max_abs_diff(&reference)
            );
            assert_eq!(stats.num_shards, shards);
            assert_eq!(stats.experts_per_shard, 4 / shards);
        }
    }

    #[test]
    fn alltoall_volume_accounts_all_padded_rows() {
        let l = layer(3);
        let mut rng = seeded_rng(4);
        let x = normal(25, 6, 1.0, &mut rng);
        let (_, stats, buffers) = expert_parallel_forward(&l, &x, 2);
        let total_rows: usize = stats.rows_per_shard.iter().sum();
        assert_eq!(stats.alltoall_elements, total_rows * 6);
        assert_eq!(buffers.dispatch_elements, stats.alltoall_elements);
        // Shard buffers have the advertised shapes.
        for (inp, &rows) in buffers.shard_inputs.iter().zip(&stats.rows_per_shard) {
            assert_eq!(inp.shape(), (rows, 6));
        }
        for (out, &rows) in buffers.shard_outputs.iter().zip(&stats.rows_per_shard) {
            assert_eq!(out.shape(), (rows, 6));
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn shard_count_must_divide_experts() {
        let l = layer(5);
        let mut rng = seeded_rng(6);
        let x = normal(8, 6, 1.0, &mut rng);
        let _ = expert_parallel_forward(&l, &x, 3);
    }

    #[test]
    fn imbalanced_shards_carry_their_actual_load() {
        // With heavy imbalance, shard row counts differ — no padding to a
        // worst-case shard (the dropless property survives distribution).
        let l = layer(7);
        let mut rng = seeded_rng(8);
        let x = normal(40, 6, 1.0, &mut rng);
        let (_, stats, _) = expert_parallel_forward(&l, &x, 2);
        let tokens = l.forward(&x).stats.tokens_per_expert;
        let padded: Vec<usize> = tokens.iter().map(|&t| t.div_ceil(4) * 4).collect();
        assert_eq!(stats.rows_per_shard[0], padded[0] + padded[1]);
        assert_eq!(stats.rows_per_shard[1], padded[2] + padded[3]);
    }
}

//! The token-dropping MoE baseline (paper §2–3).
//!
//! This is the GShard/Switch/Tutel formulation MegaBlocks compares against:
//! every expert gets a fixed-size token buffer (`expert_capacity`),
//! assignments beyond the capacity are *dropped* (the token's
//! representation survives only through the residual connection), and
//! under-full buffers are *padded* — wasting compute and memory. Expert
//! computation runs through the batched-matmul primitive
//! ([`megablocks_tensor::batched_matmul`]), which is exactly the constraint
//! that forces the capacity mechanism (Figure 3A).
//!
//! [`CapacityFactor::Dynamic`](crate::CapacityFactor::Dynamic) reproduces
//! Tutel's no-drop mode: capacity is set per step to the maximum expert
//! load, trading dropping for worst-case padding — the memory-hungry
//! behaviour that shrinks Tutel's feasible micro-batch sizes in Table 3.

use megablocks_telemetry as telemetry;
use megablocks_tensor::ops::{gelu_grad_scalar, gelu_scalar};
use megablocks_tensor::{batched_matmul, init, BatchedMatrix, Matrix};
use rand::rngs::StdRng;

use crate::{load_balancing_loss, CapacityFactor, MoeConfig, MoeStats, Param, Router, Routing};

/// Where each routing assignment landed: a buffer slot or the floor.
type Slot = Option<(usize, usize)>; // (expert, position within buffer)

/// Forward-pass cache for [`DroppingMoe::backward`].
#[derive(Debug, Clone)]
pub struct DroppingMoeCache {
    x: Matrix,
    routing: Routing,
    slots: Vec<Slot>,
    capacity: usize,
    xb: BatchedMatrix,
    h_pre: BatchedMatrix,
    h_act: BatchedMatrix,
    y: BatchedMatrix,
    d_probs_aux: Matrix,
}

/// Result of [`DroppingMoe::forward`].
#[derive(Debug, Clone)]
pub struct DroppingMoeOutput {
    /// Layer output, `num_tokens x hidden_size`. Dropped tokens produce
    /// zero rows (their value re-enters through the residual connection).
    pub output: Matrix,
    /// Forward statistics, including the number of dropped assignments and
    /// padding waste.
    pub stats: MoeStats,
    /// Cache to pass to [`DroppingMoe::backward`].
    pub cache: DroppingMoeCache,
}

/// Token-dropping MoE layer computed with batched matrix multiplication.
#[derive(Debug, Clone)]
pub struct DroppingMoe {
    cfg: MoeConfig,
    router: Router,
    w1: Param,
    w2: Param,
}

impl DroppingMoe {
    /// Creates a layer with the same parameterization (and, for equal
    /// seeds, identical initial weights) as [`crate::DroplessMoe`].
    pub fn new(cfg: MoeConfig, rng: &mut StdRng) -> Self {
        let inner = cfg.num_experts * cfg.ffn_hidden_size;
        let router = Router::new(cfg.hidden_size, cfg.num_experts, cfg.top_k, rng);
        let w1 = Param::new(init::gpt2_normal(cfg.hidden_size, inner, rng));
        let w2 = Param::new(init::gpt2_normal(inner, cfg.hidden_size, rng));
        Self {
            cfg,
            router,
            w1,
            w2,
        }
    }

    /// The layer configuration.
    pub fn config(&self) -> &MoeConfig {
        &self.cfg
    }

    /// The router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// All trainable parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![self.router.weight_mut(), &mut self.w1, &mut self.w2]
    }

    /// The first expert-layer weight (`hidden x num_experts*ffn`).
    pub fn w1(&self) -> &Param {
        &self.w1
    }

    /// The second expert-layer weight (`num_experts*ffn x hidden`).
    pub fn w2(&self) -> &Param {
        &self.w2
    }

    /// Expert capacity for a batch of `num_tokens` under the configured
    /// policy; for [`CapacityFactor::Dynamic`] this needs the realized
    /// per-expert loads.
    fn capacity(&self, num_tokens: usize, tokens_per_expert: &[usize]) -> usize {
        match self.cfg.capacity {
            CapacityFactor::Fixed(f) => self.cfg.expert_capacity(num_tokens, f).max(1),
            CapacityFactor::Dynamic => tokens_per_expert.iter().copied().max().unwrap_or(0).max(1),
        }
    }

    /// Runs the forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != hidden_size`.
    pub fn forward(&self, x: &Matrix) -> DroppingMoeOutput {
        assert_eq!(
            x.cols(),
            self.cfg.hidden_size,
            "input feature size mismatch"
        );
        let _span = telemetry::span("moe.dropping.forward");
        let num_tokens = x.rows();
        let e = self.cfg.num_experts;
        let hidden = self.cfg.hidden_size;

        let routing = self.router.forward(x);
        let tokens_per_expert = routing.tokens_per_expert();
        let capacity = self.capacity(num_tokens, &tokens_per_expert);

        // Fill expert buffers in token order; overflow drops.
        let mut fill = vec![0usize; e];
        let mut dropped = 0usize;
        let slots: Vec<Slot> = routing
            .expert_indices
            .iter()
            .map(|&ex| {
                if fill[ex] < capacity {
                    let s = (ex, fill[ex]);
                    fill[ex] += 1;
                    Some(s)
                } else {
                    dropped += 1;
                    None
                }
            })
            .collect();

        // Permute into the batched operand (padding rows stay zero).
        let mut xb = BatchedMatrix::zeros(e, capacity, hidden);
        for (a, slot) in slots.iter().enumerate() {
            if let Some((ex, pos)) = *slot {
                let t = a / routing.top_k;
                xb.get_mut(ex).row_mut(pos).copy_from_slice(x.row(t));
            }
        }

        // Batched expert MLP: the Figure 3A formulation.
        let w1b = self.expert_batch(self.w1.value(), true);
        let w2b = self.expert_batch(self.w2.value(), false);
        let h_pre = batched_matmul(&xb, &w1b);
        let mut h_act = h_pre.clone();
        for i in 0..e {
            h_act.get_mut(i).map_inplace(gelu_scalar);
        }
        let y = batched_matmul(&h_act, &w2b);

        // Un-permute with confidence scaling; dropped assignments emit 0.
        let mut output = Matrix::zeros(num_tokens, hidden);
        for (a, slot) in slots.iter().enumerate() {
            if let Some((ex, pos)) = *slot {
                let t = a / routing.top_k;
                let w = routing.weights[a];
                let src = y.get(ex).row(pos);
                for (o, s) in output.row_mut(t).iter_mut().zip(src) {
                    *o += w * s;
                }
            }
        }

        let lb = load_balancing_loss(&routing, self.cfg.load_balance_weight);
        let kept = routing.expert_indices.len() - dropped;
        let stats = MoeStats {
            dropped_tokens: dropped,
            padding_rows: e * capacity - kept,
            tokens_per_expert,
            load_balancing_loss: lb.loss,
            padding_overhead: MoeStats::overhead(e * capacity - kept, kept),
            // `fill` holds the number of assignments each buffer accepted.
            expert_load: fill.clone(),
        };
        crate::record_moe_stats(&stats);
        DroppingMoeOutput {
            output,
            stats,
            cache: DroppingMoeCache {
                x: x.clone(),
                routing,
                slots,
                capacity,
                xb,
                h_pre,
                h_act,
                y,
                d_probs_aux: lb.d_probs,
            },
        }
    }

    /// Runs the backward pass, accumulating parameter gradients and
    /// returning the input gradient. Dropped tokens receive gradient only
    /// through the router.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the forward output shape.
    pub fn backward(&mut self, cache: &DroppingMoeCache, d_out: &Matrix) -> Matrix {
        let _span = telemetry::span("moe.dropping.backward");
        let e = self.cfg.num_experts;
        let ffn = self.cfg.ffn_hidden_size;
        let hidden = self.cfg.hidden_size;
        assert_eq!(
            d_out.shape(),
            (cache.x.rows(), hidden),
            "d_out shape mismatch"
        );

        // Un-permute backward.
        let mut dy = BatchedMatrix::zeros(e, cache.capacity, hidden);
        let mut d_weights = vec![0.0f32; cache.slots.len()];
        for (a, slot) in cache.slots.iter().enumerate() {
            if let Some((ex, pos)) = *slot {
                let t = a / cache.routing.top_k;
                let w = cache.routing.weights[a];
                let y_row = cache.y.get(ex).row(pos).to_vec();
                let d_row = d_out.row(t);
                d_weights[a] = d_row.iter().zip(&y_row).map(|(d, v)| d * v).sum();
                let dst = dy.get_mut(ex).row_mut(pos);
                for (o, d) in dst.iter_mut().zip(d_row) {
                    *o = w * d;
                }
            }
        }

        // Per-expert MLP backward (batched GEMMs).
        let w1b = self.expert_batch(self.w1.value(), true);
        let w2b = self.expert_batch(self.w2.value(), false);
        let mut dxb = BatchedMatrix::zeros(e, cache.capacity, hidden);
        for ex in 0..e {
            let dh_act = megablocks_tensor::matmul_nt(dy.get(ex), w2b.get(ex));
            let dw2 = megablocks_tensor::matmul_tn(cache.h_act.get(ex), dy.get(ex));
            // Scatter dw2 into the concatenated parameter rows.
            for j in 0..ffn {
                let dst = self.w2.grad_mut().row_mut(ex * ffn + j);
                for (d, s) in dst.iter_mut().zip(dw2.row(j)) {
                    *d += s;
                }
            }
            let mut dh = dh_act;
            for (g, &pre) in dh
                .as_mut_slice()
                .iter_mut()
                .zip(cache.h_pre.get(ex).as_slice())
            {
                *g *= gelu_grad_scalar(pre);
            }
            let dxe = megablocks_tensor::matmul_nt(&dh, w1b.get(ex));
            let dw1 = megablocks_tensor::matmul_tn(cache.xb.get(ex), &dh);
            for r in 0..hidden {
                let dst = &mut self.w1.grad_mut().row_mut(r)[ex * ffn..(ex + 1) * ffn];
                for (d, s) in dst.iter_mut().zip(dw1.row(r)) {
                    *d += s;
                }
            }
            *dxb.get_mut(ex) = dxe;
        }

        // Permute backward: kept assignments return gradient to tokens.
        let mut dx = Matrix::zeros(cache.x.rows(), hidden);
        for (a, slot) in cache.slots.iter().enumerate() {
            if let Some((ex, pos)) = *slot {
                let t = a / cache.routing.top_k;
                let src = dxb.get(ex).row(pos);
                let dst = dx.row_mut(t);
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        }

        let dx_router = self.router.backward(
            &cache.x,
            &cache.routing,
            &d_weights,
            Some(&cache.d_probs_aux),
        );
        dx.add_assign(&dx_router);
        dx
    }

    /// Slices the concatenated weight into one per-expert matrix batch.
    /// `columns = true` slices `w1` (`hidden x E*ffn`) by column group;
    /// otherwise slices `w2` (`E*ffn x hidden`) by row group.
    fn expert_batch(&self, w: &Matrix, columns: bool) -> BatchedMatrix {
        let e = self.cfg.num_experts;
        let ffn = self.cfg.ffn_hidden_size;
        let hidden = self.cfg.hidden_size;
        let entries: Vec<Matrix> = (0..e)
            .map(|ex| {
                if columns {
                    Matrix::from_fn(hidden, ffn, |i, j| w[(i, ex * ffn + j)])
                } else {
                    w.rows_range(ex * ffn, (ex + 1) * ffn)
                }
            })
            .collect();
        BatchedMatrix::from_matrices(entries).expect("expert slices share shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_tensor::init::seeded_rng;

    fn cfg() -> MoeConfig {
        MoeConfig::new(6, 8, 3).with_block_size(4)
    }

    #[test]
    fn capacity_one_drops_overflow() {
        let mut rng = seeded_rng(1);
        let layer = DroppingMoe::new(cfg().with_capacity(CapacityFactor::Fixed(1.0)), &mut rng);
        let x = init::normal(30, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        // capacity = ceil(30/3) = 10; routing is imbalanced at init, so some
        // expert exceeds 10 with high probability for this seed.
        let max_load = *out.stats.tokens_per_expert.iter().max().unwrap();
        if max_load > 10 {
            assert!(out.stats.dropped_tokens > 0);
        }
        let expected_drops: usize = out
            .stats
            .tokens_per_expert
            .iter()
            .map(|&t| t.saturating_sub(10))
            .sum();
        assert_eq!(out.stats.dropped_tokens, expected_drops);
        // Kept load is the assignment count clamped to capacity.
        let expected_load: Vec<usize> = out
            .stats
            .tokens_per_expert
            .iter()
            .map(|&t| t.min(10))
            .collect();
        assert_eq!(out.stats.expert_load, expected_load);
        let kept: usize = expected_load.iter().sum();
        let want_overhead = out.stats.padding_rows as f32 / kept as f32;
        assert!((out.stats.padding_overhead - want_overhead).abs() < 1e-6);
    }

    #[test]
    fn dynamic_capacity_never_drops() {
        let mut rng = seeded_rng(2);
        let layer = DroppingMoe::new(cfg().with_capacity(CapacityFactor::Dynamic), &mut rng);
        let x = init::normal(25, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        assert_eq!(out.stats.dropped_tokens, 0);
        // Padding pads every expert to the max load.
        let max_load = *out.stats.tokens_per_expert.iter().max().unwrap();
        assert_eq!(out.stats.padding_rows, 3 * max_load - 25);
    }

    #[test]
    fn dropped_tokens_produce_zero_output_rows() {
        let mut rng = seeded_rng(3);
        let layer = DroppingMoe::new(cfg().with_capacity(CapacityFactor::Fixed(0.05)), &mut rng);
        // capacity = max(ceil(12/3*0.05),1) = 1: most tokens drop.
        let x = init::normal(12, 6, 1.0, &mut rng);
        let out = layer.forward(&x);
        assert!(out.stats.dropped_tokens >= 12 - 3);
        for (a, slot) in out.cache.slots.iter().enumerate() {
            if slot.is_none() {
                assert!(out.output.row(a).iter().all(|&v| v == 0.0));
            }
        }
    }

    #[test]
    fn dynamic_matches_dropless_outputs() {
        // With dynamic capacity (no drops), the dropping layer computes the
        // same function as the dMoE given identical weights.
        let mut rng1 = seeded_rng(7);
        let mut rng2 = seeded_rng(7);
        let dropping = DroppingMoe::new(cfg().with_capacity(CapacityFactor::Dynamic), &mut rng1);
        let dropless = crate::DroplessMoe::new(cfg(), &mut rng2);
        let mut rng = seeded_rng(8);
        let x = init::normal(20, 6, 1.0, &mut rng);
        let a = dropping.forward(&x);
        let b = dropless.forward(&x);
        assert!(
            a.output.approx_eq(&b.output, 1e-4),
            "diff {}",
            a.output.max_abs_diff(&b.output)
        );
        assert_eq!(a.stats.dropped_tokens, 0);
        assert_eq!(b.stats.dropped_tokens, 0);
    }

    #[test]
    fn backward_matches_dropless_when_no_drops() {
        let mut rng1 = seeded_rng(9);
        let mut rng2 = seeded_rng(9);
        let mut dropping =
            DroppingMoe::new(cfg().with_capacity(CapacityFactor::Dynamic), &mut rng1);
        let mut dropless = crate::DroplessMoe::new(cfg(), &mut rng2);
        let mut rng = seeded_rng(10);
        let x = init::normal(14, 6, 1.0, &mut rng);
        let d = init::normal(14, 6, 0.3, &mut rng);
        let oa = dropping.forward(&x);
        let ob = dropless.forward(&x);
        let dxa = dropping.backward(&oa.cache, &d);
        let dxb = dropless.backward(&ob.cache, &d);
        assert!(
            dxa.approx_eq(&dxb, 1e-3),
            "dx diff {}",
            dxa.max_abs_diff(&dxb)
        );
        let ga = dropping.w1().grad();
        let gb = dropless.w1().grad();
        assert!(ga.approx_eq(gb, 1e-3), "dw1 diff {}", ga.max_abs_diff(gb));
        let ga = dropping.w2().grad();
        let gb = dropless.w2().grad();
        assert!(ga.approx_eq(gb, 1e-3), "dw2 diff {}", ga.max_abs_diff(gb));
    }

    #[test]
    fn higher_capacity_factor_means_more_padding_fewer_drops() {
        let mut drops = Vec::new();
        let mut pads = Vec::new();
        for cf in [1.0f32, 1.5, 2.0] {
            let mut rng = seeded_rng(11);
            let layer = DroppingMoe::new(cfg().with_capacity(CapacityFactor::Fixed(cf)), &mut rng);
            let x = init::normal(60, 6, 1.0, &mut rng);
            let out = layer.forward(&x);
            drops.push(out.stats.dropped_tokens);
            pads.push(out.stats.padding_rows);
        }
        assert!(
            drops[0] >= drops[1] && drops[1] >= drops[2],
            "drops {drops:?}"
        );
        assert!(pads[0] <= pads[1] && pads[1] <= pads[2], "pads {pads:?}");
    }
}

//! Token permutation for dMoE layers (paper §5.2).
//!
//! The dMoE groups token rows by expert and pads each group with zero rows
//! to the next multiple of the block size, so the block-sparse kernels only
//! ever see whole blocks. The paper fuses the padding into custom
//! permutation kernels (`padded_gather` / `padded_scatter` in Figure 6);
//! this module reproduces them as launch plans on the shared execution
//! runtime, parallelized over disjoint output-row bands: gather-style
//! kernels iterate destination rows through the precomputed inverse
//! assignment map, scatter-style kernels iterate tokens (a token's `top_k`
//! assignments are consecutive), so no two bands ever touch the same
//! output row.

use megablocks_exec as exec;
use megablocks_sparse::BlockSize;
use megablocks_telemetry as telemetry;
use megablocks_tensor::Matrix;

use crate::Routing;

/// Precomputed permutation metadata for one routing decision.
///
/// Built once per layer invocation (like the sparse [`Topology`]'s
/// metadata, its cost is amortized over the forward and backward passes).
///
/// [`Topology`]: megablocks_sparse::Topology
#[derive(Debug, Clone, PartialEq)]
pub struct PermuteInfo {
    num_tokens: usize,
    top_k: usize,
    tokens_per_expert: Vec<usize>,
    padded_tokens_per_expert: Vec<usize>,
    assignment_row: Vec<usize>,
    /// Inverse of `assignment_row`: the assignment landing on each padded
    /// row, or [`PAD_ROW`] for pure padding rows. Lets gather-style
    /// kernels parallelize over destination rows.
    assignment_of_row: Vec<usize>,
    padded_rows: usize,
}

/// Marker in [`PermuteInfo::assignment_of_row`] for padding rows (no
/// assignment writes there).
const PAD_ROW: usize = usize::MAX;

/// Elements moved below this stay single-banded: a permutation kernel is
/// pure memory traffic, so small copies never amortize a pooled launch.
const PARALLEL_THRESHOLD: usize = 1 << 16;

impl PermuteInfo {
    /// Builds permutation metadata from a routing decision, padding each
    /// expert's token group to a multiple of `block_size`.
    pub fn new(routing: &Routing, num_experts: usize, block_size: BlockSize) -> Self {
        Self::with_alignment(
            &routing.expert_indices,
            num_experts,
            routing.top_k,
            block_size.get(),
        )
    }

    /// Builds permutation metadata with an arbitrary row alignment.
    ///
    /// `alignment = 1` produces an unpadded grouping (useful for the
    /// dropping baseline's bookkeeping and for tests).
    ///
    /// # Panics
    ///
    /// Panics if `alignment == 0`, if any expert index is out of range, or
    /// if the assignment count is not a multiple of `top_k`.
    pub fn with_alignment(
        expert_indices: &[usize],
        num_experts: usize,
        top_k: usize,
        alignment: usize,
    ) -> Self {
        assert!(alignment > 0, "alignment must be nonzero");
        assert!(top_k > 0, "top_k must be nonzero");
        let _span = telemetry::span("moe.permute_build");
        assert!(
            expert_indices.len().is_multiple_of(top_k),
            "assignment count {} is not a multiple of top_k {}",
            expert_indices.len(),
            top_k
        );
        let num_tokens = expert_indices.len() / top_k;

        let mut tokens_per_expert = vec![0usize; num_experts];
        for &e in expert_indices {
            assert!(e < num_experts, "expert index {e} out of range");
            tokens_per_expert[e] += 1;
        }
        let padded_tokens_per_expert: Vec<usize> = tokens_per_expert
            .iter()
            .map(|&c| c.div_ceil(alignment) * alignment)
            .collect();

        let mut offsets = vec![0usize; num_experts];
        let mut acc = 0usize;
        for (o, &p) in offsets.iter_mut().zip(&padded_tokens_per_expert) {
            *o = acc;
            acc += p;
        }
        let padded_rows = acc;

        // Stable grouping: assignments keep token order within each expert.
        let mut fill = vec![0usize; num_experts];
        let assignment_row: Vec<usize> = expert_indices
            .iter()
            .map(|&e| {
                let row = offsets[e] + fill[e];
                fill[e] += 1;
                row
            })
            .collect();
        let mut assignment_of_row = vec![PAD_ROW; padded_rows];
        for (a, &row) in assignment_row.iter().enumerate() {
            assignment_of_row[row] = a;
        }

        let info = Self {
            num_tokens,
            top_k,
            tokens_per_expert,
            padded_tokens_per_expert,
            assignment_row,
            assignment_of_row,
            padded_rows,
        };
        sanitize_permutation(&info);
        info
    }

    /// Number of tokens in the batch.
    pub fn num_tokens(&self) -> usize {
        self.num_tokens
    }

    /// Assignments per token.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Unpadded per-expert assignment counts.
    pub fn tokens_per_expert(&self) -> &[usize] {
        &self.tokens_per_expert
    }

    /// Per-expert counts after padding to the alignment.
    pub fn padded_tokens_per_expert(&self) -> &[usize] {
        &self.padded_tokens_per_expert
    }

    /// Total rows of the permuted (gathered) matrix.
    pub fn padded_rows(&self) -> usize {
        self.padded_rows
    }

    /// Rows of pure padding in the permuted matrix.
    pub fn padding_rows(&self) -> usize {
        self.padded_rows - self.assignment_row.len()
    }

    /// Destination row of assignment `a` in the permuted matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn row_of(&self, a: usize) -> usize {
        self.assignment_row[a]
    }

    /// Source token of assignment `a`.
    pub fn token_of(&self, a: usize) -> usize {
        a / self.top_k
    }

    /// Number of assignments (`num_tokens * top_k`).
    pub fn num_assignments(&self) -> usize {
        self.assignment_row.len()
    }
}

/// Checks that the assignment-to-row map is injective into the padded row
/// range — every gather/scatter write target is distinct, so the permutation
/// kernels are race-free even if parallelized over assignments.
#[cfg(feature = "sanitize")]
fn sanitize_permutation(info: &PermuteInfo) {
    let mut seen = vec![false; info.padded_rows];
    for (a, &row) in info.assignment_row.iter().enumerate() {
        assert!(
            row < info.padded_rows,
            "sanitize: assignment {a} maps to row {row} >= padded_rows {}",
            info.padded_rows
        );
        assert!(
            !seen[row],
            "sanitize: assignments collide on permuted row {row}"
        );
        seen[row] = true;
    }
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn sanitize_permutation(_info: &PermuteInfo) {}

/// Permutes token rows into expert-grouped, block-padded order (Figure 6,
/// line 15). Padding rows are zero.
///
/// # Panics
///
/// Panics if `x.rows() != info.num_tokens()`.
pub fn padded_gather(x: &Matrix, info: &PermuteInfo) -> Matrix {
    assert_eq!(
        x.rows(),
        info.num_tokens(),
        "padded_gather token count mismatch"
    );
    let _span = telemetry::span("moe.padded_gather");
    let cols = x.cols();
    let rows = info.padded_rows();
    let mut out = Matrix::pooled_zeros(rows, cols);
    if cols == 0 || rows == 0 {
        return out;
    }
    // Bands of destination rows; each row's source (or padding) comes from
    // the precomputed inverse map, so bands never share a write target.
    let bands = exec::parallelism_for(rows * cols, PARALLEL_THRESHOLD).min(rows);
    let body = |band: &mut [f32], r0: usize| {
        for (i, orow) in band.chunks_mut(cols).enumerate() {
            let a = info.assignment_of_row[r0 + i];
            if a != PAD_ROW {
                orow.copy_from_slice(x.row(info.token_of(a)));
            }
        }
    };
    exec::LaunchPlan::over_items(
        "moe.padded_gather",
        out.as_mut_slice(),
        cols,
        rows.div_ceil(bands),
        &body,
    )
    .launch();
    out
}

/// Backward of [`padded_gather`]: scatters gradient rows back to tokens,
/// summing over a token's `top_k` assignments. Padding-row gradients are
/// discarded (those rows hold no data).
///
/// # Panics
///
/// Panics if `d_gathered.rows() != info.padded_rows()`.
pub fn padded_gather_backward(d_gathered: &Matrix, info: &PermuteInfo) -> Matrix {
    assert_eq!(
        d_gathered.rows(),
        info.padded_rows(),
        "padded_gather_backward row count mismatch"
    );
    let _span = telemetry::span("moe.padded_gather_backward");
    let cols = d_gathered.cols();
    let tokens = info.num_tokens();
    let mut dx = Matrix::pooled_zeros(tokens, cols);
    if cols == 0 || tokens == 0 {
        return dx;
    }
    // Bands of token rows: a token's top_k assignments are consecutive, so
    // each band reduces its own tokens' gradients without sharing writes.
    let top_k = info.top_k();
    let bands = exec::parallelism_for(tokens * top_k * cols, PARALLEL_THRESHOLD).min(tokens);
    let body = |band: &mut [f32], t0: usize| {
        for (i, dst) in band.chunks_mut(cols).enumerate() {
            for k in 0..top_k {
                let src = d_gathered.row(info.row_of((t0 + i) * top_k + k));
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        }
    };
    exec::LaunchPlan::over_items(
        "moe.padded_gather_backward",
        dx.as_mut_slice(),
        cols,
        tokens.div_ceil(bands),
        &body,
    )
    .launch();
    dx
}

/// Un-permutes expert outputs back to token order, scaling each
/// assignment's rows by its router confidence weight and summing a token's
/// `top_k` contributions (Figure 6, lines 27-28).
///
/// # Panics
///
/// Panics if shapes or weight counts are inconsistent with `info`.
pub fn padded_scatter(y: &Matrix, info: &PermuteInfo, weights: &[f32]) -> Matrix {
    assert_eq!(
        y.rows(),
        info.padded_rows(),
        "padded_scatter row count mismatch"
    );
    assert_eq!(
        weights.len(),
        info.num_assignments(),
        "one weight per assignment required"
    );
    let _span = telemetry::span("moe.padded_scatter");
    let cols = y.cols();
    let tokens = info.num_tokens();
    let mut out = Matrix::pooled_zeros(tokens, cols);
    if cols == 0 || tokens == 0 {
        return out;
    }
    // Bands of token rows, as in the gather backward: each band sums its
    // own tokens' weighted top_k contributions.
    let top_k = info.top_k();
    let bands = exec::parallelism_for(tokens * top_k * cols, PARALLEL_THRESHOLD).min(tokens);
    let body = |band: &mut [f32], t0: usize| {
        for (i, dst) in band.chunks_mut(cols).enumerate() {
            for k in 0..top_k {
                let a = (t0 + i) * top_k + k;
                let w = weights[a];
                let src = y.row(info.row_of(a));
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += w * s;
                }
            }
        }
    };
    exec::LaunchPlan::over_items(
        "moe.padded_scatter",
        out.as_mut_slice(),
        cols,
        tokens.div_ceil(bands),
        &body,
    )
    .launch();
    out
}

/// Backward of [`padded_scatter`].
///
/// Returns `(d_y, d_weights)`: the gradient flowing to the permuted expert
/// outputs (zero on padding rows) and the gradient of each assignment's
/// confidence weight (`dot(d_out[token], y[row])`).
///
/// # Panics
///
/// Panics if shapes are inconsistent with `info`.
pub fn padded_scatter_backward(
    d_out: &Matrix,
    y: &Matrix,
    info: &PermuteInfo,
    weights: &[f32],
) -> (Matrix, Vec<f32>) {
    assert_eq!(
        d_out.rows(),
        info.num_tokens(),
        "d_out token count mismatch"
    );
    assert_eq!(y.rows(), info.padded_rows(), "y row count mismatch");
    assert_eq!(
        weights.len(),
        info.num_assignments(),
        "weights count mismatch"
    );
    let _span = telemetry::span("moe.padded_scatter_backward");
    let cols = d_out.cols();
    let rows = info.padded_rows();
    let assignments = info.num_assignments();
    let mut dy = Matrix::pooled_zeros(rows, cols);
    let mut d_weights = exec::workspace::take_zeroed(assignments);

    // Two independent plans: dy bands over padded rows (via the inverse
    // map, padding rows stay zero) and d_weights bands over assignments.
    if cols > 0 && rows > 0 {
        let bands = exec::parallelism_for(rows * cols, PARALLEL_THRESHOLD).min(rows);
        let body = |band: &mut [f32], r0: usize| {
            for (i, dst) in band.chunks_mut(cols).enumerate() {
                let a = info.assignment_of_row[r0 + i];
                if a == PAD_ROW {
                    continue;
                }
                let w = weights[a];
                let d_row = d_out.row(info.token_of(a));
                for (o, d) in dst.iter_mut().zip(d_row) {
                    *o = w * d;
                }
            }
        };
        exec::LaunchPlan::over_items(
            "moe.padded_scatter_backward",
            dy.as_mut_slice(),
            cols,
            rows.div_ceil(bands),
            &body,
        )
        .launch();
    }
    if assignments > 0 {
        let bands =
            exec::parallelism_for(assignments * cols.max(1), PARALLEL_THRESHOLD).min(assignments);
        let body = |band: &mut [f32], a0: usize| {
            for (i, dw) in band.iter_mut().enumerate() {
                let a = a0 + i;
                let d_row = d_out.row(info.token_of(a));
                let y_row = y.row(info.row_of(a));
                *dw = d_row.iter().zip(y_row).map(|(d, v)| d * v).sum();
            }
        };
        exec::LaunchPlan::over_items(
            "moe.padded_scatter_dw",
            &mut d_weights,
            1,
            assignments.div_ceil(bands),
            &body,
        )
        .launch();
    }
    (dy, d_weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(indices: &[usize], experts: usize, top_k: usize, align: usize) -> PermuteInfo {
        PermuteInfo::with_alignment(indices, experts, top_k, align)
    }

    #[test]
    fn grouping_is_stable_and_padded() {
        // tokens 0..5 routed: [1, 0, 1, 1, 0] with alignment 2.
        let p = info(&[1, 0, 1, 1, 0], 3, 1, 2);
        assert_eq!(p.tokens_per_expert(), &[2, 3, 0]);
        assert_eq!(p.padded_tokens_per_expert(), &[2, 4, 0]);
        assert_eq!(p.padded_rows(), 6);
        assert_eq!(p.padding_rows(), 1);
        // expert 0 occupies rows 0..2: tokens 1 then 4 (stable order)
        assert_eq!(p.row_of(1), 0);
        assert_eq!(p.row_of(4), 1);
        // expert 1 occupies rows 2..6: tokens 0, 2, 3
        assert_eq!(p.row_of(0), 2);
        assert_eq!(p.row_of(2), 3);
        assert_eq!(p.row_of(3), 4);
    }

    #[test]
    fn gather_scatter_roundtrip_top1_unit_weights() {
        let p = info(&[1, 0, 1, 1, 0], 2, 1, 4);
        let x = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f32);
        let g = padded_gather(&x, &p);
        assert_eq!(g.rows(), p.padded_rows());
        let back = padded_scatter(&g, &p, &[1.0; 5]);
        assert!(back.approx_eq(&x, 1e-6));
    }

    #[test]
    fn padding_rows_are_zero() {
        let p = info(&[0, 0, 1], 2, 1, 4);
        let x = Matrix::full(3, 2, 7.0);
        let g = padded_gather(&x, &p);
        // expert 0: rows 0..4 (2 data + 2 pad), expert 1: rows 4..8 (1 + 3 pad)
        assert_eq!(g.row(0), &[7.0, 7.0]);
        assert_eq!(g.row(1), &[7.0, 7.0]);
        assert_eq!(g.row(2), &[0.0, 0.0]);
        assert_eq!(g.row(3), &[0.0, 0.0]);
        assert_eq!(g.row(4), &[7.0, 7.0]);
        assert!(g.row(7).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scatter_applies_weights_and_sums_top_k() {
        // 2 tokens, top_k = 2: token 0 -> experts (0, 1), token 1 -> (1, 0).
        let p = info(&[0, 1, 1, 0], 2, 2, 1);
        let mut y = Matrix::zeros(4, 1);
        for a in 0..4 {
            y[(p.row_of(a), 0)] = (a + 1) as f32; // assignment a produced value a+1
        }
        let out = padded_scatter(&y, &p, &[0.5, 0.25, 1.0, 2.0]);
        // token 0 = 0.5 * 1 + 0.25 * 2 = 1.0; token 1 = 1.0 * 3 + 2.0 * 4 = 11.0
        assert!((out[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((out[(1, 0)] - 11.0).abs() < 1e-6);
    }

    #[test]
    fn scatter_backward_produces_weight_grads_and_zero_padding_grad() {
        let p = info(&[0, 1], 2, 1, 2);
        let y = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f32);
        let d_out = Matrix::full(2, 2, 1.0);
        let (dy, dw) = padded_scatter_backward(&d_out, &y, &p, &[2.0, 3.0]);
        // d_weights[a] = dot(d_out[t], y[row]) = sum of y row.
        assert!((dw[0] - (0.0 + 1.0)).abs() < 1e-6);
        assert!((dw[1] - (4.0 + 5.0)).abs() < 1e-6);
        // dy rows scaled by weights; padding rows (1 and 3) zero.
        assert_eq!(dy.row(0), &[2.0, 2.0]);
        assert_eq!(dy.row(2), &[3.0, 3.0]);
        assert!(dy.row(1).iter().all(|&v| v == 0.0));
        assert!(dy.row(3).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gather_backward_sums_assignments() {
        let p = info(&[0, 1, 1, 0], 2, 2, 1);
        let d_g = Matrix::from_fn(4, 1, |i, _| (i + 1) as f32);
        let dx = padded_gather_backward(&d_g, &p);
        assert_eq!(dx.rows(), 2);
        // token 0's assignments land at rows row_of(0), row_of(1).
        let want0 = d_g[(p.row_of(0), 0)] + d_g[(p.row_of(1), 0)];
        let want1 = d_g[(p.row_of(2), 0)] + d_g[(p.row_of(3), 0)];
        assert!((dx[(0, 0)] - want0).abs() < 1e-6);
        assert!((dx[(1, 0)] - want1).abs() < 1e-6);
    }

    #[test]
    fn zero_token_experts_occupy_no_rows() {
        let p = info(&[2, 2], 4, 1, 8);
        assert_eq!(p.padded_tokens_per_expert(), &[0, 0, 8, 0]);
        assert_eq!(p.padded_rows(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_expert_index_panics() {
        let _ = info(&[5], 2, 1, 1);
    }
}

//! The learned top-k router (paper §2.1).
//!
//! Tokens are projected from `hidden_size` features to `num_experts` scores
//! by a learned weight matrix; scores are softmax-normalized and the top-k
//! experts per token are selected greedily. The selected probabilities are
//! the confidence weights that scale each expert's output (§2.4).

use megablocks_telemetry as telemetry;
use megablocks_tensor::ops::{softmax_rows, softmax_rows_backward};
use megablocks_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::rngs::StdRng;

use crate::Param;

/// The routing decision for one batch of tokens.
///
/// Assignments are stored token-major: assignment `a = t * top_k + k` is
/// token `t`'s `k`-th expert choice. For top-1 routing (the paper's
/// configuration) there is exactly one assignment per token.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// Softmax router probabilities, `num_tokens x num_experts`. Cached for
    /// the backward pass and the load-balancing loss.
    pub probs: Matrix,
    /// Expert chosen by each assignment (length `num_tokens * top_k`).
    pub expert_indices: Vec<usize>,
    /// Router probability of each assignment — the confidence weight that
    /// scales the expert output.
    pub weights: Vec<f32>,
    /// Number of experts each token is routed to.
    pub top_k: usize,
}

impl Routing {
    /// Number of tokens routed.
    pub fn num_tokens(&self) -> usize {
        self.probs.rows()
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.probs.cols()
    }

    /// Histogram of assignments per expert.
    pub fn tokens_per_expert(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_experts()];
        for &e in &self.expert_indices {
            counts[e] += 1;
        }
        counts
    }

    /// Shannon entropy (nats) of the realized expert-load distribution:
    /// `ln(num_experts)` for a perfectly balanced router, 0 when every
    /// assignment lands on one expert.
    pub fn load_entropy(&self) -> f32 {
        crate::count_entropy(&self.tokens_per_expert())
    }
}

/// The learned router: a linear projection to expert scores plus greedy
/// top-k selection.
#[derive(Debug, Clone)]
pub struct Router {
    weight: Param,
    top_k: usize,
}

impl Router {
    /// Creates a router for `hidden_size` features and `num_experts`
    /// experts, with GPT-2-style `N(0, 0.02)` initialization.
    ///
    /// # Panics
    ///
    /// Panics if `top_k` is zero or exceeds `num_experts`.
    pub fn new(hidden_size: usize, num_experts: usize, top_k: usize, rng: &mut StdRng) -> Self {
        assert!(
            top_k >= 1 && top_k <= num_experts,
            "top_k must be in 1..=num_experts"
        );
        Self {
            weight: Param::new(init::gpt2_normal(hidden_size, num_experts, rng)),
            top_k,
        }
    }

    /// The router projection weight (`hidden_size x num_experts`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Mutable access for the optimizer.
    pub fn weight_mut(&mut self) -> &mut Param {
        &mut self.weight
    }

    /// The number of experts selected per token.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Routes a batch of tokens (`num_tokens x hidden_size`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the router's hidden size.
    pub fn forward(&self, x: &Matrix) -> Routing {
        let _span = telemetry::span("moe.router.forward");
        let logits = matmul(x, self.weight.value());
        let probs = softmax_rows(&logits);
        let num_experts = probs.cols();
        let mut expert_indices = Vec::with_capacity(probs.rows() * self.top_k);
        let mut weights = Vec::with_capacity(probs.rows() * self.top_k);
        for t in 0..probs.rows() {
            let row = probs.row(t);
            for &e in top_k_indices(row, self.top_k).iter() {
                expert_indices.push(e);
                weights.push(row[e]);
            }
            let _ = num_experts;
        }
        Routing {
            probs,
            expert_indices,
            weights,
            top_k: self.top_k,
        }
    }

    /// Backward pass of the router.
    ///
    /// * `x` — the forward input.
    /// * `routing` — the forward output.
    /// * `d_weights` — gradient with respect to each assignment's
    ///   confidence weight (from the weighted un-permutation, §2.4).
    /// * `d_probs_extra` — optional additional gradient on the full
    ///   probability matrix (from the load-balancing loss).
    ///
    /// Accumulates the weight gradient internally and returns the gradient
    /// with respect to `x`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the forward pass.
    pub fn backward(
        &mut self,
        x: &Matrix,
        routing: &Routing,
        d_weights: &[f32],
        d_probs_extra: Option<&Matrix>,
    ) -> Matrix {
        assert_eq!(
            d_weights.len(),
            routing.expert_indices.len(),
            "one weight gradient per assignment required"
        );
        let _span = telemetry::span("moe.router.backward");
        let mut d_probs = match d_probs_extra {
            Some(m) => {
                assert_eq!(
                    m.shape(),
                    routing.probs.shape(),
                    "d_probs_extra shape mismatch"
                );
                m.clone()
            }
            None => Matrix::zeros(routing.probs.rows(), routing.probs.cols()),
        };
        for (a, (&e, &dw)) in routing.expert_indices.iter().zip(d_weights).enumerate() {
            let t = a / routing.top_k;
            d_probs[(t, e)] += dw;
        }
        let d_logits = softmax_rows_backward(&routing.probs, &d_probs);
        self.weight.accumulate(&matmul_tn(x, &d_logits));
        matmul_nt(&d_logits, self.weight.value())
    }
}

/// Indices of the `k` largest values of `row`, in descending value order
/// (ties broken toward the lower index, matching a stable greedy argmax).
fn top_k_indices(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_tensor::init::seeded_rng;

    #[test]
    fn top_k_indices_selects_largest() {
        assert_eq!(top_k_indices(&[0.1, 0.5, 0.4], 1), vec![1]);
        assert_eq!(top_k_indices(&[0.1, 0.5, 0.4], 2), vec![1, 2]);
        // Ties go to the lower index.
        assert_eq!(top_k_indices(&[0.3, 0.3, 0.3], 2), vec![0, 1]);
    }

    #[test]
    fn forward_shapes_and_weight_consistency() {
        let mut rng = seeded_rng(1);
        let router = Router::new(8, 4, 2, &mut rng);
        let x = init::normal(10, 8, 1.0, &mut rng);
        let r = router.forward(&x);
        assert_eq!(r.probs.shape(), (10, 4));
        assert_eq!(r.expert_indices.len(), 20);
        assert_eq!(r.weights.len(), 20);
        // Weights are the probabilities at the selected indices.
        for (a, (&e, &w)) in r.expert_indices.iter().zip(&r.weights).enumerate() {
            let t = a / 2;
            assert_eq!(w, r.probs[(t, e)]);
        }
        // Top-1 choice has weight >= top-2 choice.
        for t in 0..10 {
            assert!(r.weights[2 * t] >= r.weights[2 * t + 1]);
        }
    }

    #[test]
    fn tokens_per_expert_sums_to_assignments() {
        let mut rng = seeded_rng(2);
        let router = Router::new(6, 3, 1, &mut rng);
        let x = init::normal(32, 6, 1.0, &mut rng);
        let r = router.forward(&x);
        let counts = r.tokens_per_expert();
        assert_eq!(counts.iter().sum::<usize>(), 32);
    }

    #[test]
    fn backward_matches_finite_difference() {
        // Scalar objective: sum over assignments of c_a * weight_a where
        // c_a are fixed coefficients (this is how the layer output depends
        // on routing weights).
        let mut rng = seeded_rng(3);
        let mut router = Router::new(5, 3, 1, &mut rng);
        let x = init::normal(6, 5, 1.0, &mut rng);
        let coef: Vec<f32> = (0..6).map(|i| (i as f32 * 0.7).sin()).collect();

        let objective = |router: &Router, x: &Matrix| -> f32 {
            let r = router.forward(x);
            r.weights.iter().zip(&coef).map(|(w, c)| w * c).sum()
        };

        let base_routing = router.forward(&x);
        let dx = router.backward(&x, &base_routing, &coef, None);

        // Finite difference on x. (Assignment indices may flip for some
        // perturbations; keep epsilon small and tolerate coarse agreement.)
        let eps = 1e-3;
        let mut checked = 0;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp[(i, j)] += eps;
                let mut xm = x.clone();
                xm[(i, j)] -= eps;
                // Skip points where the top-k selection changes.
                let rp = router.forward(&xp);
                let rm = router.forward(&xm);
                if rp.expert_indices != base_routing.expert_indices
                    || rm.expert_indices != base_routing.expert_indices
                {
                    continue;
                }
                let num = (objective(&router, &xp) - objective(&router, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx[(i, j)]).abs() < 3e-2 * (1.0 + num.abs()),
                    "dx mismatch at ({i},{j}): numeric {num}, analytic {}",
                    dx[(i, j)]
                );
                checked += 1;
            }
        }
        assert!(checked > 10, "too few finite-difference points were stable");

        // Weight gradient finite difference on one entry.
        let g = router.weight().grad()[(2, 1)];
        let orig = router.weight().value()[(2, 1)];
        router.weight_mut().value_mut()[(2, 1)] = orig + eps;
        let fp = objective(&router, &x);
        router.weight_mut().value_mut()[(2, 1)] = orig - eps;
        let fm = objective(&router, &x);
        router.weight_mut().value_mut()[(2, 1)] = orig;
        let num = (fp - fm) / (2.0 * eps);
        assert!(
            (num - g).abs() < 3e-2 * (1.0 + num.abs()),
            "dW mismatch: numeric {num}, analytic {g}"
        );
    }
}

//! Parameter and training-state checkpointing.
//!
//! Two on-disk formats share the `MBRS` magic:
//!
//! * **v1** — parameter values only: magic, version, parameter count,
//!   then per-parameter shape + little-endian f32 data. Still fully
//!   loadable ([`load_params`] and [`load_train_state`] both accept it).
//! * **v2** — full training state for exact resume: a header carrying
//!   the optimizer step index, the Adam timestep, and the data-sampling
//!   RNG state, then per-parameter value + Adam first/second moments,
//!   and a trailing CRC32 of every preceding byte. A flipped bit or a
//!   truncated tail anywhere fails validation before any state is
//!   touched.
//!
//! Loading is **transactional** in both formats: the whole stream is
//! parsed and every header validated against the model (count + shapes)
//! *before* the first parameter is overwritten, so a mid-stream mismatch
//! or truncation can never leave a model half-loaded. File-level writes
//! go through [`save_train_state_atomic`] (write-temp + fsync + rename
//! via `megablocks-resilience`), so a crash or injected I/O fault tears
//! at most a temp file, never a committed checkpoint.

use std::io::{self, Read, Write};
use std::path::Path;

use megablocks_resilience as resilience;
use megablocks_tensor::Matrix;

use crate::Param;

const MAGIC: [u8; 4] = *b"MBRS";
/// The params-only format.
pub const VERSION_V1: u32 = 1;
/// The CRC-checked full-training-state format.
pub const VERSION_V2: u32 = 2;

/// Error type for checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a MegaBlocks-RS checkpoint.
    BadMagic,
    /// The checkpoint version is unsupported.
    BadVersion(u32),
    /// The checkpoint does not match the model architecture.
    Mismatch(String),
    /// The checkpoint failed integrity validation (CRC mismatch,
    /// inconsistent structure).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a MegaBlocks-RS checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Mismatch(s) => write!(f, "checkpoint/model mismatch: {s}"),
            CheckpointError::Corrupt(s) => write!(f, "corrupt checkpoint: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Training state carried by a v2 checkpoint alongside the parameters.
///
/// Loaded from a v1 checkpoint, [`TrainState::has_optimizer`] is `false`
/// and `step`/`opt_steps`/`rng_state` are zero: the caller resumes the
/// weights but restarts the schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainState {
    /// Optimizer steps completed when the checkpoint was taken.
    pub step: u64,
    /// The Adam timestep (bias-correction counter).
    pub opt_steps: u64,
    /// Raw state of the trainer's data-sampling RNG.
    pub rng_state: [u64; 4],
    /// Adam first moments, one per parameter (same shapes).
    pub m: Vec<Matrix>,
    /// Adam second moments, one per parameter (same shapes).
    pub v: Vec<Matrix>,
}

impl TrainState {
    /// Whether optimizer moments were present (always true for v2).
    pub fn has_optimizer(&self) -> bool {
        !self.m.is_empty()
    }
}

/// Writes the parameter values (not gradients or optimizer state) to `w`
/// in format v1.
///
/// A `&mut` writer works too (std's blanket `Write for &mut W`).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_params<W: Write>(params: &[&mut Param], mut w: W) -> Result<(), CheckpointError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        let v = p.value();
        w.write_all(&(v.rows() as u64).to_le_bytes())?;
        w.write_all(&(v.cols() as u64).to_le_bytes())?;
        for x in v.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Serializes parameters plus training state in format v2
/// (CRC-checksummed) to `w`.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] if `state.m`/`state.v` are
/// nonempty but do not mirror `params` in count or shape, and
/// [`CheckpointError::Io`] on write failure.
pub fn save_train_state<W: Write>(
    params: &[&mut Param],
    state: &TrainState,
    mut w: W,
) -> Result<(), CheckpointError> {
    let bytes = encode_v2(params, state)?;
    w.write_all(&bytes)?;
    Ok(())
}

/// Encodes a v2 checkpoint into bytes (exposed for the atomic writer and
/// tests).
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] if the moment vectors do not
/// mirror `params`.
pub fn encode_v2(params: &[&mut Param], state: &TrainState) -> Result<Vec<u8>, CheckpointError> {
    if !state.m.is_empty() && (state.m.len() != params.len() || state.v.len() != params.len()) {
        return Err(CheckpointError::Mismatch(format!(
            "optimizer has {}/{} moment matrices, model has {} parameters",
            state.m.len(),
            state.v.len(),
            params.len()
        )));
    }
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION_V2.to_le_bytes());
    out.extend_from_slice(&state.step.to_le_bytes());
    out.extend_from_slice(&state.opt_steps.to_le_bytes());
    for word in state.rng_state {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    out.push(u8::from(state.has_optimizer()));
    for (i, p) in params.iter().enumerate() {
        let v = p.value();
        out.extend_from_slice(&(v.rows() as u64).to_le_bytes());
        out.extend_from_slice(&(v.cols() as u64).to_le_bytes());
        push_f32s(&mut out, v.as_slice());
        if state.has_optimizer() {
            for (kind, moment) in [("m", &state.m[i]), ("v", &state.v[i])] {
                if moment.shape() != v.shape() {
                    return Err(CheckpointError::Mismatch(format!(
                        "parameter {i}: {kind}-moment shape {:?}, value shape {:?}",
                        moment.shape(),
                        v.shape()
                    )));
                }
                push_f32s(&mut out, moment.as_slice());
            }
        }
    }
    let crc = resilience::crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Restores parameter values from `r` into `params` (v1 or v2 stream;
/// v2 training state is discarded).
///
/// Transactional: the stream is fully parsed and validated against the
/// model before any parameter is overwritten, so an error leaves the
/// model exactly as it was.
///
/// # Errors
///
/// Returns an error if the stream is not a checkpoint, the version is
/// unsupported, integrity validation fails, or the parameter
/// count/shapes differ from the model's.
pub fn load_params<R: Read>(params: &mut [&mut Param], r: R) -> Result<(), CheckpointError> {
    load_train_state(params, r).map(|_| ())
}

/// Restores parameters *and* training state from `r`.
///
/// Accepts both formats: a v2 stream is CRC-validated and yields the
/// full [`TrainState`]; a v1 stream yields a default state with
/// [`TrainState::has_optimizer`] `false`. Transactional like
/// [`load_params`].
///
/// # Errors
///
/// Returns an error if the stream is not a checkpoint, the version is
/// unsupported, integrity validation fails, or the parameter
/// count/shapes differ from the model's.
pub fn load_train_state<R: Read>(
    params: &mut [&mut Param],
    mut r: R,
) -> Result<TrainState, CheckpointError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let parsed = parse_checkpoint(&bytes)?;

    // Validate every header against the model before touching any value.
    if parsed.values.len() != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} parameters, model has {}",
            parsed.values.len(),
            params.len()
        )));
    }
    for (i, (staged, p)) in parsed.values.iter().zip(params.iter()).enumerate() {
        if staged.shape() != p.value().shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {i}: checkpoint shape {:?}, model shape {:?}",
                staged.shape(),
                p.value().shape()
            )));
        }
    }

    // Commit. Everything is validated; this cannot fail halfway.
    let mut values = parsed.values;
    for (p, staged) in params.iter_mut().zip(values.drain(..)) {
        *p.value_mut() = staged;
    }
    Ok(parsed.state)
}

/// Saves a v2 checkpoint to `path` atomically (write-temp + fsync +
/// rename).
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] on inconsistent moments and
/// [`CheckpointError::Io`] on write failure (including faults injected
/// at the `checkpoint.io` chaos site); on failure `path` is untouched.
pub fn save_train_state_atomic(
    path: &Path,
    params: &[&mut Param],
    state: &TrainState,
) -> Result<(), CheckpointError> {
    let bytes = encode_v2(params, state)?;
    resilience::atomic_write(path, &bytes)?;
    Ok(())
}

/// Loads a checkpoint file (v1 or v2) into `params`, returning the
/// training state.
///
/// # Errors
///
/// As [`load_train_state`], plus [`CheckpointError::Io`] if the file
/// cannot be read.
pub fn load_train_state_file(
    path: &Path,
    params: &mut [&mut Param],
) -> Result<TrainState, CheckpointError> {
    let bytes = std::fs::read(path)?;
    load_train_state(params, bytes.as_slice())
}

/// Structurally validates checkpoint bytes without a model: magic,
/// version, exact framing, and (v2) the trailing CRC. Returns the
/// format version.
///
/// # Errors
///
/// Returns the same errors as loading, minus model mismatches.
pub fn validate_checkpoint_bytes(bytes: &[u8]) -> Result<u32, CheckpointError> {
    parse_checkpoint(bytes).map(|p| p.version)
}

/// [`validate_checkpoint_bytes`] for a file on disk.
///
/// # Errors
///
/// As [`validate_checkpoint_bytes`], plus [`CheckpointError::Io`] if the
/// file cannot be read.
pub fn validate_checkpoint_file(path: &Path) -> Result<u32, CheckpointError> {
    let bytes = std::fs::read(path)?;
    validate_checkpoint_bytes(&bytes)
}

/// A fully parsed checkpoint, staged and not yet committed to a model.
struct Parsed {
    version: u32,
    values: Vec<Matrix>,
    state: TrainState,
}

fn parse_checkpoint(bytes: &[u8]) -> Result<Parsed, CheckpointError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    match version {
        VERSION_V1 => parse_v1(r),
        VERSION_V2 => parse_v2(bytes, r),
        v => Err(CheckpointError::BadVersion(v)),
    }
}

fn parse_v1(mut r: ByteReader<'_>) -> Result<Parsed, CheckpointError> {
    let count = r.u64()? as usize;
    let mut values = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        values.push(r.matrix()?);
    }
    Ok(Parsed {
        version: VERSION_V1,
        values,
        state: TrainState::default(),
    })
}

fn parse_v2(bytes: &[u8], mut r: ByteReader<'_>) -> Result<Parsed, CheckpointError> {
    // Integrity first: the last 4 bytes are the CRC32 of everything
    // before them. Checked before any structural parsing, so truncation
    // and bit flips surface as corruption rather than arbitrary errors.
    if bytes.len() < 8 + 4 {
        return Err(CheckpointError::Corrupt("file too short".to_string()));
    }
    let payload_len = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[payload_len..].try_into().expect("4 bytes"));
    let computed = resilience::crc32(&bytes[..payload_len]);
    if stored != computed {
        return Err(CheckpointError::Corrupt(format!(
            "CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    r.limit(payload_len);

    let step = r.u64()?;
    let opt_steps = r.u64()?;
    let mut rng_state = [0u64; 4];
    for word in &mut rng_state {
        *word = r.u64()?;
    }
    let count = r.u64()? as usize;
    let has_optimizer = r.take(1)?[0] != 0;
    let mut values = Vec::with_capacity(count.min(1 << 20));
    let mut m = Vec::new();
    let mut v = Vec::new();
    for _ in 0..count {
        let value = r.matrix()?;
        let (rows, cols) = value.shape();
        if has_optimizer {
            m.push(r.matrix_data(rows, cols)?);
            v.push(r.matrix_data(rows, cols)?);
        }
        values.push(value);
    }
    if r.remaining() != 0 {
        return Err(CheckpointError::Corrupt(format!(
            "{} trailing bytes after the last parameter",
            r.remaining()
        )));
    }
    Ok(Parsed {
        version: VERSION_V2,
        values,
        state: TrainState {
            step,
            opt_steps,
            rng_state,
            m,
            v,
        },
    })
}

fn push_f32s(out: &mut Vec<u8>, values: &[f32]) {
    out.reserve(values.len() * 4);
    for x in values {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounded little-endian reader over a byte slice. Overruns surface as
/// `Io(UnexpectedEof)`, matching what streaming v1 loads always
/// reported for truncation.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    end: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader {
            bytes,
            pos: 0,
            end: bytes.len(),
        }
    }

    /// Restricts reading to the first `end` bytes (v2 excludes its CRC).
    fn limit(&mut self, end: usize) {
        self.end = end.min(self.bytes.len());
    }

    fn remaining(&self) -> usize {
        self.end - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated checkpoint",
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A shape header followed by its f32 data.
    fn matrix(&mut self) -> Result<Matrix, CheckpointError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        self.matrix_data(rows, cols)
    }

    /// `rows * cols` f32s with a known shape (v2 moment blocks).
    fn matrix_data(&mut self, rows: usize, cols: usize) -> Result<Matrix, CheckpointError> {
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| CheckpointError::Corrupt(format!("shape {rows}x{cols} overflows")))?;
        let raw =
            self.take(n.checked_mul(4).ok_or_else(|| {
                CheckpointError::Corrupt(format!("shape {rows}x{cols} overflows"))
            })?)?;
        let mut data = vec![0.0f32; n];
        for (x, chunk) in data.iter_mut().zip(raw.chunks_exact(4)) {
            *x = f32::from_le_bytes(chunk.try_into().expect("4"));
        }
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| CheckpointError::Corrupt(format!("bad matrix block: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DroplessMoe, MoeConfig};
    use megablocks_tensor::init::{normal, seeded_rng};

    fn layer(seed: u64) -> DroplessMoe {
        let mut rng = seeded_rng(seed);
        DroplessMoe::new(MoeConfig::new(6, 8, 2).with_block_size(4), &mut rng)
    }

    fn state_for(params: &[&mut Param]) -> TrainState {
        TrainState {
            step: 17,
            opt_steps: 17,
            rng_state: [1, 2, 3, 4],
            m: params
                .iter()
                .map(|p| Matrix::full(p.value().rows(), p.value().cols(), 0.25))
                .collect(),
            v: params
                .iter()
                .map(|p| Matrix::full(p.value().rows(), p.value().cols(), 0.5))
                .collect(),
        }
    }

    #[test]
    fn roundtrip_restores_exact_behaviour() {
        let mut a = layer(1);
        let mut b = layer(2); // different weights
        let mut rng = seeded_rng(3);
        let x = normal(9, 6, 1.0, &mut rng);
        let before = a.forward(&x).output;
        assert!(!b.forward(&x).output.approx_eq(&before, 1e-6));

        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        load_params(&mut b.params_mut(), buf.as_slice()).expect("load");
        let after = b.forward(&x).output;
        assert!(after.approx_eq(&before, 0.0), "bit-exact restore expected");
    }

    #[test]
    fn v2_roundtrip_restores_params_and_state() {
        let mut a = layer(1);
        let mut b = layer(2);
        let state = state_for(&a.params_mut());
        let mut buf = Vec::new();
        save_train_state(&a.params_mut(), &state, &mut buf).expect("save");
        let loaded = load_train_state(&mut b.params_mut(), buf.as_slice()).expect("load");
        assert_eq!(loaded, state);
        assert!(loaded.has_optimizer());
        for (pa, pb) in a.params_mut().iter().zip(b.params_mut().iter()) {
            assert!(pa.value().approx_eq(pb.value(), 0.0));
        }
        assert_eq!(validate_checkpoint_bytes(&buf).expect("valid"), VERSION_V2);
    }

    #[test]
    fn v1_stream_loads_as_train_state_without_optimizer() {
        let mut a = layer(1);
        let mut b = layer(2);
        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        let loaded = load_train_state(&mut b.params_mut(), buf.as_slice()).expect("load");
        assert!(!loaded.has_optimizer());
        assert_eq!(loaded.step, 0);
        assert_eq!(validate_checkpoint_bytes(&buf).expect("valid"), VERSION_V1);
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = layer(1);
        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        // A layer with a different expert count has different shapes.
        let mut rng = seeded_rng(4);
        let mut other = DroplessMoe::new(MoeConfig::new(6, 8, 3).with_block_size(4), &mut rng);
        let err = load_params(&mut other.params_mut(), buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn mismatch_leaves_the_model_untouched() {
        // A v1 stream whose *last* parameter header is wrong: the
        // transactional loader must not have written the earlier ones.
        let mut a = layer(1);
        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        // Corrupt the final parameter's column count (header sits right
        // before its data).
        let params = a.params_mut();
        let last_len = params.last().expect("params").value().len();
        let header_at = buf.len() - last_len * 4 - 16;
        buf[header_at + 8..header_at + 16].copy_from_slice(&999u64.to_le_bytes());
        drop(params);

        let mut b = layer(2);
        let before: Vec<Matrix> = b.params_mut().iter().map(|p| p.value().clone()).collect();
        let err = load_params(&mut b.params_mut(), buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Mismatch(_) | CheckpointError::Io(_)),
            "{err}"
        );
        for (p, orig) in b.params_mut().iter().zip(&before) {
            assert!(
                p.value().approx_eq(orig, 0.0),
                "a failed load scrambled the model"
            );
        }
    }

    #[test]
    fn rejects_garbage_and_wrong_version() {
        let mut l = layer(5);
        let err = load_params(&mut l.params_mut(), &b"nope"[..]).unwrap_err();
        assert!(
            matches!(err, CheckpointError::BadMagic | CheckpointError::Io(_)),
            "{err}"
        );

        let mut buf = Vec::new();
        buf.extend_from_slice(b"MBRS");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = load_params(&mut l.params_mut(), buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadVersion(99)), "{err}");
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut a = layer(6);
        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        let err = load_params(&mut a.params_mut(), buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }

    #[test]
    fn v2_bit_flip_is_corrupt() {
        let mut a = layer(7);
        let state = state_for(&a.params_mut());
        let bytes = encode_v2(&a.params_mut(), &state).expect("encode");
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        let err = validate_checkpoint_bytes(&corrupt).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        // Truncation also fails integrity, not just framing.
        let err = validate_checkpoint_bytes(&bytes[..bytes.len() - 9]).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    }
}

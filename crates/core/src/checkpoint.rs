//! Parameter checkpointing: save and restore the trainable state of any
//! layer stack through its ordered parameter list.
//!
//! The format is a minimal, versioned binary layout (magic, version,
//! parameter count, then per-parameter shape + little-endian f32 data).
//! Loading validates the architecture implicitly: parameter counts and
//! shapes must match the saved file exactly, so loading a checkpoint into
//! the wrong model configuration fails loudly instead of silently
//! scrambling weights.

use std::io::{self, Read, Write};

use megablocks_tensor::Matrix;

use crate::Param;

const MAGIC: [u8; 4] = *b"MBRS";
const VERSION: u32 = 1;

/// Error type for checkpoint save/load.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not a MegaBlocks-RS checkpoint.
    BadMagic,
    /// The checkpoint version is unsupported.
    BadVersion(u32),
    /// The checkpoint does not match the model architecture.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a MegaBlocks-RS checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Mismatch(s) => write!(f, "checkpoint/model mismatch: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes the parameter values (not gradients or optimizer state) to `w`.
///
/// A `&mut` writer works too (std's blanket `Write for &mut W`).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on write failure.
pub fn save_params<W: Write>(params: &[&mut Param], mut w: W) -> Result<(), CheckpointError> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for p in params {
        let v = p.value();
        w.write_all(&(v.rows() as u64).to_le_bytes())?;
        w.write_all(&(v.cols() as u64).to_le_bytes())?;
        for x in v.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores parameter values from `r` into `params` (in the same stable
/// order they were saved).
///
/// # Errors
///
/// Returns an error if the stream is not a checkpoint, the version is
/// unsupported, or the parameter count/shapes differ from the model's.
pub fn load_params<R: Read>(params: &mut [&mut Param], mut r: R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = read_u64(&mut r)? as usize;
    if count != params.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {count} parameters, model has {}",
            params.len()
        )));
    }
    for (i, p) in params.iter_mut().enumerate() {
        let rows = read_u64(&mut r)? as usize;
        let cols = read_u64(&mut r)? as usize;
        if (rows, cols) != p.value().shape() {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {i}: checkpoint shape {rows}x{cols}, model shape {:?}",
                p.value().shape()
            )));
        }
        let mut data = vec![0.0f32; rows * cols];
        let mut buf = [0u8; 4];
        for x in &mut data {
            r.read_exact(&mut buf)?;
            *x = f32::from_le_bytes(buf);
        }
        *p.value_mut() =
            Matrix::from_vec(rows, cols, data).expect("length matches shape by construction");
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DroplessMoe, MoeConfig};
    use megablocks_tensor::init::{normal, seeded_rng};

    fn layer(seed: u64) -> DroplessMoe {
        let mut rng = seeded_rng(seed);
        DroplessMoe::new(MoeConfig::new(6, 8, 2).with_block_size(4), &mut rng)
    }

    #[test]
    fn roundtrip_restores_exact_behaviour() {
        let mut a = layer(1);
        let mut b = layer(2); // different weights
        let mut rng = seeded_rng(3);
        let x = normal(9, 6, 1.0, &mut rng);
        let before = a.forward(&x).output;
        assert!(!b.forward(&x).output.approx_eq(&before, 1e-6));

        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        load_params(&mut b.params_mut(), buf.as_slice()).expect("load");
        let after = b.forward(&x).output;
        assert!(after.approx_eq(&before, 0.0), "bit-exact restore expected");
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = layer(1);
        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        // A layer with a different expert count has different shapes.
        let mut rng = seeded_rng(4);
        let mut other = DroplessMoe::new(MoeConfig::new(6, 8, 3).with_block_size(4), &mut rng);
        let err = load_params(&mut other.params_mut(), buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn rejects_garbage_and_wrong_version() {
        let mut l = layer(5);
        let err = load_params(&mut l.params_mut(), &b"nope"[..]).unwrap_err();
        assert!(
            matches!(err, CheckpointError::BadMagic | CheckpointError::Io(_)),
            "{err}"
        );

        let mut buf = Vec::new();
        buf.extend_from_slice(b"MBRS");
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = load_params(&mut l.params_mut(), buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::BadVersion(99)), "{err}");
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let mut a = layer(6);
        let mut buf = Vec::new();
        save_params(&a.params_mut(), &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        let err = load_params(&mut a.params_mut(), buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)), "{err}");
    }
}

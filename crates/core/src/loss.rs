//! Load-balancing auxiliary loss (paper §2.2).
//!
//! The Switch-Transformer formulation: with `E` experts, dispatch fractions
//! `f_e` (fraction of assignments routed to expert `e`) and mean router
//! probabilities `P_e`, the loss is `alpha * E * sum_e f_e * P_e`. It is
//! minimized by a uniform assignment, incentivizing the router to balance
//! load — which both improves hardware efficiency and (for the dropping
//! baseline) reduces dropped tokens.

use megablocks_tensor::Matrix;

use crate::Routing;

/// Result of [`load_balancing_loss`]: the loss value and its gradient with
/// respect to the full router probability matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalance {
    /// The (already `alpha`-scaled) auxiliary loss value.
    pub loss: f32,
    /// Gradient with respect to the router probabilities
    /// (`num_tokens x num_experts`). The dispatch fractions `f_e` are
    /// treated as constants (they are not differentiable), matching the
    /// standard implementation.
    pub d_probs: Matrix,
}

/// Computes the Switch-Transformer load-balancing loss for a routing
/// decision.
///
/// A perfectly uniform router yields `loss == alpha` (since
/// `E * sum_e (1/E) * (1/E) = 1/E * E ... = 1`); a fully collapsed router
/// that sends everything to one expert yields `loss ≈ alpha * E`.
pub fn load_balancing_loss(routing: &Routing, alpha: f32) -> LoadBalance {
    let num_experts = routing.num_experts();
    let num_tokens = routing.num_tokens();
    let num_assignments = routing.expert_indices.len().max(1);

    let counts = routing.tokens_per_expert();
    let f: Vec<f32> = counts
        .iter()
        .map(|&c| c as f32 / num_assignments as f32)
        .collect();

    let mut p = vec![0.0f32; num_experts];
    for t in 0..num_tokens {
        for (pe, v) in p.iter_mut().zip(routing.probs.row(t)) {
            *pe += v;
        }
    }
    let inv_t = if num_tokens == 0 {
        0.0
    } else {
        1.0 / num_tokens as f32
    };
    for pe in &mut p {
        *pe *= inv_t;
    }

    let scale = alpha * num_experts as f32;
    let loss = scale * f.iter().zip(&p).map(|(fe, pe)| fe * pe).sum::<f32>();

    // dL/dprobs[t, e] = scale * f_e / num_tokens
    let mut d_probs = Matrix::zeros(num_tokens, num_experts);
    for t in 0..num_tokens {
        for (d, fe) in d_probs.row_mut(t).iter_mut().zip(&f) {
            *d = scale * fe * inv_t;
        }
    }
    LoadBalance { loss, d_probs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routing_from(probs: Matrix, expert_indices: Vec<usize>, top_k: usize) -> Routing {
        let weights = expert_indices
            .iter()
            .enumerate()
            .map(|(a, &e)| probs[(a / top_k, e)])
            .collect();
        Routing {
            probs,
            expert_indices,
            weights,
            top_k,
        }
    }

    #[test]
    fn uniform_routing_gives_alpha() {
        // 4 tokens, 2 experts, uniform probs, balanced assignment.
        let probs = Matrix::full(4, 2, 0.5);
        let r = routing_from(probs, vec![0, 1, 0, 1], 1);
        let lb = load_balancing_loss(&r, 0.01);
        assert!((lb.loss - 0.01).abs() < 1e-6, "loss {}", lb.loss);
    }

    #[test]
    fn collapsed_routing_is_penalized() {
        let mut probs = Matrix::zeros(4, 2);
        for t in 0..4 {
            probs[(t, 0)] = 0.9;
            probs[(t, 1)] = 0.1;
        }
        let r = routing_from(probs, vec![0, 0, 0, 0], 1);
        let lb = load_balancing_loss(&r, 0.01);
        // f = (1, 0); P = (0.9, 0.1); loss = 0.01 * 2 * 0.9 = 0.018
        assert!((lb.loss - 0.018).abs() < 1e-6, "loss {}", lb.loss);
        assert!(lb.loss > 0.01);
    }

    #[test]
    fn gradient_matches_formula() {
        let probs = Matrix::from_fn(3, 2, |_, j| if j == 0 { 0.7 } else { 0.3 });
        let r = routing_from(probs, vec![0, 0, 1], 1);
        let lb = load_balancing_loss(&r, 0.01);
        // f = (2/3, 1/3); scale = 0.02; dprobs[t,0] = 0.02 * (2/3) / 3
        let want0 = 0.02 * (2.0 / 3.0) / 3.0;
        let want1 = 0.02 * (1.0 / 3.0) / 3.0;
        for t in 0..3 {
            assert!((lb.d_probs[(t, 0)] - want0).abs() < 1e-7);
            assert!((lb.d_probs[(t, 1)] - want1).abs() < 1e-7);
        }
    }

    #[test]
    fn empty_routing_is_zero() {
        let r = routing_from(Matrix::zeros(0, 4), vec![], 1);
        let lb = load_balancing_loss(&r, 0.01);
        assert_eq!(lb.loss, 0.0);
    }
}

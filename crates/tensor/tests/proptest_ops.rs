//! Property-based tests for the dense substrate: GEMM algebra and the
//! calculus identities of the NN primitives.

use megablocks_tensor::ops::{
    add_bias, bias_backward, cross_entropy, gelu, gelu_backward, layer_norm, layer_norm_backward,
    relu, relu_backward, softmax_rows, softmax_rows_backward,
};
use megablocks_tensor::{batched_matmul, matmul, BatchedMatrix, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).expect("exact length"))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..10, 1usize..10, 1usize..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative((m, n, k) in dims(), p in 1usize..8, seed in 0u64..100) {
        let mut s = seed;
        let mut next = move |rows: usize, cols: usize| {
            Matrix::from_fn(rows, cols, |_, _| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 40) as f32 / (1u64 << 23) as f32) - 0.5
            })
        };
        let a = next(m, k);
        let b = next(k, n);
        let c = next(n, p);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        prop_assert!(left.approx_eq(&right, 1e-2), "diff {}", left.max_abs_diff(&right));
    }

    #[test]
    fn matmul_distributes_over_addition((m, n, k) in dims(), _unit in Just(()), seed in 0u64..100) {
        let mut s = seed.wrapping_add(7);
        let mut next = move |rows: usize, cols: usize| {
            Matrix::from_fn(rows, cols, |_, _| {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((s >> 40) as f32 / (1u64 << 23) as f32) - 0.5
            })
        };
        let a = next(m, k);
        let b1 = next(k, n);
        let mut b2 = next(k, n);
        let prod2 = matmul(&a, &b2);
        b2.add_assign(&b1);
        let lhs = matmul(&a, &b2); // a(b1 + b2')
        let mut rhs = matmul(&a, &b1);
        rhs.add_assign(&prod2);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn transpose_of_product_is_reversed_product((m, n, k) in dims()) {
        let a = Matrix::from_fn(m, k, |i, j| ((i * 3 + j) as f32).sin());
        let b = Matrix::from_fn(k, n, |i, j| ((i + 2 * j) as f32).cos());
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn identity_is_neutral(m in 1usize..12, n in 1usize..12) {
        let a = Matrix::from_fn(m, n, |i, j| (i * n + j) as f32);
        prop_assert!(matmul(&a, &Matrix::eye(n)).approx_eq(&a, 1e-6));
        prop_assert!(matmul(&Matrix::eye(m), &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn softmax_rows_are_probabilities(x in matrix(4, 6)) {
        let y = softmax_rows(&x);
        for i in 0..4 {
            let sum: f32 = y.row(i).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(y.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_gradient_rows_sum_to_zero(x in matrix(3, 5), dy in matrix(3, 5)) {
        // sum_j dx[i,j] = 0 because softmax outputs are constrained to a
        // simplex.
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&y, &dy);
        for i in 0..3 {
            let s: f32 = dx.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {i} grad sum {s}");
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_bounded_at_uniform(
        x in matrix(5, 7),
        targets in proptest::collection::vec(0usize..7, 5),
    ) {
        let (loss, grad) = cross_entropy(&x, &targets, None);
        prop_assert!(loss >= 0.0);
        prop_assert!(loss.is_finite());
        // Gradient rows sum to zero (softmax minus one-hot).
        for i in 0..5 {
            let s: f32 = grad.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
        // Uniform logits give exactly ln(vocab).
        let uniform = Matrix::zeros(5, 7);
        let (lu, _) = cross_entropy(&uniform, &targets, None);
        prop_assert!((lu - (7f32).ln()).abs() < 1e-5);
        prop_assert!(loss <= lu + 20.0); // crude finiteness band given x in [-3,3]
    }

    #[test]
    fn layer_norm_output_is_scale_invariant(x in matrix(3, 8), alpha in 0.5f32..4.0) {
        // Row-wise affine-invariance: scaling the input leaves the
        // normalized output unchanged (up to eps effects).
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        let (y1, _) = layer_norm(&x, &gamma, &beta, 1e-6);
        let xs = x.map(|v| v * alpha);
        let (y2, _) = layer_norm(&xs, &gamma, &beta, 1e-6);
        // Skip near-constant rows where eps dominates.
        for i in 0..3 {
            let row = x.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            if var < 1e-2 {
                continue;
            }
            for j in 0..8 {
                prop_assert!((y1[(i, j)] - y2[(i, j)]).abs() < 1e-2);
            }
        }
    }

    #[test]
    fn layer_norm_backward_grad_rows_are_orthogonal_to_constants(x in matrix(3, 8), dy in matrix(3, 8)) {
        // dx rows sum to ~0: layer norm is invariant to adding a constant.
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        let (_, cache) = layer_norm(&x, &gamma, &beta, 1e-5);
        let (dx, _, _) = layer_norm_backward(&x, &dy, &gamma, &cache);
        for i in 0..3 {
            let s: f32 = dx.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-3, "row {i} sum {s}");
        }
    }

    #[test]
    fn gelu_is_monotone_on_positive_axis(a in 0.0f32..5.0, b in 0.0f32..5.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let x = Matrix::from_vec(1, 2, vec![lo, hi]).expect("len");
        let y = gelu(&x);
        prop_assert!(y[(0, 0)] <= y[(0, 1)] + 1e-6);
    }

    #[test]
    fn gelu_backward_is_zero_where_dy_is_zero(x in matrix(2, 6)) {
        let dy = Matrix::zeros(2, 6);
        let dx = gelu_backward(&x, &dy);
        prop_assert!(dx.max_abs() == 0.0);
    }

    #[test]
    fn relu_idempotent_and_grad_mask(x in matrix(2, 9)) {
        let y = relu(&x);
        prop_assert!(relu(&y).approx_eq(&y, 0.0));
        let ones = Matrix::full(2, 9, 1.0);
        let dx = relu_backward(&x, &ones);
        for (v, g) in x.as_slice().iter().zip(dx.as_slice()) {
            prop_assert_eq!(*g, if *v > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn bias_backward_is_linear(dy1 in matrix(3, 4), dy2 in matrix(3, 4)) {
        let mut sum = dy1.clone();
        sum.add_assign(&dy2);
        let lhs = bias_backward(&sum);
        let a = bias_backward(&dy1);
        let b = bias_backward(&dy2);
        for j in 0..4 {
            prop_assert!((lhs[j] - a[j] - b[j]).abs() < 1e-4);
        }
    }

    #[test]
    fn add_bias_then_measure(x in matrix(3, 4), bias in proptest::collection::vec(-2.0f32..2.0, 4)) {
        let mut y = x.clone();
        add_bias(&mut y, &bias);
        for i in 0..3 {
            for j in 0..4 {
                prop_assert!((y[(i, j)] - x[(i, j)] - bias[j]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn batched_matmul_matches_loop(k in 1usize..6, batch in 1usize..5) {
        let a = BatchedMatrix::from_matrices(
            (0..batch)
                .map(|b| Matrix::from_fn(3, k, |i, j| ((b * 7 + i * 3 + j) as f32).sin()))
                .collect(),
        )
        .expect("uniform");
        let b = BatchedMatrix::from_matrices(
            (0..batch)
                .map(|e| Matrix::from_fn(k, 4, |i, j| ((e + i * 2 + j) as f32).cos()))
                .collect(),
        )
        .expect("uniform");
        let c = batched_matmul(&a, &b);
        for e in 0..batch {
            prop_assert!(c.get(e).approx_eq(&matmul(a.get(e), b.get(e)), 1e-4));
        }
    }
}

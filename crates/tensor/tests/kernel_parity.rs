//! Backend-parity properties for the kernel dispatch layer.
//!
//! The [`GemmMicrokernel`] contract promises that every backend produces
//! *bit-identical* outputs: per output element, one `f32` accumulator
//! filled in ascending-`k` order with `alpha` applied once at the end.
//! These properties pin that promise on the public dense entry points
//! across every transpose combination, degenerate shapes (`k = 0`, `1x1`),
//! dimensions that do not divide any blocking constant, and worker counts
//! 1/2/8 — if a future backend (SIMD, device offload) reassociates a
//! single addition, these tests name the first differing element.
//!
//! The kernel backend registry is process-global, so each test holds a
//! lock while it flips backends. The lock is about test hygiene, not
//! correctness: a concurrent flip could not change any output precisely
//! because the backends are bit-identical.

use std::sync::{Mutex, MutexGuard};

use megablocks_exec::scoped_parallelism;
use megablocks_tensor::{
    block_gemm, configure_kernel_backend, gemm, KernelBackend, Matrix, PanelView, Trans,
};
use proptest::prelude::*;

fn backend_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `f` with the given backend selected, restoring the previous one.
fn with_backend<R>(backend: KernelBackend, f: impl FnOnce() -> R) -> R {
    let prev = configure_kernel_backend(backend);
    let out = f();
    configure_kernel_backend(prev);
    out
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    })
}

const COMBOS: [(Trans, Trans); 4] = [
    (Trans::N, Trans::N),
    (Trans::N, Trans::T),
    (Trans::T, Trans::N),
    (Trans::T, Trans::T),
];

/// One full gemm (all four transpose combos) under the given backend,
/// returning the bit patterns of every output.
fn gemm_all_combos(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    beta: f32,
    seed: u64,
) -> Vec<Vec<u32>> {
    COMBOS
        .iter()
        .map(|&(op_a, op_b)| {
            let a = match op_a {
                Trans::N => lcg_matrix(m, k, seed),
                Trans::T => lcg_matrix(k, m, seed),
            };
            let b = match op_b {
                Trans::N => lcg_matrix(k, n, seed ^ 0xABCD),
                Trans::T => lcg_matrix(n, k, seed ^ 0xABCD),
            };
            let mut c = lcg_matrix(m, n, seed ^ 0x5A5A);
            gemm(alpha, &a, op_a, &b, op_b, beta, &mut c);
            bits(&c)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tiled and scalar agree bit-for-bit on every transpose combination,
    /// including `k = 0` and non-divisible dimensions.
    #[test]
    fn tiled_matches_scalar_bitwise(
        m in 1usize..40,
        n in 1usize..40,
        k in 0usize..40,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1000,
    ) {
        let _guard = backend_lock();
        let scalar = with_backend(KernelBackend::Scalar, || gemm_all_combos(m, n, k, alpha, beta, seed));
        let tiled = with_backend(KernelBackend::Tiled, || gemm_all_combos(m, n, k, alpha, beta, seed));
        prop_assert_eq!(scalar, tiled);
    }

    /// Worker count is invisible: with either backend, running the same
    /// product on 1, 2, and 8 workers yields the same bits.
    #[test]
    fn worker_count_is_bit_invisible(seed in 0u64..200) {
        let _guard = backend_lock();
        for backend in [KernelBackend::Scalar, KernelBackend::Tiled] {
            let runs: Vec<Vec<Vec<u32>>> = [1usize, 2, 8]
                .iter()
                .map(|&threads| {
                    scoped_parallelism(threads, || {
                        with_backend(backend, || gemm_all_combos(70, 65, 48, 1.0, 0.0, seed))
                    })
                })
                .collect();
            prop_assert_eq!(&runs[0], &runs[1], "1 vs 2 workers ({})", backend.name());
            prop_assert_eq!(&runs[0], &runs[2], "1 vs 8 workers ({})", backend.name());
        }
    }
}

/// Deterministic edge shapes straddling the tiled backend's blocking
/// constants and the small-product delegation threshold.
#[test]
fn edge_shapes_are_bit_identical() {
    let _guard = backend_lock();
    let shapes = [
        (1usize, 1usize, 0usize),
        (1, 1, 1),
        (4, 8, 3),     // exactly one register tile
        (5, 9, 257),   // one past MR/NR, one past KC
        (64, 128, 64), // exact cache blocks
        (69, 145, 300),
        (150, 70, 96), // crosses the scalar-delegation threshold
    ];
    for &(m, n, k) in &shapes {
        let scalar = with_backend(KernelBackend::Scalar, || {
            gemm_all_combos(m, n, k, 1.25, 1.0, 99)
        });
        let tiled = with_backend(KernelBackend::Tiled, || {
            gemm_all_combos(m, n, k, 1.25, 1.0, 99)
        });
        assert_eq!(scalar, tiled, "m={m} n={n} k={k}");
    }
}

/// `block_gemm` itself honors the contract for strided (transposed)
/// operand views, not just the matrix entry points.
#[test]
fn block_gemm_strided_views_are_backend_invariant() {
    let _guard = backend_lock();
    let (m, n, k) = (33, 41, 67);
    let a = lcg_matrix(k, m, 7); // stored k x m, viewed as A^T
    let b = lcg_matrix(n, k, 8); // stored n x k, viewed as B^T
    let run = |backend| {
        with_backend(backend, || {
            let mut out = vec![0.5f32; m * n];
            block_gemm(
                m,
                n,
                k,
                0.75,
                PanelView::new(a.as_slice(), 1, m),
                PanelView::new(b.as_slice(), 1, k),
                &mut out,
                n,
            );
            out.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        })
    };
    assert_eq!(run(KernelBackend::Scalar), run(KernelBackend::Tiled));
}

//! Inverted dropout with explicit masks.
//!
//! GPT-2/Megatron training applies dropout to attention probabilities and
//! residual branches; the memory model in `megablocks-gpusim` accounts
//! for the stored masks. The layers in this workspace default to dropout
//! 0 (as the paper's MoE configs commonly do), but the primitive is here
//! for completeness, with the standard inverted scaling so evaluation
//! needs no rescale.

use rand::rngs::StdRng;
use rand::Rng;

use crate::Matrix;

/// A dropout mask: which elements were kept, with the keep probability
/// baked in for the backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct DropoutMask {
    kept: Vec<bool>,
    keep_prob: f32,
}

impl DropoutMask {
    /// Fraction of elements kept by this mask.
    pub fn kept_fraction(&self) -> f64 {
        if self.kept.is_empty() {
            return 1.0;
        }
        self.kept.iter().filter(|&&k| k).count() as f64 / self.kept.len() as f64
    }
}

/// Applies inverted dropout with drop probability `p`, returning the
/// scaled output and the mask for the backward pass.
///
/// `p = 0` keeps everything (identity); kept values are scaled by
/// `1 / (1 - p)` so the expectation matches evaluation mode.
///
/// # Panics
///
/// Panics unless `0.0 <= p < 1.0`.
pub fn dropout(x: &Matrix, p: f32, rng: &mut StdRng) -> (Matrix, DropoutMask) {
    assert!(
        (0.0..1.0).contains(&p),
        "drop probability must be in [0, 1)"
    );
    let keep_prob = 1.0 - p;
    let scale = 1.0 / keep_prob;
    let mut kept = Vec::with_capacity(x.len());
    let mut out = x.clone();
    for v in out.as_mut_slice() {
        let keep = p == 0.0 || rng.gen::<f32>() >= p;
        kept.push(keep);
        *v = if keep { *v * scale } else { 0.0 };
    }
    (out, DropoutMask { kept, keep_prob })
}

/// Backward pass of [`dropout`]: gradient flows only through kept
/// elements, with the same inverted scaling.
///
/// # Panics
///
/// Panics if `dy` has a different element count than the forward input.
pub fn dropout_backward(dy: &Matrix, mask: &DropoutMask) -> Matrix {
    assert_eq!(
        dy.len(),
        mask.kept.len(),
        "mask does not match gradient shape"
    );
    let scale = 1.0 / mask.keep_prob;
    let mut dx = dy.clone();
    for (v, &keep) in dx.as_mut_slice().iter_mut().zip(&mask.kept) {
        *v = if keep { *v * scale } else { 0.0 };
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn zero_probability_is_identity() {
        let x = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
        let mut rng = seeded_rng(1);
        let (y, mask) = dropout(&x, 0.0, &mut rng);
        assert_eq!(y, x);
        assert_eq!(mask.kept_fraction(), 1.0);
        let dy = Matrix::full(3, 4, 2.0);
        assert_eq!(dropout_backward(&dy, &mask), dy);
    }

    #[test]
    fn keeps_roughly_the_right_fraction_and_preserves_expectation() {
        let x = Matrix::full(100, 100, 1.0);
        let mut rng = seeded_rng(2);
        let (y, mask) = dropout(&x, 0.3, &mut rng);
        let frac = mask.kept_fraction();
        assert!((frac - 0.7).abs() < 0.02, "kept {frac}");
        // Inverted scaling: mean of outputs ~ 1.
        let mean = y.sum() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
        // Kept values are exactly 1/0.7; dropped exactly 0.
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_masks_match_forward() {
        let x = Matrix::full(10, 10, 1.0);
        let mut rng = seeded_rng(3);
        let (y, mask) = dropout(&x, 0.5, &mut rng);
        let dy = Matrix::full(10, 10, 1.0);
        let dx = dropout_backward(&dy, &mask);
        // Gradient flows exactly where output was nonzero.
        for (o, g) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let x = Matrix::full(8, 8, 1.0);
        let (a, _) = dropout(&x, 0.4, &mut seeded_rng(7));
        let (b, _) = dropout(&x, 0.4, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn p_one_is_rejected() {
        let x = Matrix::zeros(1, 1);
        let mut rng = seeded_rng(4);
        let _ = dropout(&x, 1.0, &mut rng);
    }
}

//! The tiled backend: packed panels, cache blocking, register tiles.
//!
//! Classic three-level blocking (BLIS-style): the output is processed in
//! `MC x NC` rectangles, the reduction dimension in `KC` chunks. For each
//! chunk, the A panel is packed into `MR`-row strips (strip-major,
//! `p`-innermost) and the B panel into `NR`-column strips, so the
//! microkernel streams both with unit stride regardless of the operands'
//! original strides or transposition. The `MR x NR` register tile
//! accumulates with one scalar per output element while its `NR` lanes
//! vectorize *across output columns* — vectorizing the `k` reduction
//! itself would reassociate float additions and break the bit-exactness
//! contract, but independent output elements in parallel lanes do not.
//!
//! Bit-exactness with [`ScalarKernel`] falls out of the accumulator
//! discipline: each output element's partial sum lives in the packed
//! accumulator tile across `KC` chunks, so the per-element sequence of
//! `f32` additions is exactly the ascending-`k` order the contract
//! prescribes, and `alpha` is applied once at writeback. Edge tiles are
//! zero-padded in the packed panels and the padded lanes discarded at
//! writeback; the padding multiplies into accumulators that are never
//! read, so it cannot perturb any retained element.
//!
//! Packing buffers and the accumulator tile come from the exec runtime's
//! thread-local [`workspace`] arena — each band of a launch plan packs
//! into its own worker's recycled buffers, so steady-state products
//! allocate nothing.
//!
//! [`workspace`]: megablocks_exec::workspace

use megablocks_exec::workspace;

use super::scalar::ScalarKernel;
use super::{GemmMicrokernel, PanelView};

/// Register-tile rows.
pub const MR: usize = 4;
/// Register-tile columns (the autovectorized lanes).
pub const NR: usize = 8;
/// Row cache block (multiple of `MR`).
const MC: usize = 64;
/// Column cache block (multiple of `NR`).
const NC: usize = 128;
/// Reduction cache block.
const KC: usize = 256;

/// Products below this many fused multiply-adds delegate to the scalar
/// backend: packing would cost more than it saves on a tiny tile, and the
/// contract makes the results bit-identical either way.
const SMALL_MULADDS: usize = 1 << 14;

/// The packed/tiled backend.
#[derive(Debug, Default)]
pub struct TiledKernel;

impl GemmMicrokernel for TiledKernel {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn run(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: PanelView<'_>,
        b: PanelView<'_>,
        out: &mut [f32],
        out_stride: usize,
    ) {
        if m * n * k < SMALL_MULADDS {
            return ScalarKernel.run(m, n, k, alpha, a, b, out, out_stride);
        }
        run_blocked(m, n, k, alpha, a, b, out, out_stride);
    }
}

/// The blocked path proper, with no size cutoff — separated from
/// [`TiledKernel::run`] so tests can drive the packing machinery on
/// shapes below the scalar-delegation threshold.
#[allow(clippy::too_many_arguments)]
fn run_blocked(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: PanelView<'_>,
    b: PanelView<'_>,
    out: &mut [f32],
    out_stride: usize,
) {
    let mut a_pack = workspace::take_zeroed(MC * KC);
    let mut b_pack = workspace::take_zeroed(KC * NC);
    let mut acc = workspace::take_zeroed(MC * NC);

    'tiles: for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_pad = nc.div_ceil(NR) * NR;
        for ic in (0..m).step_by(MC) {
            let mc = MC.min(m - ic);
            let mc_pad = mc.div_ceil(MR) * MR;
            acc[..mc_pad * nc_pad].fill(0.0);
            for kc0 in (0..k).step_by(KC) {
                // Cooperative cancellation point, once per packed
                // `MC x NC x KC` chunk (millions of muladds, so the poll
                // — one thread-local read when no context is installed —
                // is free at kernel granularity). A cancelled launch's
                // output is discarded with the launch error, so bailing
                // mid-accumulation cannot be observed.
                if megablocks_exec::cancel::poll_cancelled() {
                    break 'tiles;
                }
                let kc = KC.min(k - kc0);
                pack_a(&mut a_pack, &a, ic, mc, mc_pad, kc0, kc);
                pack_b(&mut b_pack, &b, jc, nc, nc_pad, kc0, kc);
                for t in 0..nc_pad / NR {
                    let b_strip = &b_pack[t * kc * NR..(t + 1) * kc * NR];
                    for s in 0..mc_pad / MR {
                        let a_strip = &a_pack[s * kc * MR..(s + 1) * kc * MR];
                        micro(
                            a_strip,
                            b_strip,
                            &mut acc[s * MR * nc_pad + t * NR..],
                            nc_pad,
                        );
                    }
                }
            }
            for i in 0..mc {
                let arow = &acc[i * nc_pad..i * nc_pad + nc];
                let o0 = (ic + i) * out_stride + jc;
                for (o, &v) in out[o0..o0 + nc].iter_mut().zip(arow) {
                    *o += alpha * v;
                }
            }
        }
    }

    workspace::recycle(acc);
    workspace::recycle(b_pack);
    workspace::recycle(a_pack);
}

/// Packs rows `[ic, ic + mc)` x columns `[kc0, kc0 + kc)` of `a` into
/// `MR`-row strips: strip `s`, element `(p, ii)` lands at
/// `s * kc * MR + p * MR + ii`. Rows past `mc` (edge padding up to
/// `mc_pad`) are zero-filled.
fn pack_a(
    dst: &mut [f32],
    a: &PanelView<'_>,
    ic: usize,
    mc: usize,
    mc_pad: usize,
    kc0: usize,
    kc: usize,
) {
    let data = a.data();
    let (rs, cs) = (a.row_stride(), a.col_stride());
    for s in 0..mc_pad / MR {
        let strip = &mut dst[s * kc * MR..(s + 1) * kc * MR];
        for ii in 0..MR {
            let row = s * MR + ii;
            if row >= mc {
                for p in 0..kc {
                    strip[p * MR + ii] = 0.0;
                }
                continue;
            }
            let mut src = (ic + row) * rs + kc0 * cs;
            for p in 0..kc {
                strip[p * MR + ii] = data[src];
                src += cs;
            }
        }
    }
}

/// Packs rows `[kc0, kc0 + kc)` x columns `[jc, jc + nc)` of `b` into
/// `NR`-column strips: strip `t`, element `(p, jj)` lands at
/// `t * kc * NR + p * NR + jj`. Columns past `nc` are zero-filled.
fn pack_b(
    dst: &mut [f32],
    b: &PanelView<'_>,
    jc: usize,
    nc: usize,
    nc_pad: usize,
    kc0: usize,
    kc: usize,
) {
    let data = b.data();
    let (rs, cs) = (b.row_stride(), b.col_stride());
    for t in 0..nc_pad / NR {
        let strip = &mut dst[t * kc * NR..(t + 1) * kc * NR];
        let cols = NR.min(nc.saturating_sub(t * NR));
        for p in 0..kc {
            let row = &mut strip[p * NR..(p + 1) * NR];
            let mut src = (kc0 + p) * rs + (jc + t * NR) * cs;
            for v in row.iter_mut().take(cols) {
                *v = data[src];
                src += cs;
            }
            for v in row.iter_mut().skip(cols) {
                *v = 0.0;
            }
        }
    }
}

/// The register-tile microkernel: continues the `MR x NR` accumulator
/// tile at `acc[.. stride ..]` through one packed `kc` chunk. The local
/// tile is loaded from `acc`, updated in ascending-`p` order (one `f32`
/// accumulator per element — the `jj` lanes are independent elements, so
/// the compiler may vectorize across them without reassociating any
/// element's reduction), and stored back.
#[inline]
fn micro(a_strip: &[f32], b_strip: &[f32], acc: &mut [f32], stride: usize) {
    let mut tile = [[0.0f32; NR]; MR];
    for (ii, row) in tile.iter_mut().enumerate() {
        row.copy_from_slice(&acc[ii * stride..ii * stride + NR]);
    }
    for (av, bv) in a_strip.chunks_exact(MR).zip(b_strip.chunks_exact(NR)) {
        for (ii, row) in tile.iter_mut().enumerate() {
            let a = av[ii];
            for (jj, v) in row.iter_mut().enumerate() {
                *v += a * bv[jj];
            }
        }
    }
    for (ii, row) in tile.iter().enumerate() {
        acc[ii * stride..ii * stride + NR].copy_from_slice(row);
    }
}

#[cfg(test)]
mod tests {
    use super::super::KernelBackend;
    use super::*;

    fn lcg_fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    /// Bit-exactness against the scalar oracle across shapes straddling
    /// every blocking edge (tile, register strip, reduction chunk).
    #[test]
    fn bit_identical_to_scalar_across_blocking_edges() {
        let shapes = [
            (1usize, 1usize, 1usize),
            (MR, NR, 3),
            (MR + 1, NR + 3, KC + 7),
            (MC, NC, 64),
            (MC + 5, NC + 17, KC + 1),
            (3, 200, 50),
            (130, 90, 70),
        ];
        for &(m, n, k) in &shapes {
            let a = lcg_fill(m * k, 1 + m as u64);
            let b = lcg_fill(k * n, 2 + n as u64);
            let mut want = lcg_fill(m * n, 3);
            let mut got = want.clone();
            let alpha = 0.75f32;
            ScalarKernel.run(
                m,
                n,
                k,
                alpha,
                PanelView::new(&a, k, 1),
                PanelView::new(&b, n, 1),
                &mut want,
                n,
            );
            // run_blocked directly: exercises the packing machinery even
            // on shapes below the scalar-delegation threshold.
            run_blocked(
                m,
                n,
                k,
                alpha,
                PanelView::new(&a, k, 1),
                PanelView::new(&b, n, 1),
                &mut got,
                n,
            );
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "m={m} n={n} k={k}: element {i} differs ({g} vs {w})"
                );
            }
        }
    }

    #[test]
    fn strided_and_transposed_views_match_scalar() {
        let (m, n, k) = (70, 40, 90);
        let a = lcg_fill(k * m, 11); // stored k x m => view A^T
        let b = lcg_fill(n * k, 12); // stored n x k => view B^T
        let av = PanelView::new(&a, 1, m);
        let bv = PanelView::new(&b, 1, k);
        let mut want = vec![0.0f32; m * n];
        let mut got = vec![0.0f32; m * n];
        ScalarKernel.run(m, n, k, 1.0, av, bv, &mut want, n);
        TiledKernel.run(m, n, k, 1.0, av, bv, &mut got, n);
        assert!(
            got.iter()
                .zip(&want)
                .all(|(g, w)| g.to_bits() == w.to_bits()),
            "transposed views diverged from scalar"
        );
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(TiledKernel.name(), KernelBackend::Tiled.name());
        assert_eq!(ScalarKernel.name(), KernelBackend::Scalar.name());
    }
}

//! The tiled-microkernel dispatch layer.
//!
//! Every matrix product in the workspace — the four dense [`gemm`]
//! transpose combinations and the whole SDD/DSD/DDS block-sparse family —
//! reduces to the same primitive: accumulate `alpha * A * B` into a small
//! rectangle of an output buffer, where `A` and `B` are strided views over
//! dense storage or sparse blocks. This module owns that primitive. Ops
//! keep their topology iteration (which blocks exist, which bands a worker
//! owns) and delegate every inner product to [`block_gemm`], which
//! dispatches to the selected [`GemmMicrokernel`] backend:
//!
//! * [`scalar`] — the reference triple loop, one dot product per output
//!   element. Obviously correct; the baseline every other backend is
//!   proven against.
//! * [`tiled`] — packed A/B panels with `Mc`/`Nc`/`Kc` cache blocking and
//!   an `MR x NR` register tile whose lanes vectorize across output
//!   columns.
//!
//! # Determinism contract
//!
//! Backends are **bit-identical** by construction, not by testing alone:
//! the trait contract fixes, per output element, a single `f32`
//! accumulator filled in ascending-`k` order, with `alpha` applied exactly
//! once after the reduction (`out[i][j] += alpha * Σ_p a[i][p] *
//! b[p][j]`). Cache blocking only *chunks* that reduction — the sequence
//! of binary `f32` additions per element is unchanged — so a backend
//! switch can never change a single bit of any product, and the exec
//! runtime's cross-worker-count determinism guarantee extends across
//! backends. No backend may skip zero operands (adding `0.0` is not a
//! bitwise no-op when `-0.0` is involved) or reassociate the reduction.
//!
//! [`gemm`]: crate::gemm
//!
//! # Backend selection
//!
//! [`configure_kernel_backend`] wins over the `MEGABLOCKS_KERNEL`
//! environment variable (`scalar` or `tiled`), which wins over the
//! default ([`KernelBackend::Tiled`]). Selection is process-global and
//! re-readable at runtime, so benchmarks can flip backends between
//! measurements.

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;

use megablocks_telemetry as telemetry;

pub mod scalar;
pub mod tiled;

pub use scalar::ScalarKernel;
pub use tiled::TiledKernel;

/// A read-only strided view of one GEMM operand.
///
/// Element `(i, p)` lives at `data[i * row_stride + p * col_stride]`.
/// Transposition is a stride swap, a sparse block is a `bs x bs` view with
/// `row_stride = bs, col_stride = 1`, and a column slab of a row-major
/// dense matrix is the slice starting at the slab with the matrix's full
/// row stride — so one view type covers every operand in the workspace
/// without copying.
#[derive(Debug, Clone, Copy)]
pub struct PanelView<'a> {
    data: &'a [f32],
    row_stride: usize,
    col_stride: usize,
}

impl<'a> PanelView<'a> {
    /// A view over `data` with the given strides.
    #[inline]
    pub fn new(data: &'a [f32], row_stride: usize, col_stride: usize) -> Self {
        PanelView {
            data,
            row_stride,
            col_stride,
        }
    }

    /// The backing slice.
    #[inline]
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Stride between consecutive logical rows.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Stride between consecutive logical columns.
    #[inline]
    pub fn col_stride(&self) -> usize {
        self.col_stride
    }

    /// Element `(i, p)` of the logical operand.
    #[inline]
    pub fn at(&self, i: usize, p: usize) -> f32 {
        self.data[i * self.row_stride + p * self.col_stride]
    }

    /// Whether an `m x k` logical operand fits inside the backing slice.
    #[inline]
    fn covers(&self, m: usize, k: usize) -> bool {
        m == 0 || k == 0 || (m - 1) * self.row_stride + (k - 1) * self.col_stride < self.data.len()
    }
}

/// One GEMM backend.
///
/// # Contract
///
/// `run` must compute, for every `i < m`, `j < n`:
///
/// ```text
/// out[i * out_stride + j] += alpha * (Σ_{p=0..k} a.at(i, p) * b.at(p, j))
/// ```
///
/// where the reduction uses a single `f32` accumulator per output element,
/// filled in ascending `p` order (chunking the reduction is fine —
/// reordering or splitting it is not), `alpha` multiplies the finished sum
/// exactly once, and no term is skipped (not even exact zeros). Every
/// conforming backend is therefore bit-identical to [`ScalarKernel`].
///
/// Callers reach backends through [`block_gemm`], which validates the
/// geometry (operand coverage, output bounds, row disjointness) before
/// dispatch; `run` may assume it.
pub trait GemmMicrokernel: Sync {
    /// Stable backend name (telemetry label, `MEGABLOCKS_KERNEL` value).
    fn name(&self) -> &'static str;

    /// Accumulates `alpha * a * b` into the `m x n` output rectangle.
    // The argument list is the standard GEMM signature (dims, scale, two
    // operands, output + stride); bundling it into a struct would only
    // move the same eight names one level down at every call site.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: PanelView<'_>,
        b: PanelView<'_>,
        out: &mut [f32],
        out_stride: usize,
    );
}

/// The selectable GEMM backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Reference triple loop ([`ScalarKernel`]).
    Scalar,
    /// Packed panels + register tile ([`TiledKernel`]).
    Tiled,
}

impl KernelBackend {
    /// The backend's stable name.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Tiled => "tiled",
        }
    }

    /// Parses a `MEGABLOCKS_KERNEL` value.
    pub fn parse(s: &str) -> Option<KernelBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelBackend::Scalar),
            "tiled" => Some(KernelBackend::Tiled),
            _ => None,
        }
    }
}

/// Explicit backend request (0 = unset; otherwise `encode(backend)`).
static CONFIGURED: AtomicU8 = AtomicU8::new(0);

/// Backend resolved from the environment, cached on first use.
static ENV_DEFAULT: OnceLock<KernelBackend> = OnceLock::new();

#[inline]
fn encode(b: KernelBackend) -> u8 {
    match b {
        KernelBackend::Scalar => 1,
        KernelBackend::Tiled => 2,
    }
}

/// Selects the process-wide GEMM backend, overriding `MEGABLOCKS_KERNEL`
/// and the default. Takes effect for every subsequent product (the switch
/// is re-readable at runtime — backends are bit-identical, so flipping
/// mid-run changes speed, never results). Returns the previous selection.
pub fn configure_kernel_backend(backend: KernelBackend) -> KernelBackend {
    let previous = CONFIGURED.swap(encode(backend), Relaxed);
    match previous {
        1 => KernelBackend::Scalar,
        2 => KernelBackend::Tiled,
        _ => *ENV_DEFAULT.get_or_init(env_default),
    }
}

fn env_default() -> KernelBackend {
    match std::env::var("MEGABLOCKS_KERNEL") {
        Ok(v) => KernelBackend::parse(&v).unwrap_or_else(|| {
            // A typo'd backend name must not silently invalidate a
            // benchmark run by falling back to the default.
            panic!("MEGABLOCKS_KERNEL={v:?} is not a backend (expected \"scalar\" or \"tiled\")")
        }),
        Err(_) => KernelBackend::Tiled,
    }
}

/// The currently selected backend: [`configure_kernel_backend`] >
/// `MEGABLOCKS_KERNEL` > [`KernelBackend::Tiled`].
pub fn kernel_backend() -> KernelBackend {
    match CONFIGURED.load(Relaxed) {
        1 => KernelBackend::Scalar,
        2 => KernelBackend::Tiled,
        _ => *ENV_DEFAULT.get_or_init(env_default),
    }
}

static SCALAR: ScalarKernel = ScalarKernel;
static TILED: TiledKernel = TiledKernel;

/// The selected backend's implementation.
pub fn backend_impl() -> &'static dyn GemmMicrokernel {
    match kernel_backend() {
        KernelBackend::Scalar => &SCALAR,
        KernelBackend::Tiled => &TILED,
    }
}

/// Products at or above this many fused multiply-adds record a
/// `kernel.block_gemm` telemetry span; smaller calls (a single sparse
/// block) only count, so per-block dispatch stays cheap.
const SPAN_FLOPS: usize = 1 << 20;

/// The shared entry every matrix product dispatches through: accumulates
/// `alpha * a * b` into the `m x n` rectangle of `out` (rows `out_stride`
/// apart), on the selected backend.
///
/// `a` is logically `m x k`, `b` is `k x n`. When `k == 0` or
/// `alpha == 0.0` the output is untouched (no `+= 0.0` writeback, on
/// every backend alike).
///
/// # Panics
///
/// Panics if either operand view does not cover its logical shape, if the
/// output rectangle overflows `out`, or if `out_stride < n` would alias
/// output rows (with `m > 1`).
// The argument list is the standard GEMM signature; see
// [`GemmMicrokernel::run`].
#[allow(clippy::too_many_arguments)]
pub fn block_gemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: PanelView<'_>,
    b: PanelView<'_>,
    out: &mut [f32],
    out_stride: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(
        a.covers(m, k),
        "block_gemm: A view ({} floats, strides {}x{}) does not cover {m}x{k}",
        a.data.len(),
        a.row_stride,
        a.col_stride
    );
    assert!(
        b.covers(k, n),
        "block_gemm: B view ({} floats, strides {}x{}) does not cover {k}x{n}",
        b.data.len(),
        b.row_stride,
        b.col_stride
    );
    assert!(
        m <= 1 || out_stride >= n,
        "block_gemm: out_stride {out_stride} < n {n} would alias output rows"
    );
    assert!(
        (m - 1) * out_stride + n <= out.len(),
        "block_gemm: {m}x{n} output (stride {out_stride}) overflows {} floats",
        out.len()
    );
    if k == 0 || alpha == 0.0 {
        return;
    }

    let kernel = backend_impl();
    let flops = 2 * m * n * k;
    telemetry::counter_with("kernel.calls", kernel.name()).inc();
    telemetry::counter_with("kernel.flops", kernel.name()).add(flops as u64);
    let _span = if flops >= SPAN_FLOPS {
        Some(telemetry::span("kernel.block_gemm"))
    } else {
        None
    };
    kernel.run(m, n, k, alpha, a, b, out, out_stride);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [KernelBackend::Scalar, KernelBackend::Tiled] {
            assert_eq!(KernelBackend::parse(b.name()), Some(b));
        }
        assert_eq!(
            KernelBackend::parse(" TILED \n"),
            Some(KernelBackend::Tiled)
        );
        assert_eq!(KernelBackend::parse("cuda"), None);
    }

    #[test]
    fn configure_overrides_and_restores() {
        let original = kernel_backend();
        configure_kernel_backend(KernelBackend::Scalar);
        assert_eq!(kernel_backend(), KernelBackend::Scalar);
        let previous = configure_kernel_backend(KernelBackend::Tiled);
        assert_eq!(previous, KernelBackend::Scalar);
        assert_eq!(kernel_backend(), KernelBackend::Tiled);
        configure_kernel_backend(original);
    }

    #[test]
    fn zero_k_and_zero_alpha_leave_output_untouched() {
        let a = [1.0f32; 4];
        let b = [2.0f32; 4];
        let mut out = [-0.0f32; 4];
        block_gemm(
            2,
            2,
            0,
            1.0,
            PanelView::new(&a, 2, 1),
            PanelView::new(&b, 2, 1),
            &mut out,
            2,
        );
        assert!(out.iter().all(|v| v.to_bits() == (-0.0f32).to_bits()));
        block_gemm(
            2,
            2,
            2,
            0.0,
            PanelView::new(&a, 2, 1),
            PanelView::new(&b, 2, 1),
            &mut out,
            2,
        );
        assert!(out.iter().all(|v| v.to_bits() == (-0.0f32).to_bits()));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn undersized_operand_panics() {
        let a = [1.0f32; 3];
        let b = [1.0f32; 4];
        let mut out = [0.0f32; 4];
        block_gemm(
            2,
            2,
            2,
            1.0,
            PanelView::new(&a, 2, 1),
            PanelView::new(&b, 2, 1),
            &mut out,
            2,
        );
    }

    #[test]
    #[should_panic(expected = "would alias")]
    fn aliasing_stride_panics() {
        let a = [1.0f32; 4];
        let b = [1.0f32; 4];
        let mut out = [0.0f32; 4];
        block_gemm(
            2,
            2,
            2,
            1.0,
            PanelView::new(&a, 2, 1),
            PanelView::new(&b, 2, 1),
            &mut out,
            1,
        );
    }
}

//! The reference backend: one dot product per output element.
//!
//! This is the workspace's original naive inner loop, hoisted out of the
//! ten per-op copies that used to live in `matmul.rs` and
//! `sparse/src/ops.rs`, restated over [`PanelView`] strides. It performs
//! no blocking and no packing — its value is being obviously conformant
//! to the [`GemmMicrokernel`] contract (single accumulator, ascending
//! `k`, `alpha` applied once), which makes it the bit-exactness oracle
//! the tiled backend and every future backend are proven against.

use super::{GemmMicrokernel, PanelView};

/// The reference triple-loop backend.
#[derive(Debug, Default)]
pub struct ScalarKernel;

impl GemmMicrokernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn run(
        &self,
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: PanelView<'_>,
        b: PanelView<'_>,
        out: &mut [f32],
        out_stride: usize,
    ) {
        let a_data = a.data();
        let b_data = b.data();
        let (a_rs, a_cs) = (a.row_stride(), a.col_stride());
        let (b_rs, b_cs) = (b.row_stride(), b.col_stride());
        for i in 0..m {
            let a_row = i * a_rs;
            let out_row = i * out_stride;
            for j in 0..n {
                let b_col = j * b_cs;
                let mut acc = 0.0f32;
                let mut ai = a_row;
                let mut bi = b_col;
                for _ in 0..k {
                    let (av, bv) =
                        // SAFETY: block_gemm asserted both views cover their
                        // logical shapes, so the largest reached offsets —
                        // (m-1)*a_rs + (k-1)*a_cs and (k-1)*b_rs + (n-1)*b_cs
                        // — are in bounds, and ai/bi only step toward them.
                        unsafe { (*a_data.get_unchecked(ai), *b_data.get_unchecked(bi)) };
                    acc += av * bv;
                    ai += a_cs;
                    bi += b_rs;
                }
                out[out_row + j] += alpha * acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computed_product() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] => AB = [[19,22],[43,50]].
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [1.0f32; 4];
        ScalarKernel.run(
            2,
            2,
            2,
            2.0,
            PanelView::new(&a, 2, 1),
            PanelView::new(&b, 2, 1),
            &mut out,
            2,
        );
        assert_eq!(out, [39.0, 45.0, 87.0, 101.0]);
    }

    #[test]
    fn transposed_views_are_stride_swaps() {
        // A^T via swapped strides: stored 2x3, viewed 3x2.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 0.0, 0.0, 1.0];
        let mut out = [0.0f32; 6];
        ScalarKernel.run(
            3,
            2,
            2,
            1.0,
            PanelView::new(&a, 1, 3),
            PanelView::new(&b, 2, 1),
            &mut out,
            2,
        );
        assert_eq!(out, [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }
}

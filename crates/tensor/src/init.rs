//! Deterministic weight initializers.
//!
//! All randomness in the workspace flows through explicitly seeded
//! [`rand::rngs::StdRng`] instances so every experiment is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Matrix;

/// Samples a matrix with i.i.d. normal entries `N(0, std^2)`.
///
/// Uses a Box-Muller transform over the uniform generator so results are
/// stable across `rand` versions of the same major release.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sample_normal(rng) * std)
}

/// Samples a matrix with uniform entries in `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Xavier/Glorot uniform initialization for a `fan_in` x `fan_out` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, limit, rng)
}

/// The GPT-2 / Megatron initialization: `N(0, 0.02^2)`.
pub fn gpt2_normal(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    normal(rows, cols, 0.02, rng)
}

/// Creates a seeded RNG. Thin wrapper so callers don't need `rand` traits in
/// scope.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn sample_normal(rng: &mut StdRng) -> f32 {
    // Box-Muller; discard the second variate for simplicity.
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a = normal(4, 4, 1.0, &mut seeded_rng(7));
        let b = normal(4, 4, 1.0, &mut seeded_rng(7));
        assert_eq!(a, b);
        let c = normal(4, 4, 1.0, &mut seeded_rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let m = normal(200, 200, 1.0, &mut seeded_rng(42));
        let n = m.len() as f32;
        let mean = m.sum() / n;
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn xavier_limit_respected() {
        let m = xavier_uniform(100, 50, &mut seeded_rng(1));
        let limit = (6.0 / 150.0f32).sqrt();
        assert!(m.max_abs() <= limit + 1e-6);
    }
}

//! General matrix multiplication with transpose support.
//!
//! This is the CPU stand-in for a device GEMM (cuBLAS in the paper). The
//! kernel is parallelized over horizontal bands of the output matrix,
//! launched through the shared execution runtime's worker pool
//! ([`megablocks_exec::LaunchPlan`]); within a band the product is one
//! [`kernel::block_gemm`] call — transposition is a stride swap on the
//! operand views, and the selected microkernel backend does the rest.

use megablocks_exec as exec;

use crate::kernel::{self, PanelView};
use crate::Matrix;

/// Whether an input operand of [`gemm`] is used as-is or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand in its stored orientation.
    N,
    /// Use the transpose of the operand.
    T,
}

impl Trans {
    /// Logical shape of an operand under this transposition.
    fn apply(self, shape: (usize, usize)) -> (usize, usize) {
        match self {
            Trans::N => shape,
            Trans::T => (shape.1, shape.0),
        }
    }
}

/// Minimum number of output elements before the multiply is worth
/// parallelizing. Below this it runs single-banded on the caller: even a
/// pooled launch costs a queue round-trip per band.
const PARALLEL_THRESHOLD: usize = 64 * 64;

/// NaN/Inf poisoning check on a kernel output, auto-invoked under
/// `--features sanitize`. A non-finite value in a GEMM output means an
/// input was already poisoned or the kernel itself is broken; panicking at
/// the producing op localizes the bug instead of letting the NaN spread
/// through the training step.
#[cfg(feature = "sanitize")]
fn sanitize_output(op: &'static str, data: &[f32]) {
    for (index, &v) in data.iter().enumerate() {
        assert!(
            v.is_finite(),
            "sanitize: {op} produced non-finite value {v} at output index {index}"
        );
    }
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn sanitize_output(_op: &'static str, _data: &[f32]) {}

/// Computes `c = alpha * op_a(a) * op_b(b) + beta * c`.
///
/// `op_a`/`op_b` select transposition of each input ([`Trans`]). This is the
/// full BLAS-style GEMM used by every dense layer in the workspace; the
/// convenience wrappers [`matmul`], [`matmul_tn`] and [`matmul_nt`] cover the
/// common cases.
///
/// # Panics
///
/// Panics if the logical shapes are incompatible: `op_a(a)` must be `m x k`,
/// `op_b(b)` must be `k x n`, and `c` must be `m x n`.
pub fn gemm(
    alpha: f32,
    a: &Matrix,
    op_a: Trans,
    b: &Matrix,
    op_b: Trans,
    beta: f32,
    c: &mut Matrix,
) {
    let (m, ka) = op_a.apply(a.shape());
    let (kb, n) = op_b.apply(b.shape());
    assert_eq!(
        ka, kb,
        "gemm inner dimension mismatch: op_a(a) is {m}x{ka}, op_b(b) is {kb}x{n}"
    );
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm output shape mismatch: expected {m}x{n}, got {:?}",
        c.shape()
    );
    let k = ka;

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }

    let threads = exec::parallelism_for(m * n, PARALLEL_THRESHOLD).min(m);

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let (_a_rows, a_cols) = a.shape();
    let (_b_rows, b_cols) = b.shape();
    let c_data = c.as_mut_slice();

    // B does not depend on the band; A's view starts at the band's first
    // row (a row offset under N, a column offset under T — both are just
    // a slice start since transposition is a stride swap).
    let b_view = match op_b {
        Trans::N => PanelView::new(b_data, b_cols, 1),
        Trans::T => PanelView::new(b_data, 1, b_cols),
    };
    let body = |band: &mut [f32], row0: usize| {
        // Report the band's write set to the exec race sanitizer from the
        // kernel side (a no-op without `--features sanitize`); gemm writes
        // every element of its band, so the whole slice is the interval.
        exec::record_write(band);
        let rows = band.len() / n;
        let a_view = match op_a {
            Trans::N => PanelView::new(&a_data[row0 * a_cols..], a_cols, 1),
            Trans::T => PanelView::new(&a_data[row0..], 1, a_cols),
        };
        kernel::block_gemm(rows, n, k, alpha, a_view, b_view, band, n);
    };

    let rows_per_band = m.div_ceil(threads);
    exec::LaunchPlan::over_items("gemm", c_data, n, rows_per_band, &body).launch();
    sanitize_output("gemm", c_data);
}

/// Generates the `matmul*` convenience wrappers: each allocates the
/// right-shaped output and runs one [`gemm`] with fixed transpositions —
/// the per-combination loop bodies they used to carry all live in
/// [`crate::kernel`] now.
macro_rules! matmul_wrappers {
    ($($(#[$attr:meta])* $name:ident: ($opa:expr, $opb:expr) -> |$a:ident, $b:ident| ($rows:expr, $cols:expr);)*) => {$(
        $(#[$attr])*
        pub fn $name($a: &Matrix, $b: &Matrix) -> Matrix {
            let mut c = Matrix::zeros($rows, $cols);
            gemm(1.0, $a, $opa, $b, $opb, 0.0, &mut c);
            c
        }
    )*};
}

matmul_wrappers! {
    /// Computes `a * b` into a fresh matrix.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    matmul: (Trans::N, Trans::N) -> |a, b| (a.rows(), b.cols());

    /// Computes `a^T * b` into a fresh matrix (used for weight gradients).
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != b.rows()`.
    matmul_tn: (Trans::T, Trans::N) -> |a, b| (a.cols(), b.cols());

    /// Computes `a * b^T` into a fresh matrix (used for data gradients).
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.cols()`.
    matmul_nt: (Trans::N, Trans::T) -> |a, b| (a.rows(), b.rows());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{configure_kernel_backend, KernelBackend};

    fn reference(a: &Matrix, op_a: Trans, b: &Matrix, op_b: Trans) -> Matrix {
        let am = match op_a {
            Trans::N => a.clone(),
            Trans::T => a.transpose(),
        };
        let bm = match op_b {
            Trans::N => b.clone(),
            Trans::T => b.transpose(),
        };
        let mut c = Matrix::zeros(am.rows(), bm.cols());
        for i in 0..am.rows() {
            for j in 0..bm.cols() {
                let mut acc = 0.0;
                for p in 0..am.cols() {
                    acc += am[(i, p)] * bm[(p, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the test has no dependencies.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let cases = [(5usize, 7usize, 3usize), (1, 1, 1), (4, 4, 4), (9, 2, 6)];
        for &(m, n, k) in &cases {
            for (op_a, op_b) in [
                (Trans::N, Trans::N),
                (Trans::N, Trans::T),
                (Trans::T, Trans::N),
                (Trans::T, Trans::T),
            ] {
                let a = match op_a {
                    Trans::N => rand_matrix(m, k, 1),
                    Trans::T => rand_matrix(k, m, 1),
                };
                let b = match op_b {
                    Trans::N => rand_matrix(k, n, 2),
                    Trans::T => rand_matrix(n, k, 2),
                };
                let mut c = Matrix::zeros(m, n);
                gemm(1.0, &a, op_a, &b, op_b, 0.0, &mut c);
                let want = reference(&a, op_a, &b, op_b);
                assert!(
                    c.approx_eq(&want, 1e-4),
                    "mismatch for ({op_a:?},{op_b:?}) m={m} n={n} k={k}: diff {}",
                    c.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = rand_matrix(3, 3, 5);
        let b = rand_matrix(3, 3, 6);
        let mut c = Matrix::full(3, 3, 1.0);
        gemm(2.0, &a, Trans::N, &b, Trans::N, 0.5, &mut c);
        let mut want = reference(&a, Trans::N, &b, Trans::N);
        want.scale(2.0);
        want.axpy(0.5, &Matrix::full(3, 3, 1.0));
        assert!(c.approx_eq(&want, 1e-4));
    }

    #[test]
    fn large_parallel_matches_reference() {
        let a = rand_matrix(130, 70, 11);
        let b = rand_matrix(70, 90, 12);
        let c = matmul(&a, &b);
        let want = reference(&a, Trans::N, &b, Trans::N);
        assert!(c.approx_eq(&want, 1e-3), "diff {}", c.max_abs_diff(&want));
    }

    #[test]
    fn backends_agree_bitwise_on_gemm() {
        let original = crate::kernel::kernel_backend();
        let a = rand_matrix(90, 130, 41);
        let b = rand_matrix(130, 75, 42);
        configure_kernel_backend(KernelBackend::Scalar);
        let scalar = matmul_nt(&rand_matrix(90, 130, 41), &rand_matrix(75, 130, 43));
        configure_kernel_backend(KernelBackend::Tiled);
        let tiled = matmul_nt(&rand_matrix(90, 130, 41), &rand_matrix(75, 130, 43));
        configure_kernel_backend(original);
        assert_eq!(scalar.as_slice(), tiled.as_slice());
        let _ = (a, b);
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (0, 3));

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn helpers_match_gemm() {
        let a = rand_matrix(4, 6, 21);
        let b = rand_matrix(4, 5, 22);
        let c = matmul_tn(&a, &b);
        assert!(c.approx_eq(&reference(&a, Trans::T, &b, Trans::N), 1e-4));

        let a = rand_matrix(4, 6, 23);
        let b = rand_matrix(5, 6, 24);
        let c = matmul_nt(&a, &b);
        assert!(c.approx_eq(&reference(&a, Trans::N, &b, Trans::T), 1e-4));
    }
}

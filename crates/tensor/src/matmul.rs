//! General matrix multiplication with transpose support.
//!
//! This is the CPU stand-in for a device GEMM (cuBLAS in the paper). The
//! kernel is parallelized over horizontal bands of the output matrix,
//! launched through the shared execution runtime's worker pool
//! ([`megablocks_exec::LaunchPlan`]); within a band the loop order is
//! chosen per transpose combination for row-major-friendly access.

use megablocks_exec as exec;

use crate::Matrix;

/// Whether an input operand of [`gemm`] is used as-is or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand in its stored orientation.
    N,
    /// Use the transpose of the operand.
    T,
}

impl Trans {
    /// Logical shape of an operand under this transposition.
    fn apply(self, shape: (usize, usize)) -> (usize, usize) {
        match self {
            Trans::N => shape,
            Trans::T => (shape.1, shape.0),
        }
    }
}

/// Minimum number of output elements before the multiply is worth
/// parallelizing. Below this it runs single-banded on the caller: even a
/// pooled launch costs a queue round-trip per band.
const PARALLEL_THRESHOLD: usize = 64 * 64;

/// NaN/Inf poisoning check on a kernel output, auto-invoked under
/// `--features sanitize`. A non-finite value in a GEMM output means an
/// input was already poisoned or the kernel itself is broken; panicking at
/// the producing op localizes the bug instead of letting the NaN spread
/// through the training step.
#[cfg(feature = "sanitize")]
fn sanitize_output(op: &'static str, data: &[f32]) {
    for (index, &v) in data.iter().enumerate() {
        assert!(
            v.is_finite(),
            "sanitize: {op} produced non-finite value {v} at output index {index}"
        );
    }
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn sanitize_output(_op: &'static str, _data: &[f32]) {}

/// Computes `c = alpha * op_a(a) * op_b(b) + beta * c`.
///
/// `op_a`/`op_b` select transposition of each input ([`Trans`]). This is the
/// full BLAS-style GEMM used by every dense layer in the workspace; the
/// convenience wrappers [`matmul`], [`matmul_tn`] and [`matmul_nt`] cover the
/// common cases.
///
/// # Panics
///
/// Panics if the logical shapes are incompatible: `op_a(a)` must be `m x k`,
/// `op_b(b)` must be `k x n`, and `c` must be `m x n`.
pub fn gemm(
    alpha: f32,
    a: &Matrix,
    op_a: Trans,
    b: &Matrix,
    op_b: Trans,
    beta: f32,
    c: &mut Matrix,
) {
    let (m, ka) = op_a.apply(a.shape());
    let (kb, n) = op_b.apply(b.shape());
    assert_eq!(
        ka, kb,
        "gemm inner dimension mismatch: op_a(a) is {m}x{ka}, op_b(b) is {kb}x{n}"
    );
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm output shape mismatch: expected {m}x{n}, got {:?}",
        c.shape()
    );
    let k = ka;

    if beta != 1.0 {
        if beta == 0.0 {
            c.fill_zero();
        } else {
            c.scale(beta);
        }
    }
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }

    let threads = exec::parallelism_for(m * n, PARALLEL_THRESHOLD).min(m);

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let (a_rows, a_cols) = a.shape();
    let (_b_rows, b_cols) = b.shape();
    let c_data = c.as_mut_slice();

    // Each closure computes rows [row0, row0+rows) of C into `band`,
    // a &mut slice of C's storage.
    let compute_band = |band: &mut [f32], row0: usize, rows: usize| {
        match (op_a, op_b) {
            (Trans::N, Trans::N) => {
                // C[i,:] += alpha * A[i,p] * B[p,:]
                for i in 0..rows {
                    let arow = &a_data[(row0 + i) * a_cols..(row0 + i + 1) * a_cols];
                    let crow = &mut band[i * n..(i + 1) * n];
                    for (p, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let s = alpha * av;
                        let brow = &b_data[p * b_cols..p * b_cols + n];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += s * bv;
                        }
                    }
                }
            }
            (Trans::N, Trans::T) => {
                // C[i,j] += alpha * dot(A[i,:], B[j,:])
                for i in 0..rows {
                    let arow = &a_data[(row0 + i) * a_cols..(row0 + i + 1) * a_cols];
                    let crow = &mut band[i * n..(i + 1) * n];
                    for (j, cv) in crow.iter_mut().enumerate() {
                        let brow = &b_data[j * b_cols..j * b_cols + k];
                        let mut acc = 0.0f32;
                        for (av, bv) in arow.iter().zip(brow) {
                            acc += av * bv;
                        }
                        *cv += alpha * acc;
                    }
                }
            }
            (Trans::T, Trans::N) => {
                // A is k x m stored; C[i,:] += alpha * A[p,i] * B[p,:]
                for p in 0..k {
                    let arow = &a_data[p * a_cols..(p + 1) * a_cols];
                    let brow = &b_data[p * b_cols..p * b_cols + n];
                    for i in 0..rows {
                        let av = arow[row0 + i];
                        if av == 0.0 {
                            continue;
                        }
                        let s = alpha * av;
                        let crow = &mut band[i * n..(i + 1) * n];
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += s * bv;
                        }
                    }
                }
            }
            (Trans::T, Trans::T) => {
                // C[i,j] += alpha * A[p,i] * B[j,p]
                for i in 0..rows {
                    let crow = &mut band[i * n..(i + 1) * n];
                    for (j, cv) in crow.iter_mut().enumerate() {
                        let brow = &b_data[j * b_cols..j * b_cols + k];
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            // SAFETY: with op_a == T the operand is stored
                            // k x m, so a_data has k * a_cols elements with
                            // a_cols == m; p < k and row0 + i < m (band
                            // rows never exceed the checked output height).
                            // brow was sliced to exactly k elements, p < k.
                            let (av, bv) = unsafe {
                                (
                                    *a_data.get_unchecked(p * a_cols + row0 + i),
                                    *brow.get_unchecked(p),
                                )
                            };
                            acc += av * bv;
                        }
                        *cv += alpha * acc;
                    }
                }
            }
        }
        // silence unused warnings for shapes only used by some arms
        let _ = a_rows;
    };

    let rows_per_band = m.div_ceil(threads);
    let body = |band: &mut [f32], row0: usize| {
        // Report the band's write set to the exec race sanitizer from the
        // kernel side (a no-op without `--features sanitize`); gemm writes
        // every element of its band, so the whole slice is the interval.
        exec::record_write(band);
        compute_band(band, row0, band.len() / n)
    };
    exec::LaunchPlan::over_items("gemm", c_data, n, rows_per_band, &body).launch();
    sanitize_output("gemm", c_data);
}

/// Computes `a * b` into a fresh matrix.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(1.0, a, Trans::N, b, Trans::N, 0.0, &mut c);
    c
}

/// Computes `a^T * b` into a fresh matrix (used for weight gradients).
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    gemm(1.0, a, Trans::T, b, Trans::N, 0.0, &mut c);
    c
}

/// Computes `a * b^T` into a fresh matrix (used for data gradients).
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm(1.0, a, Trans::N, b, Trans::T, 0.0, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(a: &Matrix, op_a: Trans, b: &Matrix, op_b: Trans) -> Matrix {
        let am = match op_a {
            Trans::N => a.clone(),
            Trans::T => a.transpose(),
        };
        let bm = match op_b {
            Trans::N => b.clone(),
            Trans::T => b.transpose(),
        };
        let mut c = Matrix::zeros(am.rows(), bm.cols());
        for i in 0..am.rows() {
            for j in 0..bm.cols() {
                let mut acc = 0.0;
                for p in 0..am.cols() {
                    acc += am[(i, p)] * bm[(p, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic LCG so the test has no dependencies.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        let cases = [(5usize, 7usize, 3usize), (1, 1, 1), (4, 4, 4), (9, 2, 6)];
        for &(m, n, k) in &cases {
            for (op_a, op_b) in [
                (Trans::N, Trans::N),
                (Trans::N, Trans::T),
                (Trans::T, Trans::N),
                (Trans::T, Trans::T),
            ] {
                let a = match op_a {
                    Trans::N => rand_matrix(m, k, 1),
                    Trans::T => rand_matrix(k, m, 1),
                };
                let b = match op_b {
                    Trans::N => rand_matrix(k, n, 2),
                    Trans::T => rand_matrix(n, k, 2),
                };
                let mut c = Matrix::zeros(m, n);
                gemm(1.0, &a, op_a, &b, op_b, 0.0, &mut c);
                let want = reference(&a, op_a, &b, op_b);
                assert!(
                    c.approx_eq(&want, 1e-4),
                    "mismatch for ({op_a:?},{op_b:?}) m={m} n={n} k={k}: diff {}",
                    c.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = rand_matrix(3, 3, 5);
        let b = rand_matrix(3, 3, 6);
        let mut c = Matrix::full(3, 3, 1.0);
        gemm(2.0, &a, Trans::N, &b, Trans::N, 0.5, &mut c);
        let mut want = reference(&a, Trans::N, &b, Trans::N);
        want.scale(2.0);
        want.axpy(0.5, &Matrix::full(3, 3, 1.0));
        assert!(c.approx_eq(&want, 1e-4));
    }

    #[test]
    fn large_parallel_matches_reference() {
        let a = rand_matrix(130, 70, 11);
        let b = rand_matrix(70, 90, 12);
        let c = matmul(&a, &b);
        let want = reference(&a, Trans::N, &b, Trans::N);
        assert!(c.approx_eq(&want, 1e-3), "diff {}", c.max_abs_diff(&want));
    }

    #[test]
    fn empty_dimensions_are_ok() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (0, 3));

        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn helpers_match_gemm() {
        let a = rand_matrix(4, 6, 21);
        let b = rand_matrix(4, 5, 22);
        let c = matmul_tn(&a, &b);
        assert!(c.approx_eq(&reference(&a, Trans::T, &b, Trans::N), 1e-4));

        let a = rand_matrix(4, 6, 23);
        let b = rand_matrix(5, 6, 24);
        let c = matmul_nt(&a, &b);
        assert!(c.approx_eq(&reference(&a, Trans::N, &b, Trans::T), 1e-4));
    }
}

//! Dense matrix substrate for MegaBlocks-RS.
//!
//! This crate provides the dense building blocks that the rest of the
//! reproduction is built on:
//!
//! * [`Matrix`] — a row-major `f32` matrix with shape-checked construction.
//! * [`gemm`] / [`matmul`] — general matrix multiplication with all
//!   transpose combinations, parallelized across output-row tiles. This is
//!   the stand-in for a device GEMM (cuBLAS in the paper).
//! * [`kernel`] — the tiled-microkernel dispatch layer every product
//!   (dense *and* block-sparse, via `megablocks-sparse`) funnels through:
//!   a [`GemmMicrokernel`] backend trait with bit-identical `scalar` and
//!   `tiled` implementations, selected by [`configure_kernel_backend`] or
//!   the `MEGABLOCKS_KERNEL` environment variable.
//! * [`BatchedMatrix`] and [`batched_matmul`] — the batched matrix
//!   multiplication primitive that state-of-the-art MoE frameworks
//!   (Tutel, Megatron-LM) map expert computation onto (paper §2.2,
//!   Figure 3A).
//! * [`ops`] — neural-network forward/backward primitives: softmax,
//!   layer norm, GeLU, bias, cross-entropy.
//! * [`init`] — deterministic weight initializers.
//! * [`half`] — IEEE binary16 emulation for the paper's mixed-precision
//!   regime (FP16 operands, FP32 accumulation).
//!
//! # Example
//!
//! ```
//! use megablocks_tensor::{Matrix, matmul};
//!
//! let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
//! let b = Matrix::eye(3);
//! let c = matmul(&a, &b);
//! assert_eq!(c, a);
//! ```

#![deny(missing_docs)]

mod batched;
pub mod dropout;
mod error;
pub mod half;
pub mod init;
pub mod kernel;
mod matmul;
mod matrix;
pub mod ops;

pub use batched::{batched_matmul, BatchedMatrix};
pub use error::ShapeError;
pub use kernel::{
    block_gemm, configure_kernel_backend, kernel_backend, GemmMicrokernel, KernelBackend, PanelView,
};
pub use matmul::{gemm, matmul, matmul_nt, matmul_tn, Trans};
pub use matrix::Matrix;

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::ShapeError;

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the workhorse value type of the reproduction: activations,
/// weights, and gradients are all `Matrix` values. Storage is a single
/// contiguous `Vec<f32>` in row-major order, which keeps row slices cheap —
/// the access pattern every kernel in this workspace is built around.
///
/// # Example
///
/// ```
/// use megablocks_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 1)] = 3.0;
/// assert_eq!(m.row(0), &[0.0, 3.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows` x `cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows` x `cols` matrix with every element set to `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a `rows` x `cols` matrix of zeros backed by the execution
    /// runtime's per-thread workspace arena. Pair with [`Matrix::recycle`]
    /// on short-lived values (gradients, scratch) so kernels reuse
    /// storage across calls instead of round-tripping the allocator.
    pub fn pooled_zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: megablocks_exec::workspace::take_zeroed(rows * cols),
        }
    }

    /// Returns this matrix's storage to the execution runtime's workspace
    /// arena for reuse by a later [`Matrix::pooled_zeros`].
    pub fn recycle(self) {
        megablocks_exec::workspace::recycle(self.data);
    }

    /// Creates the `n` x `n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new(
                "Matrix::from_vec",
                format!(
                    "data length {} does not match {}x{} = {}",
                    data.len(),
                    rows,
                    cols,
                    rows * cols
                ),
            ));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies the rows `range` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range extends past the number of rows.
    pub fn rows_range(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "invalid row range {start}..{end}"
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Returns a new matrix that is the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise addition: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// The largest absolute value in the matrix (0.0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// `true` if every corresponding element differs by at most `tol`.
    ///
    /// Shapes must match for the result to be `true`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Maximum elementwise absolute difference, or `f32::INFINITY` if the
    /// shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        if self.shape() != other.shape() {
            return f32::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            writeln!(f, " [")?;
            for i in 0..self.rows {
                writeln!(f, "  {:?}", self.row(i))?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn eye_is_identity_under_index() {
        let m = Matrix::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn rows_range_copies_expected_rows() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f32);
        let sub = m.rows_range(1, 3);
        assert_eq!(sub.shape(), (2, 2));
        assert_eq!(sub.row(0), &[1.0, 1.0]);
        assert_eq!(sub.row(1), &[2.0, 2.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.approx_eq(&Matrix::full(2, 2, 2.0), 1e-6));
        a.scale(2.0);
        assert!(a.approx_eq(&Matrix::full(2, 2, 4.0), 1e-6));
    }

    #[test]
    fn max_abs_diff_reports_infinity_on_shape_mismatch() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert_eq!(a.max_abs_diff(&b), f32::INFINITY);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m.row(2);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Matrix::default()).is_empty());
    }
}

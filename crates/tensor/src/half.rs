//! IEEE-754 binary16 emulation for mixed-precision fidelity.
//!
//! The paper's kernels run FP16 inputs with FP32 accumulation on A100
//! tensor cores (Micikevicius et al. 2018). This module emulates that
//! numeric regime on the f32 substrate: values can be rounded through
//! half precision ([`round_to_f16`]) and a GEMM wrapper
//! ([`mixed_precision_matmul`]) rounds its *inputs* to f16 while keeping
//! the f32 accumulator — exactly the tensor-core contract. Tests bound
//! the extra error and pin known binary16 encodings.

use crate::{matmul, Matrix};

/// Converts an `f32` to its nearest IEEE-754 binary16 bit pattern
/// (round-to-nearest-even; overflow saturates to infinity; subnormals
/// handled).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN
        let nan = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7C00 | nan;
    }
    // Re-bias the exponent: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal f16. Round mantissa from 23 to 10 bits, ties to even.
        let mut m = mant >> 13;
        let rem = mant & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
            m += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if m == 0x400 {
            // Mantissa rounded up past 10 bits: bump the exponent.
            m = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((e as u16) << 10) | (m as u16);
    }
    if unbiased >= -25 {
        // Subnormal f16: the value is M * 2^-24 with M = full * 2^(unbiased+1),
        // where `full` is the 24-bit significand (implicit one included).
        let full = mant | 0x0080_0000;
        let shift = (-unbiased - 1) as u32; // 14..=24 bits dropped
        let mut m = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (m & 1) == 1) {
            m += 1; // may carry into the smallest normal (0x0400) — fine
        }
        return sign | (m as u16);
    }
    sign // underflow -> signed zero
}

/// Converts an IEEE-754 binary16 bit pattern to `f32` (exact).
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits >> 15) << 31;
    let exp = u32::from((bits >> 10) & 0x1F);
    let mant = u32::from(bits & 0x3FF);
    let out = if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = mant * 2^-24
            let v = mant as f32 * 2.0f32.powi(-24);
            return if sign != 0 { -v } else { v };
        }
    } else if exp == 31 {
        if mant == 0 {
            sign | 0x7F80_0000 // inf
        } else {
            sign | 0x7FC0_0000 // NaN
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Rounds a value through binary16 and back — the precision an operand
/// has after being stored in half precision.
pub fn round_to_f16(value: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(value))
}

/// Rounds every element of a matrix through binary16.
///
/// The result is backed by the execution runtime's per-thread workspace
/// arena (like every other kernel output); short-lived copies — a
/// rounded operand that dies after one GEMM — should be returned with
/// [`Matrix::recycle`] so repeated mixed-precision calls reuse storage
/// instead of round-tripping the global allocator.
pub fn round_matrix_to_f16(m: &Matrix) -> Matrix {
    let mut out = Matrix::pooled_zeros(m.rows(), m.cols());
    for (dst, &src) in out.as_mut_slice().iter_mut().zip(m.as_slice()) {
        *dst = round_to_f16(src);
    }
    out
}

/// Mixed-precision GEMM: inputs rounded to f16, accumulation in f32 —
/// the A100 tensor-core contract the paper's kernels (and the
/// `gpusim` throughput model) assume. The two rounded operand copies
/// live in the workspace arena for the duration of the product and are
/// recycled before returning, so repeated calls allocate nothing new.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn mixed_precision_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let ra = round_matrix_to_f16(a);
    let rb = round_matrix_to_f16(b);
    let out = matmul(&ra, &rb);
    ra.recycle();
    rb.recycle();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // Classic binary16 values.
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // max finite f16
        assert_eq!(f32_to_f16_bits(65536.0), 0x7C00); // overflow -> inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(0.5), 0x3800);
        assert_eq!(f32_to_f16_bits(0.099976), 0x2E66); // ~0.1 in f16
    }

    #[test]
    fn decode_matches_encode_for_all_finite_bit_patterns() {
        // Exhaustive: every f16 bit pattern decodes, and re-encoding a
        // decoded finite value is the identity.
        for bits in 0u16..=0xFFFF {
            let v = f16_bits_to_f32(bits);
            if v.is_nan() {
                continue;
            }
            let back = f32_to_f16_bits(v);
            assert_eq!(back, bits, "bits {bits:#06x} -> {v} -> {back:#06x}");
        }
    }

    #[test]
    fn rounding_error_is_bounded_by_half_ulp() {
        // Relative error of normal-range rounding <= 2^-11.
        for i in 0..1000 {
            let v = (i as f32 * 0.37 + 0.01) * if i % 2 == 0 { 1.0 } else { -1.0 };
            let r = round_to_f16(v);
            let rel = ((r - v) / v).abs();
            assert!(
                rel <= 1.0 / 2048.0 + 1e-7,
                "value {v}: rounded {r}, rel {rel}"
            );
        }
    }

    #[test]
    fn normal_encode_ties_round_to_even() {
        // Exact-tie encodes (the dropped 13 mantissa bits are exactly
        // 0x1000, i.e. half an f16 ulp) cannot be reached by the
        // exhaustive decode-side round-trip: no f16 decodes to a tie
        // point. Construct the f32 inputs bit-exactly instead.
        let tie = |f16_mant: u32| f32::from_bits(0x3F80_0000 | (f16_mant << 13) | 0x1000);

        // Tie with an even low mantissa bit stays put: 1 + 2^-11 is
        // exactly between 0x3C00 (1.0) and 0x3C01, and 0x3C00 is even.
        assert_eq!(f32_to_f16_bits(tie(0)), 0x3C00);
        // Tie with an odd low bit rounds away: exactly between 0x3C01
        // and 0x3C02, lands on even 0x3C02.
        assert_eq!(f32_to_f16_bits(tie(1)), 0x3C02);
        // One ulp either side of the tie is not a tie: nearest wins
        // regardless of parity.
        assert_eq!(
            f32_to_f16_bits(f32::from_bits(0x3F80_0000 | 0x0FFF)),
            0x3C00
        );
        assert_eq!(
            f32_to_f16_bits(f32::from_bits(0x3F80_0000 | 0x1001)),
            0x3C01
        );
        // A tie on the all-ones mantissa carries into the exponent:
        // just below 2.0 rounds up to exactly 2.0 (0x4000).
        assert_eq!(f32_to_f16_bits(tie(0x3FF)), 0x4000);
        // Negative ties mirror the positive ones.
        assert_eq!(f32_to_f16_bits(-tie(1)), 0xBC02);
    }

    #[test]
    fn subnormal_encode_ties_round_to_even() {
        let ulp = 2.0f32.powi(-24); // smallest f16 subnormal
                                    // Exactly half the smallest subnormal: tie between 0x0000 and
                                    // 0x0001; zero is even, so the value flushes to zero.
        assert_eq!(f32_to_f16_bits(ulp / 2.0), 0x0000);
        // 1.5 ulp: tie between 0x0001 and 0x0002, odd m rounds up.
        assert_eq!(f32_to_f16_bits(1.5 * ulp), 0x0002);
        // 2.5 ulp: tie between 0x0002 and 0x0003, even m stays.
        assert_eq!(f32_to_f16_bits(2.5 * ulp), 0x0002);
        // Off-tie neighbours still round to nearest.
        assert_eq!(f32_to_f16_bits(2.25 * ulp), 0x0002);
        assert_eq!(f32_to_f16_bits(2.75 * ulp), 0x0003);
        // The top-of-range tie carries out of the subnormal encoding
        // into the smallest normal (0x0400 = 2^-14).
        assert_eq!(f32_to_f16_bits(1023.5 * ulp), 0x0400);
        // Sign is preserved through the subnormal tie path.
        assert_eq!(f32_to_f16_bits(-1.5 * ulp), 0x8002);
    }

    #[test]
    fn rounded_matrices_recycle_through_the_workspace() {
        use crate::init::{normal, seeded_rng};
        megablocks_exec::workspace::clear();
        let mut rng = seeded_rng(7);
        let a = normal(8, 12, 1.0, &mut rng);
        let b = normal(12, 6, 1.0, &mut rng);
        let first = mixed_precision_matmul(&a, &b);
        let before = megablocks_exec::workspace::stats();
        // The rounded copies were recycled, so a second call is served
        // from the arena instead of the global allocator.
        let second = mixed_precision_matmul(&a, &b);
        let after = megablocks_exec::workspace::stats();
        assert!(
            after.hits >= before.hits + 2,
            "rounded temporaries not recycled: {before:?} -> {after:?}"
        );
        assert_eq!(first.as_slice(), second.as_slice());
    }

    #[test]
    fn subnormals_roundtrip() {
        let smallest = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(smallest), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), smallest);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(f32_to_f16_bits(smallest / 4.0), 0x0000);
    }

    #[test]
    fn mixed_precision_gemm_error_is_small_relative_to_f32() {
        use crate::init::{normal, seeded_rng};
        let mut rng = seeded_rng(3);
        let a = normal(32, 48, 1.0, &mut rng);
        let b = normal(48, 24, 1.0, &mut rng);
        let exact = matmul(&a, &b);
        let mixed = mixed_precision_matmul(&a, &b);
        // fp16 inputs with fp32 accumulation: relative error ~ 2^-11 per
        // operand, amplified by the reduction; bound loosely.
        let rel = mixed.max_abs_diff(&exact) / exact.max_abs().max(1e-6);
        assert!(rel < 5e-3, "relative error {rel}");
        assert!(rel > 0.0, "rounding should actually change something");
    }
}

use std::error::Error;
use std::fmt;

/// Error returned when matrix shapes are incompatible for an operation.
///
/// Carries the operation name and the offending shapes so the message is
/// actionable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    detail: String,
}

impl ShapeError {
    /// Creates a shape error for operation `op` with a human-readable
    /// description of the mismatch.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }

    /// The operation that rejected the shapes.
    pub fn op(&self) -> &'static str {
        self.op
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

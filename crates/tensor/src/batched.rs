//! Batched matrix multiplication — the primitive that state-of-the-art MoE
//! frameworks map expert computation onto (paper §2.2, Figure 3A).
//!
//! All matrices in a [`BatchedMatrix`] share one shape, which is exactly the
//! constraint the paper identifies: to use this primitive, every expert must
//! be assigned the same number of tokens (via dropping/padding) and all
//! experts must have identically shaped weights.

use crate::{gemm, Matrix, ShapeError, Trans};

/// A batch of identically shaped matrices.
///
/// This mirrors the operand of cuBLAS batched GEMM. The token-dropping MoE
/// baseline stores each expert's (padded) token block and each expert's
/// weights as one entry of a `BatchedMatrix`.
///
/// # Example
///
/// ```
/// use megablocks_tensor::{BatchedMatrix, Matrix, batched_matmul};
///
/// let a = BatchedMatrix::from_matrices(vec![Matrix::eye(2), Matrix::eye(2)]).unwrap();
/// let b = BatchedMatrix::from_matrices(vec![Matrix::full(2, 3, 1.0), Matrix::full(2, 3, 2.0)]).unwrap();
/// let c = batched_matmul(&a, &b);
/// assert_eq!(c.get(1)[(0, 0)], 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedMatrix {
    entries: Vec<Matrix>,
    rows: usize,
    cols: usize,
}

impl BatchedMatrix {
    /// Creates a batch of `batch` zero matrices of shape `rows` x `cols`.
    pub fn zeros(batch: usize, rows: usize, cols: usize) -> Self {
        Self {
            entries: (0..batch).map(|_| Matrix::zeros(rows, cols)).collect(),
            rows,
            cols,
        }
    }

    /// Builds a batch from existing matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the matrices do not all share one shape or
    /// the batch is empty.
    pub fn from_matrices(entries: Vec<Matrix>) -> Result<Self, ShapeError> {
        let first = entries
            .first()
            .ok_or_else(|| ShapeError::new("BatchedMatrix::from_matrices", "empty batch"))?;
        let (rows, cols) = first.shape();
        for (i, e) in entries.iter().enumerate() {
            if e.shape() != (rows, cols) {
                return Err(ShapeError::new(
                    "BatchedMatrix::from_matrices",
                    format!(
                        "entry {i} has shape {:?}, expected {:?}",
                        e.shape(),
                        (rows, cols)
                    ),
                ));
            }
        }
        Ok(Self {
            entries,
            rows,
            cols,
        })
    }

    /// Number of matrices in the batch.
    pub fn batch(&self) -> usize {
        self.entries.len()
    }

    /// Shared `(rows, cols)` shape of every entry.
    pub fn entry_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Entry `i` of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.batch()`.
    pub fn get(&self, i: usize) -> &Matrix {
        &self.entries[i]
    }

    /// Mutable access to entry `i` of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.batch()`.
    pub fn get_mut(&mut self, i: usize) -> &mut Matrix {
        &mut self.entries[i]
    }

    /// Iterates over the entries in batch order.
    pub fn iter(&self) -> std::slice::Iter<'_, Matrix> {
        self.entries.iter()
    }

    /// Consumes the batch and returns its matrices.
    pub fn into_matrices(self) -> Vec<Matrix> {
        self.entries
    }

    /// Total number of f32 elements across the batch (used by the memory
    /// model to account for padding waste).
    pub fn element_count(&self) -> usize {
        self.entries.len() * self.rows * self.cols
    }
}

/// Computes the batched product `c_i = a_i * b_i` for every batch entry.
///
/// This is the cuBLAS-batched-GEMM stand-in used by the token-dropping MoE
/// baseline and by the Figure 9 comparison.
///
/// # Panics
///
/// Panics if the batch sizes differ or if the per-entry shapes are
/// incompatible for multiplication.
pub fn batched_matmul(a: &BatchedMatrix, b: &BatchedMatrix) -> BatchedMatrix {
    batched_matmul_op(a, Trans::N, b, Trans::N)
}

/// Batched GEMM with transpose control over both operands, mirroring
/// [`gemm`].
///
/// # Panics
///
/// Panics if the batch sizes differ or the logical per-entry shapes are
/// incompatible.
pub fn batched_matmul_op(
    a: &BatchedMatrix,
    op_a: Trans,
    b: &BatchedMatrix,
    op_b: Trans,
) -> BatchedMatrix {
    assert_eq!(a.batch(), b.batch(), "batched_matmul batch size mismatch");
    let entries: Vec<Matrix> = a
        .iter()
        .zip(b.iter())
        .map(|(ai, bi)| {
            let m = match op_a {
                Trans::N => ai.rows(),
                Trans::T => ai.cols(),
            };
            let n = match op_b {
                Trans::N => bi.cols(),
                Trans::T => bi.rows(),
            };
            let mut c = Matrix::zeros(m, n);
            gemm(1.0, ai, op_a, bi, op_b, 0.0, &mut c);
            c
        })
        .collect();
    BatchedMatrix::from_matrices(entries).expect("batched_matmul produced inconsistent shapes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul;

    #[test]
    fn from_matrices_rejects_ragged_batches() {
        let err = BatchedMatrix::from_matrices(vec![Matrix::zeros(2, 2), Matrix::zeros(3, 2)]);
        assert!(err.is_err());
        assert!(BatchedMatrix::from_matrices(vec![]).is_err());
    }

    #[test]
    fn batched_matches_per_entry_matmul() {
        let a = BatchedMatrix::from_matrices(vec![
            Matrix::from_fn(2, 3, |i, j| (i + j) as f32),
            Matrix::from_fn(2, 3, |i, j| (i * j) as f32),
        ])
        .unwrap();
        let b = BatchedMatrix::from_matrices(vec![
            Matrix::from_fn(3, 2, |i, j| (i as f32) - (j as f32)),
            Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32),
        ])
        .unwrap();
        let c = batched_matmul(&a, &b);
        for i in 0..2 {
            assert!(c.get(i).approx_eq(&matmul(a.get(i), b.get(i)), 1e-6));
        }
    }

    #[test]
    fn batched_transposed_ops() {
        let a =
            BatchedMatrix::from_matrices(vec![Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f32)])
                .unwrap();
        let b = BatchedMatrix::from_matrices(vec![Matrix::from_fn(4, 3, |i, j| (i + j) as f32)])
            .unwrap();
        let c = batched_matmul_op(&a, Trans::T, &b, Trans::N);
        assert_eq!(c.entry_shape(), (2, 3));
        let want = matmul(&a.get(0).transpose(), b.get(0));
        assert!(c.get(0).approx_eq(&want, 1e-6));
    }

    #[test]
    fn element_count_includes_padding() {
        let b = BatchedMatrix::zeros(4, 8, 16);
        assert_eq!(b.element_count(), 4 * 8 * 16);
    }
}

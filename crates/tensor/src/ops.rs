//! Neural-network forward/backward primitives.
//!
//! Every primitive comes as a `forward` (optionally returning a cache of
//! whatever the backward pass needs) plus a matching `backward`. There is no
//! autograd in this workspace — like Megatron-LM, each layer wires its own
//! backward pass out of these pieces, which is also exactly how the paper
//! enumerates the block-sparse products needed for dMoE training (§5.1).

use crate::Matrix;

/// Row-wise softmax.
///
/// Each row of the result sums to 1. Numerically stabilized by subtracting
/// the row max.
///
/// # Example
///
/// ```
/// use megablocks_tensor::{Matrix, ops::softmax_rows};
///
/// let x = Matrix::from_vec(1, 2, vec![0.0, 0.0]).unwrap();
/// let y = softmax_rows(&x);
/// assert!((y[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut y = x.clone();
    softmax_rows_inplace(&mut y);
    y
}

/// Row-wise softmax, in place.
pub fn softmax_rows_inplace(x: &mut Matrix) {
    let cols = x.cols();
    if cols == 0 {
        return;
    }
    for i in 0..x.rows() {
        let row = x.row_mut(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Backward pass of row-wise softmax.
///
/// Given the softmax output `y` and upstream gradient `dy`, returns
/// `dx[i,j] = y[i,j] * (dy[i,j] - sum_k dy[i,k] * y[i,k])`.
///
/// # Panics
///
/// Panics if `y` and `dy` shapes differ.
pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape(), "softmax backward shape mismatch");
    let mut dx = Matrix::zeros(y.rows(), y.cols());
    for i in 0..y.rows() {
        let yr = y.row(i);
        let dyr = dy.row(i);
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        let dxr = dx.row_mut(i);
        for j in 0..yr.len() {
            dxr[j] = yr[j] * (dyr[j] - dot);
        }
    }
    dx
}

/// Mean cross-entropy between row-wise logits and integer targets, with the
/// gradient computed in the same pass.
///
/// Returns `(loss, dlogits)` where `loss` is averaged over rows and
/// `dlogits` already includes the `1/rows` factor.
///
/// Rows whose target equals `ignore_index` (if provided) contribute neither
/// loss nor gradient — used for padded positions.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or any non-ignored target is
/// out of vocabulary range.
pub fn cross_entropy(
    logits: &Matrix,
    targets: &[usize],
    ignore_index: Option<usize>,
) -> (f32, Matrix) {
    assert_eq!(
        targets.len(),
        logits.rows(),
        "cross_entropy needs one target per logits row"
    );
    let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0f64;
    let mut counted = 0usize;
    for (i, &t) in targets.iter().enumerate() {
        if Some(t) == ignore_index {
            continue;
        }
        assert!(
            t < logits.cols(),
            "target {t} out of range for vocab {}",
            logits.cols()
        );
        counted += 1;
        let row = logits.row(i);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &v in row {
            sum += (v - max).exp();
        }
        let log_sum = sum.ln() + max;
        loss += f64::from(log_sum - row[t]);
        let drow = dlogits.row_mut(i);
        for (j, &v) in row.iter().enumerate() {
            drow[j] = (v - max).exp() / sum;
        }
        drow[t] -= 1.0;
    }
    if counted == 0 {
        return (0.0, dlogits);
    }
    let scale = 1.0 / counted as f32;
    dlogits.scale(scale);
    ((loss / counted as f64) as f32, dlogits)
}

/// Cache produced by [`layer_norm`] and consumed by [`layer_norm_backward`].
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    mean: Vec<f32>,
    rstd: Vec<f32>,
}

/// Layer normalization over each row, with learnable `gamma` and `beta`.
///
/// Returns the normalized output and a cache for the backward pass.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from `x.cols()`.
pub fn layer_norm(x: &Matrix, gamma: &[f32], beta: &[f32], eps: f32) -> (Matrix, LayerNormCache) {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let mut y = Matrix::zeros(x.rows(), x.cols());
    let mut cache = LayerNormCache {
        mean: Vec::with_capacity(x.rows()),
        rstd: Vec::with_capacity(x.rows()),
    };
    let n = x.cols() as f32;
    for i in 0..x.rows() {
        let row = x.row(i);
        let mean: f32 = row.iter().sum::<f32>() / n;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let rstd = 1.0 / (var + eps).sqrt();
        cache.mean.push(mean);
        cache.rstd.push(rstd);
        let yr = y.row_mut(i);
        for j in 0..row.len() {
            yr[j] = (row[j] - mean) * rstd * gamma[j] + beta[j];
        }
    }
    (y, cache)
}

/// Backward pass of [`layer_norm`].
///
/// Returns `(dx, dgamma, dbeta)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward call.
pub fn layer_norm_backward(
    x: &Matrix,
    dy: &Matrix,
    gamma: &[f32],
    cache: &LayerNormCache,
) -> (Matrix, Vec<f32>, Vec<f32>) {
    assert_eq!(x.shape(), dy.shape(), "layer_norm_backward shape mismatch");
    assert_eq!(
        cache.mean.len(),
        x.rows(),
        "cache does not match forward input"
    );
    let n = x.cols() as f32;
    let mut dx = Matrix::zeros(x.rows(), x.cols());
    let mut dgamma = vec![0.0f32; x.cols()];
    let mut dbeta = vec![0.0f32; x.cols()];
    for i in 0..x.rows() {
        let row = x.row(i);
        let dyr = dy.row(i);
        let mean = cache.mean[i];
        let rstd = cache.rstd[i];
        // xhat = (x - mean) * rstd
        let mut sum_dy_g = 0.0f32;
        let mut sum_dy_g_xhat = 0.0f32;
        for j in 0..row.len() {
            let xhat = (row[j] - mean) * rstd;
            let dyg = dyr[j] * gamma[j];
            sum_dy_g += dyg;
            sum_dy_g_xhat += dyg * xhat;
            dgamma[j] += dyr[j] * xhat;
            dbeta[j] += dyr[j];
        }
        let dxr = dx.row_mut(i);
        for j in 0..row.len() {
            let xhat = (row[j] - mean) * rstd;
            let dyg = dyr[j] * gamma[j];
            dxr[j] = rstd * (dyg - sum_dy_g / n - xhat * sum_dy_g_xhat / n);
        }
    }
    (dx, dgamma, dbeta)
}

/// GeLU activation (tanh approximation, as used by GPT-2 / Megatron-LM).
pub fn gelu(x: &Matrix) -> Matrix {
    x.map(gelu_scalar)
}

/// Backward pass of [`gelu`]: `dx = dy * gelu'(x)`.
///
/// # Panics
///
/// Panics if `x` and `dy` shapes differ.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(x.shape(), dy.shape(), "gelu backward shape mismatch");
    let mut dx = Matrix::zeros(x.rows(), x.cols());
    for (o, (xi, di)) in dx
        .as_mut_slice()
        .iter_mut()
        .zip(x.as_slice().iter().zip(dy.as_slice()))
    {
        *o = di * gelu_grad_scalar(*xi);
    }
    dx
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_COEF: f32 = 0.044_715;

/// Scalar GeLU (tanh approximation). Exposed so sparse-matrix code can map
/// it over stored blocks; `gelu_scalar(0.0) == 0.0`, which keeps padding
/// rows zero.
pub fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x)).tanh())
}

/// Derivative of [`gelu_scalar`].
pub fn gelu_grad_scalar(x: f32) -> f32 {
    let inner = SQRT_2_OVER_PI * (x + GELU_COEF * x * x * x);
    let t = inner.tanh();
    let dinner = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEF * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

/// ReLU activation.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Backward pass of [`relu`]: passes gradient where `x > 0`.
///
/// # Panics
///
/// Panics if `x` and `dy` shapes differ.
pub fn relu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(x.shape(), dy.shape(), "relu backward shape mismatch");
    let mut dx = dy.clone();
    for (o, &xi) in dx.as_mut_slice().iter_mut().zip(x.as_slice()) {
        if xi <= 0.0 {
            *o = 0.0;
        }
    }
    dx
}

/// Adds a bias row vector to every row of `x`, in place.
///
/// # Panics
///
/// Panics if `bias.len() != x.cols()`.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "bias length mismatch");
    for i in 0..x.rows() {
        for (v, b) in x.row_mut(i).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Gradient of a bias under [`add_bias`]: the column-wise sum of `dy`.
pub fn bias_backward(dy: &Matrix) -> Vec<f32> {
    let mut db = vec![0.0f32; dy.cols()];
    for i in 0..dy.rows() {
        for (d, v) in db.iter_mut().zip(dy.row(i)) {
            *d += v;
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        f: &mut dyn FnMut(&Matrix) -> f32,
        x: &Matrix,
        analytic: &Matrix,
        eps: f32,
        tol: f32,
    ) {
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut xp = x.clone();
                xp[(i, j)] += eps;
                let mut xm = x.clone();
                xm[(i, j)] -= eps;
                let num = (f(&xp) - f(&xm)) / (2.0 * eps);
                let ana = analytic[(i, j)];
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "grad mismatch at ({i},{j}): numeric {num}, analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_fn(3, 5, |i, j| (i as f32) - (j as f32) * 0.3);
        let y = softmax_rows(&x);
        for i in 0..3 {
            let s: f32 = y.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(y.row(i).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Matrix::from_fn(1, 4, |_, j| j as f32);
        let shifted = x.map(|v| v + 100.0);
        assert!(softmax_rows(&x).approx_eq(&softmax_rows(&shifted), 1e-5));
    }

    #[test]
    fn softmax_backward_matches_finite_diff() {
        let x = Matrix::from_fn(2, 4, |i, j| ((i + 1) * (j + 2)) as f32 * 0.1);
        // scalar objective: sum of y * w for fixed random-ish weights
        let w = Matrix::from_fn(2, 4, |i, j| ((i * 4 + j) as f32).sin());
        let y = softmax_rows(&x);
        let dx = softmax_rows_backward(&y, &w);
        let mut f = |m: &Matrix| {
            let y = softmax_rows(m);
            y.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        finite_diff_check(&mut f, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_diff() {
        let logits = Matrix::from_fn(3, 5, |i, j| ((i * 5 + j) as f32).cos());
        let targets = vec![1usize, 4, 0];
        let (_, dlogits) = cross_entropy(&logits, &targets, None);
        let mut f = |m: &Matrix| cross_entropy(m, &targets, None).0;
        finite_diff_check(&mut f, &logits, &dlogits, 1e-3, 2e-2);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let mut logits = Matrix::full(2, 3, -20.0);
        logits[(0, 1)] = 20.0;
        logits[(1, 2)] = 20.0;
        let (loss, _) = cross_entropy(&logits, &[1, 2], None);
        assert!(loss < 1e-3, "loss was {loss}");
    }

    #[test]
    fn cross_entropy_respects_ignore_index() {
        let logits = Matrix::from_fn(2, 3, |i, j| (i + j) as f32);
        let (loss_all, _) = cross_entropy(&logits, &[0, 1], None);
        let (loss_ign, d) = cross_entropy(&logits, &[0, 2], Some(2));
        // ignoring the second row leaves only the first row's loss
        let (loss_first, _) = cross_entropy(&logits.rows_range(0, 1), &[0], None);
        assert!((loss_ign - loss_first).abs() < 1e-6);
        assert!(d.row(1).iter().all(|&v| v == 0.0));
        assert_ne!(loss_all, loss_ign);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let x = Matrix::from_fn(4, 8, |i, j| ((i * 8 + j) as f32).sin() + 3.0);
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        let (y, _) = layer_norm(&x, &gamma, &beta, 1e-5);
        for i in 0..4 {
            let mean: f32 = y.row(i).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(i)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-4, "row {i} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {i} var {var}");
        }
    }

    #[test]
    fn layer_norm_backward_matches_finite_diff() {
        let x = Matrix::from_fn(2, 6, |i, j| ((i * 6 + j) as f32 * 0.7).sin());
        let gamma: Vec<f32> = (0..6).map(|j| 1.0 + 0.1 * j as f32).collect();
        let beta: Vec<f32> = (0..6).map(|j| 0.05 * j as f32).collect();
        let w = Matrix::from_fn(2, 6, |i, j| ((i + j) as f32).cos());
        let (_, cache) = layer_norm(&x, &gamma, &beta, 1e-5);
        let (dx, dgamma, dbeta) = layer_norm_backward(&x, &w, &gamma, &cache);
        let mut f = |m: &Matrix| {
            let (y, _) = layer_norm(m, &gamma, &beta, 1e-5);
            y.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        finite_diff_check(&mut f, &x, &dx, 1e-3, 3e-2);

        // dgamma / dbeta spot check via finite differences on gamma[2], beta[3]
        let eval = |g: &[f32], b: &[f32]| {
            let (y, _) = layer_norm(&x, g, b, 1e-5);
            y.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, c)| a * c)
                .sum::<f32>()
        };
        let mut gp = gamma.clone();
        gp[2] += 1e-3;
        let mut gm = gamma.clone();
        gm[2] -= 1e-3;
        let num = (eval(&gp, &beta) - eval(&gm, &beta)) / 2e-3;
        assert!((num - dgamma[2]).abs() < 2e-2 * (1.0 + num.abs()));
        let mut bp = beta.clone();
        bp[3] += 1e-3;
        let mut bm = beta.clone();
        bm[3] -= 1e-3;
        let num = (eval(&gamma, &bp) - eval(&gamma, &bm)) / 2e-3;
        assert!((num - dbeta[3]).abs() < 2e-2 * (1.0 + num.abs()));
    }

    #[test]
    fn gelu_matches_known_values() {
        // gelu(0) = 0, gelu(large) ~ x, gelu(-large) ~ 0
        let x = Matrix::from_vec(1, 3, vec![0.0, 10.0, -10.0]).unwrap();
        let y = gelu(&x);
        assert!(y[(0, 0)].abs() < 1e-6);
        assert!((y[(0, 1)] - 10.0).abs() < 1e-3);
        assert!(y[(0, 2)].abs() < 1e-3);
    }

    #[test]
    fn gelu_backward_matches_finite_diff() {
        let x = Matrix::from_fn(2, 5, |i, j| (i as f32) - (j as f32) * 0.4);
        let w = Matrix::from_fn(2, 5, |i, j| ((i * 5 + j) as f32).sin());
        let dx = gelu_backward(&x, &w);
        let mut f = |m: &Matrix| {
            gelu(m)
                .as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        finite_diff_check(&mut f, &x, &dx, 1e-3, 2e-2);
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = relu(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let dy = Matrix::full(1, 4, 1.0);
        let dx = relu_backward(&x, &dy);
        assert_eq!(dx.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn bias_roundtrip() {
        let mut x = Matrix::zeros(3, 2);
        add_bias(&mut x, &[1.0, -2.0]);
        assert_eq!(x.row(2), &[1.0, -2.0]);
        let db = bias_backward(&x);
        assert_eq!(db, vec![3.0, -6.0]);
    }
}

//! Property-based and seeded-corruption tests for the metadata sanitizer
//! (`Topology::validate`).
//!
//! Three claims:
//!
//! 1. every topology built through the checked constructors validates;
//! 2. corrupting any single metadata field is caught, with a distinct
//!    [`AuditError`] variant per corruption class;
//! 3. the transpose secondary index round-trips
//!    (`transposed().transposed()` restores the original encoding).

use std::mem::discriminant;

use megablocks_sparse::{AuditError, BlockCoord, BlockSize, Topology};
use proptest::prelude::*;

/// A random topology: up to a 5x5 block grid with an arbitrary subset of
/// blocks present (possibly none).
fn topology() -> impl Strategy<Value = Topology> {
    (1usize..6, 1usize..6, 1usize..4)
        .prop_flat_map(|(rows, cols, bs_exp)| {
            (
                Just(rows),
                Just(cols),
                Just(1usize << bs_exp),
                proptest::collection::vec(proptest::bool::ANY, rows * cols),
            )
        })
        .prop_map(|(rows, cols, bs, mask)| {
            let coords = mask
                .iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| BlockCoord {
                    row: i / cols,
                    col: i % cols,
                });
            Topology::from_blocks(rows, cols, coords, BlockSize::new(bs).unwrap())
                .expect("in-range, duplicate-free coordinates")
        })
}

/// Like [`topology`], but block (0, 0) is always present, so there is
/// always metadata to corrupt.
fn nonempty_topology() -> impl Strategy<Value = Topology> {
    topology().prop_map(|t| {
        if t.nnz_blocks() > 0 {
            return t;
        }
        let coords = [BlockCoord { row: 0, col: 0 }];
        Topology::from_blocks(t.block_rows(), t.block_cols(), coords, t.block_size())
            .expect("single in-range block")
    })
}

/// Rebuilds `topo` with one metadata vector replaced.
fn rebuild(
    topo: &Topology,
    row_offsets: Option<Vec<usize>>,
    col_indices: Option<Vec<usize>>,
    row_indices: Option<Vec<usize>>,
    col_offsets: Option<Vec<usize>>,
    transpose_indices: Option<Vec<usize>>,
) -> Topology {
    Topology::from_raw_parts_unchecked(
        topo.block_size(),
        topo.block_rows(),
        topo.block_cols(),
        row_offsets.unwrap_or_else(|| topo.row_offsets().to_vec()),
        col_indices.unwrap_or_else(|| topo.col_indices().to_vec()),
        row_indices.unwrap_or_else(|| topo.row_indices().to_vec()),
        col_offsets.unwrap_or_else(|| topo.col_offsets().to_vec()),
        transpose_indices.unwrap_or_else(|| topo.transpose_indices().to_vec()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn constructed_topologies_validate(topo in topology()) {
        prop_assert!(topo.validate().is_ok(), "{:?}", topo.validate());
        prop_assert!(topo.transposed().validate().is_ok());
    }

    #[test]
    fn double_transpose_roundtrips(topo in topology()) {
        let back = topo.transposed().transposed();
        prop_assert_eq!(back.shape(), topo.shape());
        prop_assert_eq!(back.row_offsets(), topo.row_offsets());
        prop_assert_eq!(back.col_indices(), topo.col_indices());
        prop_assert_eq!(back.row_indices(), topo.row_indices());
        prop_assert_eq!(back.col_offsets(), topo.col_offsets());
        prop_assert_eq!(back.transpose_indices(), topo.transpose_indices());
    }

    #[test]
    fn any_single_field_mutation_is_rejected(topo in nonempty_topology(), which in 0usize..6, bump in 1usize..4) {
        let nnz = topo.nnz_blocks();
        let corrupted = match which {
            0 => {
                // Truncate row_offsets.
                let v = topo.row_offsets()[..topo.block_rows()].to_vec();
                rebuild(&topo, Some(v), None, None, None, None)
            }
            1 => {
                // Push a column index out of range.
                let mut v = topo.col_indices().to_vec();
                v[0] = topo.block_cols() + bump - 1;
                rebuild(&topo, None, Some(v), None, None, None)
            }
            2 => {
                // Break CSR<->COO agreement.
                let mut v = topo.row_indices().to_vec();
                v[nnz - 1] += bump;
                rebuild(&topo, None, None, Some(v), None, None)
            }
            3 => {
                // Break the col_offsets endpoint.
                let mut v = topo.col_offsets().to_vec();
                *v.last_mut().unwrap() += bump;
                rebuild(&topo, None, None, None, Some(v), None)
            }
            4 => {
                // Duplicate a transpose index (kills the bijection); with a
                // single stored block fall back to an out-of-range index.
                let mut v = topo.transpose_indices().to_vec();
                if nnz >= 2 {
                    v[1] = v[0];
                } else {
                    v[0] = nnz + bump - 1;
                }
                rebuild(&topo, None, None, None, None, Some(v))
            }
            _ => {
                // Point a transpose index past the storage.
                let mut v = topo.transpose_indices().to_vec();
                v[0] = nnz + bump - 1;
                rebuild(&topo, None, None, None, None, Some(v))
            }
        };
        prop_assert!(corrupted.validate().is_err(), "mutation {which} went undetected");
    }
}

/// The acceptance scenario: seed one topology with eight deliberate
/// corruptions, one field each, and require every one to be caught with
/// the right — and pairwise distinct — [`AuditError`] variant.
#[test]
fn seeded_corruptions_each_caught_with_distinct_variant() {
    // 2x3 grid, blocks (0,0), (0,2), (1,1): row 0 has two blocks (so
    // in-row ordering is meaningful) and every metadata vector is nonempty.
    let topo = Topology::from_blocks(
        2,
        3,
        [
            BlockCoord { row: 0, col: 0 },
            BlockCoord { row: 0, col: 2 },
            BlockCoord { row: 1, col: 1 },
        ],
        BlockSize::new(2).unwrap(),
    )
    .unwrap();
    assert_eq!(topo.validate(), Ok(()));

    let cases: Vec<(&str, Topology, AuditError)> = vec![
        (
            "row_offsets truncated",
            rebuild(&topo, Some(vec![0, 2]), None, None, None, None),
            AuditError::RowOffsetsLength {
                expected: 3,
                actual: 2,
            },
        ),
        (
            "row_offsets endpoint overshoots nnz",
            rebuild(&topo, Some(vec![0, 2, 4]), None, None, None, None),
            AuditError::RowOffsetsEndpoints {
                first: 0,
                last: 4,
                nnz: 3,
            },
        ),
        (
            "row_indices disagree with the CSR offsets",
            rebuild(&topo, None, None, Some(vec![0, 0, 0]), None, None),
            AuditError::CooRowMismatch {
                slot: 2,
                coo_row: 0,
                csr_row: 1,
            },
        ),
        (
            "col_indices out of range",
            rebuild(&topo, None, Some(vec![0, 3, 1]), None, None, None),
            AuditError::ColIndexOutOfRange {
                slot: 1,
                col: 3,
                block_cols: 3,
            },
        ),
        (
            "col_indices unsorted within row 0",
            rebuild(&topo, None, Some(vec![2, 0, 1]), None, None, None),
            AuditError::ColIndicesUnsorted { row: 0, slot: 1 },
        ),
        (
            "row_indices (COO half) too short",
            rebuild(&topo, None, None, Some(vec![0, 0]), None, None),
            AuditError::CooLengthMismatch {
                expected: 3,
                actual: 2,
            },
        ),
        (
            "col_offsets endpoint undershoots nnz",
            rebuild(&topo, None, None, None, Some(vec![0, 1, 2, 2]), None),
            AuditError::ColOffsetsEndpoints {
                first: 0,
                last: 2,
                nnz: 3,
            },
        ),
        (
            "transpose_indices duplicate slot",
            rebuild(&topo, None, None, None, None, Some(vec![0, 0, 1])),
            AuditError::TransposeNotBijective { pos: 1, value: 0 },
        ),
    ];

    let mut variants = Vec::new();
    for (what, corrupted, want) in &cases {
        let got = corrupted
            .validate()
            .expect_err(&format!("{what}: corruption went undetected"));
        assert_eq!(&got, want, "{what}: wrong diagnosis");
        variants.push(discriminant(&got));
    }
    variants.sort_by_key(|d| format!("{d:?}"));
    variants.dedup();
    assert!(
        variants.len() >= 6,
        "only {} distinct AuditError variants across the seeded corruptions",
        variants.len()
    );
}

/// End-to-end: under `--features sanitize` the op entry points themselves
/// reject corrupted metadata before any kernel work runs.
#[cfg(feature = "sanitize")]
#[test]
fn sanitized_ops_reject_corrupted_topology_at_entry() {
    use megablocks_sparse::{ops, SparseError};
    use megablocks_tensor::Matrix;

    let topo = Topology::from_blocks(
        2,
        2,
        [BlockCoord { row: 0, col: 0 }, BlockCoord { row: 1, col: 1 }],
        BlockSize::new(2).unwrap(),
    )
    .unwrap();
    let bad = rebuild(&topo, None, None, None, None, Some(vec![0, 0]));
    let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f32);
    let b = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
    match ops::try_sdd(&a, &b, &bad) {
        Err(SparseError::Audit(AuditError::TransposeNotBijective { pos: 1, value: 0 })) => {}
        other => panic!("expected TransposeNotBijective at op entry, got {other:?}"),
    }
}

#[test]
fn race_detected_error_carries_bands_and_byte_range() {
    // The structured error the sanitize feature maps exec race
    // violations into; the fields and message shape are load-bearing for
    // operators grepping CI logs.
    let err = AuditError::RaceDetected {
        op: "sparse.sdd",
        first_band: 1,
        second_band: 3,
        start: 64,
        end: 96,
    };
    let msg = err.to_string();
    assert!(msg.contains("sparse.sdd"), "message: {msg}");
    assert!(msg.contains("bands 1 and 3"), "message: {msg}");
    assert!(msg.contains("64..96"), "message: {msg}");
}

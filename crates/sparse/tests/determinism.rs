//! Determinism and concurrency guarantees of the execution runtime.
//!
//! The band partition is the only parallelism-visible variable in the
//! kernels: each band owns a disjoint output range and performs its
//! reductions in a fixed order, so the *number* of bands must not change
//! a single bit of any result. These tests pin that property across
//! worker counts 1/2/8 for every sparse product and the dense gemm, and
//! then hammer the shared pool from concurrent OS threads to show
//! launches from different submitters never corrupt each other.
//! (`std::thread` here is fine: the raw-parallelism lint exempts
//! `tests/` directories.)

use megablocks_exec::scoped_parallelism;
use megablocks_sparse::{ops, BlockSize, Topology};
use megablocks_tensor::{matmul, Matrix};

/// An irregular MoE-style topology: imbalanced expert loads so bands do
/// not align with expert boundaries.
fn moe_topology() -> Topology {
    let bs = BlockSize::new(8).expect("nonzero");
    Topology::for_moe(&[64, 8, 0, 40, 16], 32, bs).expect("block-aligned counts")
}

fn inputs(topo: &Topology) -> (Matrix, Matrix) {
    let (rows, cols) = topo.shape();
    let a = Matrix::from_fn(rows, 24, |i, j| ((i * 31 + j * 7) as f32).sin());
    let b = Matrix::from_fn(24, cols, |i, j| ((i * 13 + j * 5) as f32).cos());
    (a, b)
}

/// Runs every kernel under test once and returns the raw output buffers.
fn run_all_kernels() -> Vec<Vec<f32>> {
    let topo = moe_topology();
    let (a, b) = inputs(&topo);
    let (rows, cols) = topo.shape();

    let s = ops::sdd(&a, &b, &topo);
    let d = Matrix::from_fn(cols, 24, |i, j| ((i * 3 + j * 11) as f32).sin());
    let dsd = ops::dsd(&s, &d);
    let dt = Matrix::from_fn(rows, 24, |i, j| ((i * 17 + j) as f32).cos());
    let dst_d = ops::dst_d(&s, &dt);
    let lhs = Matrix::from_fn(24, rows, |i, j| ((i + j * 29) as f32).sin());
    let dds = ops::dds(&lhs, &s);
    let gemm = matmul(&a, &b);

    let mut outputs = vec![
        s.as_slice().to_vec(),
        dsd.as_slice().to_vec(),
        dst_d.as_slice().to_vec(),
        dds.as_slice().to_vec(),
        gemm.as_slice().to_vec(),
    ];
    // Exercise the transpose-operand entry points too.
    let bt = Matrix::from_fn(cols, 24, |i, j| ((i * 13 + j * 5) as f32).cos());
    outputs.push(ops::sdd_t(&a, &bt, &topo).as_slice().to_vec());
    let wide = Matrix::from_fn(18, cols, |i, j| ((i * 9 + j * 2) as f32).sin());
    outputs.push(ops::dsd_t(&s, &wide).as_slice().to_vec());
    outputs
}

#[test]
fn outputs_are_bit_identical_across_worker_counts() {
    let reference = scoped_parallelism(1, run_all_kernels);
    for threads in [2usize, 8] {
        let got = scoped_parallelism(threads, run_all_kernels);
        assert_eq!(got.len(), reference.len());
        for (k, (g, r)) in got.iter().zip(&reference).enumerate() {
            // Bitwise equality, not approx: band count must be invisible.
            let g_bits: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
            let r_bits: Vec<u32> = r.iter().map(|v| v.to_bits()).collect();
            assert_eq!(g_bits, r_bits, "kernel #{k} diverged at {threads} threads");
        }
    }
}

#[test]
fn moe_layer_shapes_are_deterministic_too() {
    // A second topology shape (block size 4, denser) through the same
    // sweep, to rule out tuning-specific luck in the first.
    let bs = BlockSize::new(4).expect("nonzero");
    let topo = Topology::for_moe(&[20, 4, 12], 16, bs).expect("block-aligned");
    let (rows, cols) = topo.shape();
    let a = Matrix::from_fn(rows, 10, |i, j| ((i * 7 + j * 19) as f32).sin());
    let b = Matrix::from_fn(10, cols, |i, j| ((i * 23 + j * 3) as f32).cos());
    let run = || {
        let s = ops::sdd(&a, &b, &topo);
        let y = ops::dsd(&s, &Matrix::eye(cols));
        (s.as_slice().to_vec(), y.as_slice().to_vec())
    };
    let reference = scoped_parallelism(1, run);
    for threads in [2usize, 8] {
        assert_eq!(scoped_parallelism(threads, run), reference, "{threads}");
    }
}

#[test]
fn live_cancellation_contexts_do_not_perturb_results() {
    // Satellite of the cancellation layer: carrying a live (never
    // tripped) context through the `try_*_ctx` entry points must be
    // bit-invisible — same outputs as the context-free paths, at every
    // worker count. The cancellation checks sit at band boundaries and
    // panel-loop edges, never inside a reduction, so a context that
    // stays live cannot reorder a single float addition.
    let token = megablocks_exec::CancelToken::new();
    let ctx = megablocks_exec::Ctx::none().with_token(&token);
    let run_ctx = || {
        let topo = moe_topology();
        let (a, b) = inputs(&topo);
        let (_rows, cols) = topo.shape();
        let s = ops::try_sdd_ctx(&a, &b, &topo, &ctx).expect("live ctx");
        let d = Matrix::from_fn(cols, 24, |i, j| ((i * 3 + j * 11) as f32).sin());
        let dsd = ops::try_dsd_ctx(&s, &d, &ctx).expect("live ctx");
        let lhs = Matrix::from_fn(24, topo.shape().0, |i, j| ((i + j * 29) as f32).sin());
        let dds = ops::try_dds_ctx(&lhs, &s, &ctx).expect("live ctx");
        (
            s.as_slice().to_vec(),
            dsd.as_slice().to_vec(),
            dds.as_slice().to_vec(),
        )
    };
    let run_plain = || {
        let topo = moe_topology();
        let (a, b) = inputs(&topo);
        let (_rows, cols) = topo.shape();
        let s = ops::sdd(&a, &b, &topo);
        let d = Matrix::from_fn(cols, 24, |i, j| ((i * 3 + j * 11) as f32).sin());
        let dsd = ops::dsd(&s, &d);
        let lhs = Matrix::from_fn(24, topo.shape().0, |i, j| ((i + j * 29) as f32).sin());
        let dds = ops::dds(&lhs, &s);
        (
            s.as_slice().to_vec(),
            dsd.as_slice().to_vec(),
            dds.as_slice().to_vec(),
        )
    };
    let reference = scoped_parallelism(1, run_plain);
    for threads in [1usize, 2, 8] {
        let got = scoped_parallelism(threads, run_ctx);
        let to_bits = |triple: &(Vec<f32>, Vec<f32>, Vec<f32>)| {
            [
                triple.0.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
                triple.1.iter().map(|v| v.to_bits()).collect(),
                triple.2.iter().map(|v| v.to_bits()).collect(),
            ]
        };
        assert_eq!(
            to_bits(&got),
            to_bits(&reference),
            "a live context changed results at {threads} threads"
        );
    }
}

#[test]
fn concurrent_submitters_share_the_pool_safely() {
    // Many OS threads drive full kernel chains through the one shared
    // pool at the same time; every result must match the single-band
    // reference exactly. This is the cross-submitter interference test:
    // queued bands from different launches interleave on the workers.
    let reference = scoped_parallelism(1, run_all_kernels);
    let results: Vec<Vec<Vec<f32>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8).map(|_| scope.spawn(run_all_kernels)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread panicked"))
            .collect()
    });
    for (t, got) in results.iter().enumerate() {
        assert_eq!(got, &reference, "submitter thread {t} saw corruption");
    }
}

#[test]
fn pooled_buffers_start_zeroed_after_reuse() {
    // Outputs come from the workspace arena; a recycled buffer must not
    // leak its previous contents into the next kernel's zero blocks.
    let bs = BlockSize::new(4).expect("nonzero");
    let topo = Topology::for_moe(&[8, 4], 8, bs).expect("block-aligned");
    let (rows, cols) = topo.shape();
    let a = Matrix::from_fn(rows, 6, |i, j| 1.0 + (i * 6 + j) as f32);
    let b = Matrix::full(6, cols, 1.0);
    for _ in 0..4 {
        let s = ops::sdd(&a, &b, &topo);
        let dense = s.to_dense();
        for i in 0..rows {
            for j in 0..cols {
                if topo.find(i / 4, j / 4).is_none() {
                    assert_eq!(dense[(i, j)], 0.0, "stale data at ({i},{j})");
                }
            }
        }
        s.recycle();
    }
}

//! Edge-case and failure-injection tests for the block-sparse machinery.

use megablocks_sparse::{ops, BlockCoord, BlockSize, BlockSparseMatrix, SparseError, Topology};
use megablocks_tensor::{matmul, Matrix};

fn bs(n: usize) -> BlockSize {
    BlockSize::new(n).expect("nonzero")
}

#[test]
fn single_block_matrix_products() {
    let topo = Topology::from_blocks(1, 1, [BlockCoord { row: 0, col: 0 }], bs(3)).unwrap();
    let a = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f32);
    let b = Matrix::from_fn(2, 3, |i, j| (i + j) as f32);
    let s = ops::sdd(&a, &b, &topo);
    assert!(s.to_dense().approx_eq(&matmul(&a, &b), 1e-5));
    let d = Matrix::eye(3);
    assert!(ops::dsd(&s, &d).approx_eq(&s.to_dense(), 1e-6));
}

#[test]
fn block_size_one_degenerates_to_elementwise_sparsity() {
    // bs = 1 is plain unstructured sparsity; everything must still work.
    let topo = Topology::from_blocks(
        3,
        3,
        [
            BlockCoord { row: 0, col: 1 },
            BlockCoord { row: 1, col: 0 },
            BlockCoord { row: 2, col: 2 },
        ],
        bs(1),
    )
    .unwrap();
    let a = Matrix::from_fn(3, 4, |i, j| ((i + j) as f32).sin());
    let b = Matrix::from_fn(4, 3, |i, j| ((i * j) as f32).cos());
    let s = ops::sdd(&a, &b, &topo);
    let full = matmul(&a, &b);
    for i in 0..3 {
        for j in 0..3 {
            let expect = if topo.find(i, j).is_some() {
                full[(i, j)]
            } else {
                0.0
            };
            assert!((s.get(i, j) - expect).abs() < 1e-5, "({i},{j})");
        }
    }
}

#[test]
fn fully_dense_topology_equals_dense_gemm() {
    let blocks = (0..2).flat_map(|r| (0..3).map(move |c| BlockCoord { row: r, col: c }));
    let topo = Topology::from_blocks(2, 3, blocks, bs(4)).unwrap();
    assert_eq!(topo.density(), 1.0);
    let a = Matrix::from_fn(8, 5, |i, j| ((i * 3 + j) as f32).sin());
    let b = Matrix::from_fn(5, 12, |i, j| ((i + 2 * j) as f32).cos());
    let s = ops::sdd(&a, &b, &topo);
    assert!(s.to_dense().approx_eq(&matmul(&a, &b), 1e-4));
}

#[test]
fn zero_valued_blocks_are_still_structurally_nonzero() {
    // A block that happens to hold zeros participates in products (it is
    // not pruned) — structural vs numerical sparsity are distinct.
    let topo = Topology::from_blocks(1, 2, [BlockCoord { row: 0, col: 0 }], bs(2)).unwrap();
    let s = BlockSparseMatrix::zeros(&topo);
    assert_eq!(s.topology().nnz_blocks(), 1);
    let d = Matrix::full(4, 3, 1.0);
    let y = ops::dsd(&s, &d);
    assert_eq!(y.shape(), (2, 3));
    assert_eq!(y.max_abs(), 0.0);
}

#[test]
fn errors_carry_actionable_messages() {
    let e = Topology::from_blocks(1, 1, [BlockCoord { row: 3, col: 0 }], bs(2)).unwrap_err();
    assert!(e.to_string().contains("out of range"), "{e}");

    let e = Topology::for_moe(&[5], 4, bs(4)).unwrap_err();
    assert!(e.to_string().contains("not a multiple"), "{e}");

    let e = BlockSize::new(0).unwrap_err();
    assert_eq!(e, SparseError::ZeroBlockSize);
    assert!(!e.to_string().is_empty());

    let topo = Topology::for_moe(&[4], 4, bs(4)).unwrap();
    let e = BlockSparseMatrix::from_raw(&topo, vec![0.0; 3]).unwrap_err();
    assert!(e.to_string().contains("does not match"), "{e}");
}

#[test]
fn extremely_imbalanced_moe_topology() {
    // One expert takes everything, the rest take nothing — the exact
    // situation token-dropping MoEs cannot express without waste.
    let topo = Topology::for_moe(&[4096, 0, 0, 0], 256, bs(128)).unwrap();
    assert_eq!(topo.nnz_blocks(), 32 * 2);
    let (rows, cols) = topo.shape();
    assert_eq!(rows, 4096);
    assert_eq!(cols, 1024);
    // All blocks live in the first expert's column stripe.
    assert!(topo.col_indices().iter().all(|&c| c < 2));
}

#[test]
fn sdd_then_dsd_identity_roundtrip() {
    // SDD against the identity extracts the topology mask; DSD against the
    // identity reconstitutes it.
    let topo = Topology::block_diagonal(&[1, 2], &[2, 1], bs(2)).unwrap();
    let (n, m) = topo.shape();
    let x = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) as f32).sin());
    let s = ops::sdd(&x, &Matrix::eye(n), &topo);
    let back = ops::dsd(&s, &Matrix::eye(m));
    assert_eq!(back.shape(), (n, m));
    // back == mask(x) restricted to shape (n, m): check via get.
    for i in 0..n {
        for j in 0..m {
            assert!((back[(i, j)] - s.get(i, j)).abs() < 1e-6);
        }
    }
}

#[test]
fn transposed_iteration_covers_every_block_exactly_once() {
    let topo = Topology::block_diagonal(&[2, 1, 3], &[1, 2, 1], bs(2)).unwrap();
    let mut visited = vec![0usize; topo.nnz_blocks()];
    for c in 0..topo.block_cols() {
        for k in topo.col_blocks(c) {
            visited[k] += 1;
        }
    }
    assert!(visited.iter().all(|&v| v == 1), "{visited:?}");
}

#[test]
fn metadata_bytes_scale_inversely_with_block_size() {
    let small = Topology::for_moe(&[1024; 4], 1024, bs(32)).unwrap();
    let large = Topology::for_moe(&[1024; 4], 1024, bs(128)).unwrap();
    assert_eq!(small.nnz(), large.nnz());
    assert!(small.metadata_bytes() > large.metadata_bytes() * 8);
}

//! Backend-parity properties for the block-sparse products.
//!
//! Every SDD/DSD/DDS transpose variant now reduces to topology iteration
//! plus [`block_gemm`] calls, so the microkernel contract (one accumulator
//! per element, ascending-`k`, `alpha` once) makes the tiled and scalar
//! backends bit-identical on sparse products too. These properties pin
//! that across randomized irregular topologies, every transpose
//! combination, and worker counts 1/2/8.
//!
//! The backend registry is process-global; tests hold a lock while
//! flipping it (hygiene only — bit-identical backends make concurrent
//! flips unobservable).

use std::sync::{Mutex, MutexGuard};

use megablocks_exec::scoped_parallelism;
use megablocks_sparse::{ops, BlockCoord, BlockSize, BlockSparseMatrix, Topology};
use megablocks_tensor::{configure_kernel_backend, KernelBackend, Matrix, Trans};
use proptest::prelude::*;

fn backend_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn with_backend<R>(backend: KernelBackend, f: impl FnOnce() -> R) -> R {
    let prev = configure_kernel_backend(backend);
    let out = f();
    configure_kernel_backend(prev);
    out
}

fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    })
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

const COMBOS: [(Trans, Trans); 4] = [
    (Trans::N, Trans::N),
    (Trans::N, Trans::T),
    (Trans::T, Trans::N),
    (Trans::T, Trans::T),
];

/// A topology over a `block_rows x block_cols` grid whose nonzero set is
/// chosen by a bitmask (possibly empty, possibly full).
fn masked_topology(block_rows: usize, block_cols: usize, bs: usize, mask: u64) -> Topology {
    let coords = (0..block_rows * block_cols)
        .filter(|i| mask & (1 << (i % 64)) != 0)
        .map(|i| BlockCoord {
            row: i / block_cols,
            col: i % block_cols,
        });
    Topology::from_blocks(
        block_rows,
        block_cols,
        coords,
        BlockSize::new(bs).expect("nonzero block size"),
    )
    .expect("in-range coordinates")
}

/// Runs all twelve sparse product variants (4 per family) and returns
/// every output's bit pattern.
fn all_sparse_products(topo: &Topology, k: usize, n: usize, m: usize, seed: u64) -> Vec<Vec<u32>> {
    let (rows, cols) = topo.shape();
    let mut outputs = Vec::new();

    for &(op_a, op_b) in &COMBOS {
        let a = match op_a {
            Trans::N => lcg_matrix(rows, k, seed),
            Trans::T => lcg_matrix(k, rows, seed),
        };
        let b = match op_b {
            Trans::N => lcg_matrix(k, cols, seed ^ 1),
            Trans::T => lcg_matrix(cols, k, seed ^ 1),
        };
        outputs.push(bits(ops::sdd_op(&a, op_a, &b, op_b, topo).as_slice()));
    }

    // A fixed sparse operand for the DSD/DDS families, built without any
    // product so its bits cannot depend on the backend under test.
    let dense = lcg_matrix(rows, cols, seed ^ 2);
    let masked = Matrix::from_fn(rows, cols, |i, j| {
        let b = topo.block_size().get();
        if topo.find(i / b, j / b).is_some() {
            dense[(i, j)]
        } else {
            0.0
        }
    });
    let s = BlockSparseMatrix::from_dense(&masked, topo).expect("masked to topology");

    for &(op_s, op_d) in &COMBOS {
        let inner = match op_s {
            Trans::N => cols,
            Trans::T => rows,
        };
        let d = match op_d {
            Trans::N => lcg_matrix(inner, n, seed ^ 3),
            Trans::T => lcg_matrix(n, inner, seed ^ 3),
        };
        outputs.push(bits(ops::dsd_op(&s, op_s, &d, op_d).as_slice()));
    }

    for &(op_d, op_s) in &COMBOS {
        let inner = match op_s {
            Trans::N => rows,
            Trans::T => cols,
        };
        let d = match op_d {
            Trans::N => lcg_matrix(m, inner, seed ^ 4),
            Trans::T => lcg_matrix(inner, m, seed ^ 4),
        };
        outputs.push(bits(ops::dds_op(&d, op_d, &s, op_s).as_slice()));
    }

    outputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tiled and scalar agree bit-for-bit on all twelve sparse product
    /// variants over randomized irregular topologies.
    #[test]
    fn tiled_matches_scalar_on_all_sparse_products(
        block_rows in 1usize..5,
        block_cols in 1usize..5,
        bs in proptest::sample::select(vec![1usize, 2, 4, 8]),
        mask in 0u64..=u64::MAX,
        (k, n, m) in (1usize..24, 1usize..20, 1usize..20),
        seed in 0u64..1000,
    ) {
        let _guard = backend_lock();
        let topo = masked_topology(block_rows, block_cols, bs, mask);
        let scalar =
            with_backend(KernelBackend::Scalar, || all_sparse_products(&topo, k, n, m, seed));
        let tiled =
            with_backend(KernelBackend::Tiled, || all_sparse_products(&topo, k, n, m, seed));
        prop_assert_eq!(scalar, tiled);
    }

    /// Worker count never changes a bit, under either backend.
    #[test]
    fn worker_count_is_bit_invisible(seed in 0u64..100) {
        let _guard = backend_lock();
        // Large enough to clear PARALLEL_THRESHOLD so banding really
        // happens at 2 and 8 workers.
        let topo = Topology::for_moe(&[32, 8, 24], 32, BlockSize::new(8).expect("nonzero"))
            .expect("block-aligned");
        for backend in [KernelBackend::Scalar, KernelBackend::Tiled] {
            let runs: Vec<Vec<Vec<u32>>> = [1usize, 2, 8]
                .iter()
                .map(|&threads| {
                    scoped_parallelism(threads, || {
                        with_backend(backend, || all_sparse_products(&topo, 48, 40, 40, seed))
                    })
                })
                .collect();
            prop_assert_eq!(&runs[0], &runs[1], "1 vs 2 workers ({})", backend.name());
            prop_assert_eq!(&runs[0], &runs[2], "1 vs 8 workers ({})", backend.name());
        }
    }
}

/// Degenerate cases: empty topology, single 1x1 block, `k = 1`.
#[test]
fn degenerate_topologies_are_bit_identical() {
    let _guard = backend_lock();
    let cases = [
        masked_topology(2, 2, 4, 0),  // empty
        masked_topology(1, 1, 1, 1),  // single 1x1 block
        masked_topology(3, 1, 2, !0), // full single column
    ];
    for topo in &cases {
        let scalar = with_backend(KernelBackend::Scalar, || {
            all_sparse_products(topo, 1, 1, 1, 5)
        });
        let tiled = with_backend(KernelBackend::Tiled, || {
            all_sparse_products(topo, 1, 1, 1, 5)
        });
        assert_eq!(scalar, tiled, "topology shape {:?}", topo.shape());
    }
}

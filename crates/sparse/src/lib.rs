//! Block-sparse matrix formats and kernels for MegaBlocks-RS.
//!
//! This crate implements the kernel-level contribution of the MegaBlocks
//! paper (§5.1):
//!
//! * [`BlockSize`] — the sparsity block granularity. The paper selects
//!   128x128 after the CUTLASS tile study (Figure 4); here the size is a
//!   checked parameter so tests and ablations can sweep it.
//! * [`Topology`] — the sparsity pattern of a block matrix, stored in the
//!   paper's *hybrid blocked-CSR-COO* encoding (§5.1.3): BCSR row offsets +
//!   column indices, plus materialized per-block row indices so a kernel can
//!   look up a block's coordinates in O(1), plus *transpose indices*
//!   (§5.1.4) — a secondary index that enumerates the blocks in column-major
//!   order without moving any nonzero values.
//! * [`BlockSparseMatrix`] — block values laid over a shared topology.
//! * [`ops`] — the matrix products needed for dMoE training: SDD, DSD and
//!   DDS in every transposed/non-transposed combination the paper lists
//!   (SDD, DSD for forward; SDD^T, DS^TD, DSD^T, DD^TS for backward).
//!
//! Sparse-product naming follows Triton: a three-character string gives the
//! output, left input, and right input as **S**parse or **D**ense, with a
//! superscript T marking a transposed operand (here spelled `sdd_t`,
//! `dst_d`, …).
//!
//! The [`audit`] module is the correctness-tooling substrate: a metadata
//! sanitizer ([`Topology::validate`]), a write-disjointness race checker
//! for the threaded kernels, and NaN/Inf output poisoning checks. Building
//! with `--features sanitize` auto-invokes all three at every sparse-op
//! entry; without the feature the hooks compile to no-ops.
//!
//! # Example
//!
//! ```
//! use megablocks_sparse::{BlockSize, Topology, ops};
//! use megablocks_tensor::Matrix;
//!
//! // Two experts, one 4x4 block of tokens each (block_size = 4).
//! let topo = Topology::block_diagonal(&[1, 1], &[1, 1], BlockSize::new(4)?)?;
//! let x = Matrix::from_fn(8, 3, |i, j| (i + j) as f32);
//! let w = Matrix::from_fn(3, 8, |i, j| (i * 8 + j) as f32 * 0.1);
//! let h = ops::sdd(&x, &w, &topo); // sparse output on the topology
//! let y = ops::dsd(&h, &Matrix::eye(8)); // back to dense
//! assert_eq!(y.shape(), (8, 8));
//! # Ok::<(), megablocks_sparse::SparseError>(())
//! ```

#![deny(missing_docs)]

pub mod audit;
mod block;
mod error;
mod matrix;
pub mod ops;
mod topology;

pub use audit::AuditError;
pub use block::BlockSize;
pub use error::SparseError;
pub use matrix::BlockSparseMatrix;
pub use topology::{BlockCoord, Topology};

//! Metadata sanitizer and write-disjointness race checker.
//!
//! The hybrid blocked-CSR-COO encoding (§5.1.3) plus the transpose
//! secondary index (§5.1.4) store the same sparsity pattern three times
//! over; the threaded SDD/DSD/DDS kernels assume all three views agree and
//! that their per-thread output partitions never alias. This module turns
//! those assumptions into checked invariants:
//!
//! * [`Topology::validate`] proves the metadata arrays are mutually
//!   consistent, returning a structured [`AuditError`] naming the first
//!   violated invariant (see the invariant catalogue on the method).
//! * The `verify_*_partition` functions prove — *before any worker thread
//!   spawns* — that a kernel's planned per-thread work assignment is
//!   pairwise disjoint and covering, i.e. that no two threads can write the
//!   same output block and no block is skipped. This is a TSan-style
//!   guarantee the CPU substrate can establish statically from the topology
//!   alone, because every kernel derives its write set purely from the
//!   metadata.
//! * [`check_finite`] implements NaN/Inf poisoning detection on kernel
//!   outputs: a non-finite value in a freshly computed product is always a
//!   bug (inputs are finite activations and weights), so under the
//!   `sanitize` feature every sparse op scans its output before returning.
//!
//! All of it is invoked automatically at sparse-op entry when the crate is
//! built with `--features sanitize`; without the feature the hooks compile
//! to inlined no-ops (same design as the telemetry crate), so release
//! benchmarks pay nothing.

use std::fmt;

use crate::Topology;

/// Classification of a non-finite value found by output poisoning checks.
///
/// Stored instead of the raw `f32` so [`AuditError`] stays `Eq`-comparable
/// in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonFiniteKind {
    /// A NaN payload.
    NaN,
    /// Positive infinity.
    PosInf,
    /// Negative infinity.
    NegInf,
}

impl NonFiniteKind {
    /// Classifies `v`, or `None` if it is finite.
    pub fn of(v: f32) -> Option<Self> {
        if v.is_nan() {
            Some(NonFiniteKind::NaN)
        } else if v == f32::INFINITY {
            Some(NonFiniteKind::PosInf)
        } else if v == f32::NEG_INFINITY {
            Some(NonFiniteKind::NegInf)
        } else {
            None
        }
    }
}

impl fmt::Display for NonFiniteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonFiniteKind::NaN => write!(f, "NaN"),
            NonFiniteKind::PosInf => write!(f, "+inf"),
            NonFiniteKind::NegInf => write!(f, "-inf"),
        }
    }
}

/// A violated topology or kernel-partition invariant.
///
/// Each variant names one invariant from the catalogue in
/// [`Topology::validate`]; the payload pinpoints the offending entry so a
/// corrupted field is diagnosable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// `row_offsets` must have exactly `block_rows + 1` entries.
    RowOffsetsLength {
        /// `block_rows + 1`.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// `row_offsets[0]` must be 0 and `row_offsets[block_rows]` must equal
    /// the number of stored blocks.
    RowOffsetsEndpoints {
        /// First entry.
        first: usize,
        /// Last entry.
        last: usize,
        /// Stored block count (`col_indices.len()`).
        nnz: usize,
    },
    /// `row_offsets` must be monotone nondecreasing.
    RowOffsetsNotMonotone {
        /// Block row at which the offsets decrease.
        row: usize,
        /// `row_offsets[row]`.
        prev: usize,
        /// `row_offsets[row + 1]`.
        next: usize,
    },
    /// Every stored column index must be `< block_cols`.
    ColIndexOutOfRange {
        /// Storage slot of the offending block.
        slot: usize,
        /// The out-of-range column.
        col: usize,
        /// Number of block columns.
        block_cols: usize,
    },
    /// Column indices within one block row must be strictly increasing
    /// (sorted, no duplicates) — BCSR storage order.
    ColIndicesUnsorted {
        /// The block row whose indices are out of order.
        row: usize,
        /// Storage slot of the first out-of-order entry.
        slot: usize,
    },
    /// The COO half must be exactly as long as the BCSR column list.
    CooLengthMismatch {
        /// `col_indices.len()`.
        expected: usize,
        /// `row_indices.len()`.
        actual: usize,
    },
    /// CSR↔COO agreement: the materialized `row_indices[k]` must equal the
    /// block row that `row_offsets` assigns to storage slot `k`.
    CooRowMismatch {
        /// The storage slot.
        slot: usize,
        /// What the COO half claims.
        coo_row: usize,
        /// What the CSR offsets imply.
        csr_row: usize,
    },
    /// `col_offsets` must have exactly `block_cols + 1` entries.
    ColOffsetsLength {
        /// `block_cols + 1`.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// `col_offsets[0]` must be 0 and `col_offsets[block_cols]` must equal
    /// the number of stored blocks.
    ColOffsetsEndpoints {
        /// First entry.
        first: usize,
        /// Last entry.
        last: usize,
        /// Stored block count.
        nnz: usize,
    },
    /// `col_offsets` must be monotone nondecreasing.
    ColOffsetsNotMonotone {
        /// Block column at which the offsets decrease.
        col: usize,
        /// `col_offsets[col]`.
        prev: usize,
        /// `col_offsets[col + 1]`.
        next: usize,
    },
    /// `transpose_indices` must be exactly one entry per stored block.
    TransposeLengthMismatch {
        /// Stored block count.
        expected: usize,
        /// `transpose_indices.len()`.
        actual: usize,
    },
    /// Every transpose index must name a valid storage slot.
    TransposeOutOfRange {
        /// Position in `transpose_indices`.
        pos: usize,
        /// The out-of-range value.
        value: usize,
        /// Stored block count.
        nnz: usize,
    },
    /// `transpose_indices` must be a bijection on storage slots (no slot
    /// listed twice).
    TransposeNotBijective {
        /// Position of the second occurrence.
        pos: usize,
        /// The duplicated storage slot.
        value: usize,
    },
    /// Transpose-index agreement with `col_offsets`: the blocks listed in
    /// `transpose_indices[col_offsets[c]..col_offsets[c+1]]` must all live
    /// in block column `c`.
    TransposeColumnMismatch {
        /// Position in `transpose_indices`.
        pos: usize,
        /// The storage slot found there.
        slot: usize,
        /// The column that `col_offsets` assigns to this position.
        expected_col: usize,
        /// The column the slot actually lives in.
        actual_col: usize,
    },
    /// Within one block column, `transpose_indices` must enumerate blocks
    /// in ascending row order (column-major traversal order).
    TransposeRowsUnsorted {
        /// The block column.
        col: usize,
        /// Position in `transpose_indices` of the out-of-order entry.
        pos: usize,
    },
    /// A kernel output contained a non-finite value (NaN/Inf poisoning).
    NonFinite {
        /// The kernel that produced the value.
        op: &'static str,
        /// Flat index into the output storage.
        index: usize,
        /// What kind of non-finite value.
        kind: NonFiniteKind,
    },
    /// Two worker threads were assigned the same output block.
    PartitionOverlap {
        /// The kernel whose launch plan failed.
        op: &'static str,
        /// The doubly-owned storage slot.
        slot: usize,
        /// Block row of the slot (usize::MAX if the slot is out of range).
        row: usize,
        /// Block column of the slot.
        col: usize,
        /// First thread that claimed it.
        first_thread: usize,
        /// Second thread that claimed it.
        second_thread: usize,
    },
    /// A storage slot was assigned to no worker thread.
    PartitionGap {
        /// The kernel whose launch plan failed.
        op: &'static str,
        /// The orphaned storage slot.
        slot: usize,
        /// Block row of the slot.
        row: usize,
        /// Block column of the slot.
        col: usize,
    },
    /// A planned band partition of output rows does not tile the output.
    BandPartitionBroken {
        /// The kernel whose launch plan failed.
        op: &'static str,
        /// Total rows that must be covered.
        rows: usize,
        /// Rows actually covered by the planned bands.
        covered: usize,
    },
    /// The dynamic race sanitizer caught two bands writing the same
    /// output bytes during a launch (or one band escaping its claimed
    /// interval, reported with `first_band == second_band`).
    RaceDetected {
        /// The kernel whose launch raced.
        op: &'static str,
        /// Lower-numbered band of the racing pair.
        first_band: usize,
        /// Higher-numbered band of the racing pair.
        second_band: usize,
        /// First overlapping output byte.
        start: usize,
        /// One past the last overlapping output byte.
        end: usize,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::RowOffsetsLength { expected, actual } => write!(
                f,
                "audit: row_offsets has {actual} entries, expected {expected}"
            ),
            AuditError::RowOffsetsEndpoints { first, last, nnz } => write!(
                f,
                "audit: row_offsets endpoints ({first}, {last}) must be (0, {nnz})"
            ),
            AuditError::RowOffsetsNotMonotone { row, prev, next } => write!(
                f,
                "audit: row_offsets decreases at block row {row} ({prev} -> {next})"
            ),
            AuditError::ColIndexOutOfRange {
                slot,
                col,
                block_cols,
            } => write!(
                f,
                "audit: col_indices[{slot}] = {col} out of range for {block_cols} block columns"
            ),
            AuditError::ColIndicesUnsorted { row, slot } => write!(
                f,
                "audit: col_indices not strictly increasing within block row {row} (slot {slot})"
            ),
            AuditError::CooLengthMismatch { expected, actual } => write!(
                f,
                "audit: row_indices has {actual} entries, col_indices has {expected}"
            ),
            AuditError::CooRowMismatch {
                slot,
                coo_row,
                csr_row,
            } => write!(
                f,
                "audit: CSR/COO disagree at slot {slot}: row_indices says {coo_row}, row_offsets imply {csr_row}"
            ),
            AuditError::ColOffsetsLength { expected, actual } => write!(
                f,
                "audit: col_offsets has {actual} entries, expected {expected}"
            ),
            AuditError::ColOffsetsEndpoints { first, last, nnz } => write!(
                f,
                "audit: col_offsets endpoints ({first}, {last}) must be (0, {nnz})"
            ),
            AuditError::ColOffsetsNotMonotone { col, prev, next } => write!(
                f,
                "audit: col_offsets decreases at block column {col} ({prev} -> {next})"
            ),
            AuditError::TransposeLengthMismatch { expected, actual } => write!(
                f,
                "audit: transpose_indices has {actual} entries, expected {expected}"
            ),
            AuditError::TransposeOutOfRange { pos, value, nnz } => write!(
                f,
                "audit: transpose_indices[{pos}] = {value} is not a storage slot (nnz = {nnz})"
            ),
            AuditError::TransposeNotBijective { pos, value } => write!(
                f,
                "audit: transpose_indices repeats storage slot {value} at position {pos}"
            ),
            AuditError::TransposeColumnMismatch {
                pos,
                slot,
                expected_col,
                actual_col,
            } => write!(
                f,
                "audit: transpose_indices[{pos}] = {slot} lies in block column {actual_col}, but col_offsets place position {pos} in column {expected_col}"
            ),
            AuditError::TransposeRowsUnsorted { col, pos } => write!(
                f,
                "audit: transpose_indices rows not ascending within block column {col} (position {pos})"
            ),
            AuditError::NonFinite { op, index, kind } => write!(
                f,
                "audit: {op} produced {kind} at output index {index}"
            ),
            AuditError::PartitionOverlap {
                op,
                slot,
                row,
                col,
                first_thread,
                second_thread,
            } => write!(
                f,
                "audit: {op} launch plan assigns block ({row}, {col}) (slot {slot}) to both thread {first_thread} and thread {second_thread}"
            ),
            AuditError::PartitionGap { op, slot, row, col } => write!(
                f,
                "audit: {op} launch plan leaves block ({row}, {col}) (slot {slot}) unassigned"
            ),
            AuditError::BandPartitionBroken { op, rows, covered } => write!(
                f,
                "audit: {op} band partition covers {covered} of {rows} output rows"
            ),
            AuditError::RaceDetected {
                op,
                first_band,
                second_band,
                start,
                end,
            } => write!(
                f,
                "audit: {op} race detected — bands {first_band} and {second_band} both wrote output bytes {start}..{end}"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

impl Topology {
    /// Checks every invariant the kernels rely on, returning the first
    /// violation as a structured [`AuditError`].
    ///
    /// The invariant catalogue (each maps to a distinct error variant):
    ///
    /// 1. `row_offsets` has length `block_rows + 1`, starts at 0, ends at
    ///    `nnz_blocks`, and is monotone nondecreasing.
    /// 2. Every `col_indices[k]` is in `0..block_cols`, and indices are
    ///    strictly increasing within each block row (row-major storage
    ///    order, no duplicate blocks).
    /// 3. CSR↔COO agreement: `row_indices` has one entry per stored block
    ///    and `row_indices[k]` equals the block row that `row_offsets`
    ///    assigns to slot `k`.
    /// 4. `col_offsets` has length `block_cols + 1`, starts at 0, ends at
    ///    `nnz_blocks`, and is monotone nondecreasing.
    /// 5. `transpose_indices` is a bijection on storage slots, consistent
    ///    with `col_offsets` (position `p` in column `c`'s range names a
    ///    block in column `c`) and ascending in row within each column —
    ///    i.e. a correct column-major secondary index.
    ///
    /// Topologies built through the checked constructors always pass; this
    /// exists to catch in-memory corruption and to guard
    /// [`Topology::from_raw_parts_unchecked`] inputs in tests and tools.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), AuditError> {
        let t = &*self.inner;
        let nnz = t.col_indices.len();

        // (1) row_offsets shape, endpoints, monotonicity.
        if t.row_offsets.len() != t.block_rows + 1 {
            return Err(AuditError::RowOffsetsLength {
                expected: t.block_rows + 1,
                actual: t.row_offsets.len(),
            });
        }
        let first = t.row_offsets[0];
        let last = t.row_offsets[t.block_rows];
        if first != 0 || last != nnz {
            return Err(AuditError::RowOffsetsEndpoints { first, last, nnz });
        }
        for r in 0..t.block_rows {
            if t.row_offsets[r] > t.row_offsets[r + 1] {
                return Err(AuditError::RowOffsetsNotMonotone {
                    row: r,
                    prev: t.row_offsets[r],
                    next: t.row_offsets[r + 1],
                });
            }
        }

        // (2) col_indices bounds + strict ordering within each row.
        for (slot, &c) in t.col_indices.iter().enumerate() {
            if c >= t.block_cols {
                return Err(AuditError::ColIndexOutOfRange {
                    slot,
                    col: c,
                    block_cols: t.block_cols,
                });
            }
        }
        for r in 0..t.block_rows {
            let lo = t.row_offsets[r];
            let hi = t.row_offsets[r + 1];
            for k in lo + 1..hi {
                if t.col_indices[k - 1] >= t.col_indices[k] {
                    return Err(AuditError::ColIndicesUnsorted { row: r, slot: k });
                }
            }
        }

        // (3) COO half: length and CSR agreement.
        if t.row_indices.len() != nnz {
            return Err(AuditError::CooLengthMismatch {
                expected: nnz,
                actual: t.row_indices.len(),
            });
        }
        for r in 0..t.block_rows {
            for k in t.row_offsets[r]..t.row_offsets[r + 1] {
                if t.row_indices[k] != r {
                    return Err(AuditError::CooRowMismatch {
                        slot: k,
                        coo_row: t.row_indices[k],
                        csr_row: r,
                    });
                }
            }
        }

        // (4) col_offsets shape, endpoints, monotonicity.
        if t.col_offsets.len() != t.block_cols + 1 {
            return Err(AuditError::ColOffsetsLength {
                expected: t.block_cols + 1,
                actual: t.col_offsets.len(),
            });
        }
        let first = t.col_offsets[0];
        let last = t.col_offsets[t.block_cols];
        if first != 0 || last != nnz {
            return Err(AuditError::ColOffsetsEndpoints { first, last, nnz });
        }
        for c in 0..t.block_cols {
            if t.col_offsets[c] > t.col_offsets[c + 1] {
                return Err(AuditError::ColOffsetsNotMonotone {
                    col: c,
                    prev: t.col_offsets[c],
                    next: t.col_offsets[c + 1],
                });
            }
        }

        // (5) transpose_indices: bijection + column agreement + row order.
        if t.transpose_indices.len() != nnz {
            return Err(AuditError::TransposeLengthMismatch {
                expected: nnz,
                actual: t.transpose_indices.len(),
            });
        }
        let mut seen = vec![false; nnz];
        for (pos, &slot) in t.transpose_indices.iter().enumerate() {
            if slot >= nnz {
                return Err(AuditError::TransposeOutOfRange {
                    pos,
                    value: slot,
                    nnz,
                });
            }
            if seen[slot] {
                return Err(AuditError::TransposeNotBijective { pos, value: slot });
            }
            seen[slot] = true;
        }
        for c in 0..t.block_cols {
            let lo = t.col_offsets[c];
            let hi = t.col_offsets[c + 1];
            for pos in lo..hi {
                let slot = t.transpose_indices[pos];
                let actual_col = t.col_indices[slot];
                if actual_col != c {
                    return Err(AuditError::TransposeColumnMismatch {
                        pos,
                        slot,
                        expected_col: c,
                        actual_col,
                    });
                }
            }
            for pos in lo + 1..hi {
                let prev = t.row_indices[t.transpose_indices[pos - 1]];
                let next = t.row_indices[t.transpose_indices[pos]];
                if prev >= next {
                    return Err(AuditError::TransposeRowsUnsorted { col: c, pos });
                }
            }
        }

        Ok(())
    }
}

/// Looks up block coordinates for diagnostics, tolerating out-of-range
/// slots (corrupt plans may reference slots past the storage).
fn coord_of(topo: &Topology, slot: usize) -> (usize, usize) {
    if slot < topo.nnz_blocks() {
        let c = topo.coord(slot);
        (c.row, c.col)
    } else {
        (usize::MAX, usize::MAX)
    }
}

/// Proves a planned assignment of storage slots to worker threads is
/// pairwise disjoint and covering.
///
/// `owners` yields, per thread, the storage slots that thread will write.
/// Every slot in `0..topo.nnz_blocks()` must be claimed by exactly one
/// thread; the first violation is reported with the offending block's
/// coordinates.
///
/// # Errors
///
/// [`AuditError::PartitionOverlap`] if two threads claim one slot,
/// [`AuditError::PartitionGap`] if a slot is unclaimed, and
/// [`AuditError::TransposeOutOfRange`]-style coordinates (`usize::MAX`) if
/// a claimed slot does not exist.
pub fn verify_slot_partition<I, S>(
    op: &'static str,
    topo: &Topology,
    owners: I,
) -> Result<(), AuditError>
where
    I: IntoIterator<Item = S>,
    S: IntoIterator<Item = usize>,
{
    let nnz = topo.nnz_blocks();
    // usize::MAX marks "unclaimed"; thread ids are well below that.
    let mut owner = vec![usize::MAX; nnz];
    for (thread, slots) in owners.into_iter().enumerate() {
        for slot in slots {
            let (row, col) = coord_of(topo, slot);
            if slot >= nnz {
                return Err(AuditError::PartitionGap { op, slot, row, col });
            }
            if owner[slot] != usize::MAX {
                return Err(AuditError::PartitionOverlap {
                    op,
                    slot,
                    row,
                    col,
                    first_thread: owner[slot],
                    second_thread: thread,
                });
            }
            owner[slot] = thread;
        }
    }
    if let Some(slot) = owner.iter().position(|&o| o == usize::MAX) {
        let (row, col) = coord_of(topo, slot);
        return Err(AuditError::PartitionGap { op, slot, row, col });
    }
    Ok(())
}

/// Verifies the SDD launch plan: thread `i` owns the contiguous slot range
/// `[i * blocks_per_thread, min((i + 1) * blocks_per_thread, nnz))`.
///
/// Contiguous ranges are disjoint by arithmetic, so what this actually
/// proves is that the ranges *cover* the storage and that no two distinct
/// logical blocks share a storage slot — i.e. the COO metadata the workers
/// read names each output block exactly once.
///
/// # Errors
///
/// See [`verify_slot_partition`].
pub fn verify_sdd_partition(
    topo: &Topology,
    threads: usize,
    blocks_per_thread: usize,
) -> Result<(), AuditError> {
    let nnz = topo.nnz_blocks();
    let ranges = (0..threads.max(1)).map(|i| {
        let lo = (i * blocks_per_thread).min(nnz);
        let hi = ((i + 1) * blocks_per_thread).min(nnz);
        lo..hi
    });
    verify_slot_partition("sdd", topo, ranges)
}

/// Verifies the DSD launch plan: output row-bands are grouped by block row
/// (`transposed = false`) or block column (`transposed = true`), each group
/// owned by exactly one thread, and the per-group slot lists drawn from the
/// CSR offsets (or the transpose secondary index) consume every stored
/// block exactly once.
///
/// This is the check that catches a corrupted `transpose_indices` *before*
/// the transposed-traversal kernels read through it in parallel.
///
/// # Errors
///
/// [`AuditError::BandPartitionBroken`] if the thread bands do not tile the
/// group space; otherwise see [`verify_slot_partition`].
pub fn verify_dsd_partition(
    topo: &Topology,
    transposed: bool,
    threads: usize,
    groups_per_thread: usize,
) -> Result<(), AuditError> {
    let groups = if transposed {
        topo.block_cols()
    } else {
        topo.block_rows()
    };
    let op: &'static str = if transposed { "dst_d" } else { "dsd" };
    let covered = (threads.max(1) * groups_per_thread).min(groups);
    if threads.max(1) * groups_per_thread < groups {
        return Err(AuditError::BandPartitionBroken {
            op,
            rows: groups,
            covered,
        });
    }
    let offsets = if transposed {
        topo.col_offsets()
    } else {
        topo.row_offsets()
    };
    // Guard against corrupted offsets before slicing per-group ranges.
    if offsets.len() != groups + 1 {
        return Err(AuditError::BandPartitionBroken {
            op,
            rows: groups,
            covered: 0,
        });
    }
    let group_slots = |g: usize| -> Vec<usize> {
        let lo = offsets[g].min(topo.nnz_blocks());
        let hi = offsets[g + 1].min(topo.nnz_blocks());
        if transposed {
            topo.transpose_indices()[lo..hi].to_vec()
        } else {
            (lo..hi).collect()
        }
    };
    let owners = (0..threads.max(1)).map(|i| {
        let lo = (i * groups_per_thread).min(groups);
        let hi = ((i + 1) * groups_per_thread).min(groups);
        (lo..hi).flat_map(&group_slots).collect::<Vec<_>>()
    });
    verify_slot_partition(op, topo, owners)
}

/// Scans a kernel output for NaN/Inf poisoning.
///
/// # Errors
///
/// Returns [`AuditError::NonFinite`] naming the first poisoned index.
pub fn check_finite(op: &'static str, data: &[f32]) -> Result<(), AuditError> {
    for (index, &v) in data.iter().enumerate() {
        if let Some(kind) = NonFiniteKind::of(v) {
            return Err(AuditError::NonFinite { op, index, kind });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCoord, BlockSize};

    fn bs(n: usize) -> BlockSize {
        BlockSize::new(n).unwrap()
    }

    fn sample() -> Topology {
        Topology::from_blocks(
            3,
            4,
            [
                BlockCoord { row: 0, col: 0 },
                BlockCoord { row: 0, col: 3 },
                BlockCoord { row: 1, col: 1 },
                BlockCoord { row: 2, col: 0 },
                BlockCoord { row: 2, col: 2 },
            ],
            bs(2),
        )
        .unwrap()
    }

    #[test]
    fn constructed_topologies_validate() {
        assert_eq!(sample().validate(), Ok(()));
        assert_eq!(
            Topology::for_moe(&[128, 0, 256], 256, bs(128))
                .unwrap()
                .validate(),
            Ok(())
        );
        assert_eq!(
            Topology::from_blocks(2, 2, [], bs(4)).unwrap().validate(),
            Ok(())
        );
    }

    #[test]
    fn slot_partition_detects_overlap_and_gap() {
        let topo = sample();
        // Slot 1 claimed twice.
        let err = verify_slot_partition("sdd", &topo, [vec![0, 1], vec![1, 2, 3, 4]]).unwrap_err();
        assert_eq!(
            err,
            AuditError::PartitionOverlap {
                op: "sdd",
                slot: 1,
                row: 0,
                col: 3,
                first_thread: 0,
                second_thread: 1,
            }
        );
        // Slot 4 orphaned.
        let err = verify_slot_partition("sdd", &topo, [vec![0, 1], vec![2, 3]]).unwrap_err();
        assert!(matches!(err, AuditError::PartitionGap { slot: 4, .. }));
    }

    #[test]
    fn kernel_launch_plans_verify() {
        let topo = sample();
        for threads in 1..6 {
            let bpt = topo.nnz_blocks().div_ceil(threads);
            assert_eq!(verify_sdd_partition(&topo, threads, bpt), Ok(()));
        }
        for threads in 1..5 {
            let gpt = topo.block_rows().div_ceil(threads);
            assert_eq!(verify_dsd_partition(&topo, false, threads, gpt), Ok(()));
            let gpt = topo.block_cols().div_ceil(threads);
            assert_eq!(verify_dsd_partition(&topo, true, threads, gpt), Ok(()));
        }
    }

    #[test]
    fn corrupt_transpose_index_fails_dsd_plan() {
        let good = sample();
        let t = &good.inner;
        // Swap two transpose entries across columns: still a bijection, but
        // the column-major traversal now visits a block of the wrong column.
        let mut ti = t.transpose_indices.clone();
        ti.swap(0, t.transpose_indices.len() - 1);
        let bad = Topology::from_raw_parts_unchecked(
            t.block_size,
            t.block_rows,
            t.block_cols,
            t.row_offsets.clone(),
            t.col_indices.clone(),
            t.row_indices.clone(),
            t.col_offsets.clone(),
            ti,
        );
        assert!(bad.validate().is_err());
        // The partition proof still passes (it only needs a bijection) —
        // validate() is the stronger check; together they cover both.
        assert_eq!(
            verify_dsd_partition(&bad, true, 2, bad.block_cols().div_ceil(2)),
            Ok(())
        );
    }

    #[test]
    fn check_finite_classifies() {
        assert_eq!(check_finite("sdd", &[0.0, 1.5, -2.0]), Ok(()));
        assert_eq!(
            check_finite("sdd", &[0.0, f32::NAN]),
            Err(AuditError::NonFinite {
                op: "sdd",
                index: 1,
                kind: NonFiniteKind::NaN
            })
        );
        assert_eq!(
            check_finite("dsd", &[f32::NEG_INFINITY]),
            Err(AuditError::NonFinite {
                op: "dsd",
                index: 0,
                kind: NonFiniteKind::NegInf
            })
        );
    }
}

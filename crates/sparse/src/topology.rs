//! Sparsity topology in the hybrid blocked-CSR-COO encoding (§5.1.3) with
//! transpose indices (§5.1.4).
//!
//! A [`Topology`] is constructed once per MoE layer invocation from the
//! router's expert assignments (the `make_topology` step in the paper's
//! Figure 6 pseudo-code) and then shared by all six matrix products of the
//! layer's forward and backward passes, amortizing its construction cost
//! exactly as §5.2 describes.

use std::sync::Arc;

use megablocks_telemetry as telemetry;

use crate::{BlockSize, SparseError};

/// Coordinates of one nonzero block inside the block grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockCoord {
    /// Block row (row index divided by block size).
    pub row: usize,
    /// Block column (column index divided by block size).
    pub col: usize,
}

/// The sparsity pattern of a block-sparse matrix.
///
/// Encodes which blocks of the block grid are nonzero using the paper's
/// hybrid format:
///
/// * **BCSR half** — `row_offsets` (length `block_rows + 1`) and
///   `col_indices` (one per nonzero block, ordered row-major). This makes
///   row-wise iteration (needed by DSD and DDS^T) trivial.
/// * **COO half** — `row_indices`, the materialized block-row of every
///   nonzero block. With it a parallel worker assigned block `k` finds its
///   output coordinates with two O(1) loads instead of a search through
///   `row_offsets`; the paper adds this so SDD launches exactly one
///   threadblock per nonzero block (§5.1.3).
/// * **Transpose indices** — `transpose_indices` lists the storage positions
///   of the nonzero blocks in column-major order and `col_offsets` delimits
///   each block column. Together they let kernels iterate the matrix in
///   transposed order through one layer of indirection without transposing
///   any values (§5.1.4) — the "secondary index" of the paper's database
///   analogy.
///
/// Topologies are immutable and cheaply cloneable (`Arc` internals), so one
/// topology built from the router output is shared across all products in a
/// training step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    pub(crate) inner: Arc<TopologyInner>,
}

#[derive(Debug, PartialEq, Eq)]
pub(crate) struct TopologyInner {
    pub(crate) block_size: BlockSize,
    pub(crate) block_rows: usize,
    pub(crate) block_cols: usize,
    pub(crate) row_offsets: Vec<usize>,
    pub(crate) col_indices: Vec<usize>,
    pub(crate) row_indices: Vec<usize>,
    pub(crate) col_offsets: Vec<usize>,
    pub(crate) transpose_indices: Vec<usize>,
}

impl Topology {
    /// Builds a topology from an explicit list of nonzero block coordinates.
    ///
    /// The coordinate list does not need to be sorted; storage order is
    /// normalized to row-major (BCSR order).
    ///
    /// # Errors
    ///
    /// Returns an error if any coordinate is out of range or duplicated.
    pub fn from_blocks(
        block_rows: usize,
        block_cols: usize,
        blocks: impl IntoIterator<Item = BlockCoord>,
        block_size: BlockSize,
    ) -> Result<Self, SparseError> {
        // Every construction path (block_diagonal, for_moe) funnels through
        // here, so this one span times all topology builds.
        let _span = telemetry::span("sparse.topology_build");
        let mut coords: Vec<BlockCoord> = blocks.into_iter().collect();
        telemetry::counter("sparse.topology_blocks").add(coords.len() as u64);
        for c in &coords {
            if c.row >= block_rows || c.col >= block_cols {
                return Err(SparseError::CoordOutOfRange {
                    row: c.row,
                    col: c.col,
                    block_rows,
                    block_cols,
                });
            }
        }
        coords.sort_unstable();
        if let Some(w) = coords.windows(2).find(|w| w[0] == w[1]) {
            return Err(SparseError::DuplicateBlock {
                row: w[0].row,
                col: w[0].col,
            });
        }

        // BCSR half: row offsets + column indices in row-major order.
        let mut row_offsets = vec![0usize; block_rows + 1];
        for c in &coords {
            row_offsets[c.row + 1] += 1;
        }
        for r in 0..block_rows {
            row_offsets[r + 1] += row_offsets[r];
        }
        let col_indices: Vec<usize> = coords.iter().map(|c| c.col).collect();
        // COO half: materialized row index per block (paper §5.1.3).
        let row_indices: Vec<usize> = coords.iter().map(|c| c.row).collect();

        // Transpose indices (paper §5.1.4): storage positions sorted
        // column-major, plus per-column offsets.
        let mut col_offsets = vec![0usize; block_cols + 1];
        for c in &coords {
            col_offsets[c.col + 1] += 1;
        }
        for c in 0..block_cols {
            col_offsets[c + 1] += col_offsets[c];
        }
        let mut order: Vec<usize> = (0..coords.len()).collect();
        order.sort_unstable_by_key(|&k| (coords[k].col, coords[k].row));
        let transpose_indices = order;

        Ok(Self {
            inner: Arc::new(TopologyInner {
                block_size,
                block_rows,
                block_cols,
                row_offsets,
                col_indices,
                row_indices,
                col_offsets,
                transpose_indices,
            }),
        })
    }

    /// Builds the block-diagonal topology of Figure 3C: expert `e` owns a
    /// rectangle of `rows_blocks[e]` x `cols_blocks[e]` nonzero blocks, with
    /// experts laid out corner-to-corner down the diagonal.
    ///
    /// For a dMoE FFN layer, `rows_blocks[e]` is the number of (padded)
    /// token blocks routed to expert `e` and `cols_blocks[e]` is
    /// `ffn_hidden_size / block_size` (equal across experts today; the
    /// variable-sized-expert generalization the paper mentions falls out for
    /// free).
    ///
    /// # Errors
    ///
    /// Returns an error if the slice lengths differ.
    pub fn block_diagonal(
        rows_blocks: &[usize],
        cols_blocks: &[usize],
        block_size: BlockSize,
    ) -> Result<Self, SparseError> {
        if rows_blocks.len() != cols_blocks.len() {
            return Err(SparseError::Mismatch(format!(
                "block_diagonal needs one column count per expert: got {} row counts, {} col counts",
                rows_blocks.len(),
                cols_blocks.len()
            )));
        }
        let block_rows: usize = rows_blocks.iter().sum();
        let block_cols: usize = cols_blocks.iter().sum();
        let mut blocks = Vec::new();
        let mut r0 = 0usize;
        let mut c0 = 0usize;
        for (&rb, &cb) in rows_blocks.iter().zip(cols_blocks) {
            for r in r0..r0 + rb {
                for c in c0..c0 + cb {
                    blocks.push(BlockCoord { row: r, col: c });
                }
            }
            r0 += rb;
            c0 += cb;
        }
        Self::from_blocks(block_rows, block_cols, blocks, block_size)
    }

    /// Builds the MoE topology from padded per-expert token counts — the
    /// `make_topology(indices)` step of the paper's Figure 6.
    ///
    /// `padded_tokens_per_expert[e]` must already be padded to a multiple of
    /// the block size (see `padded_gather` in `megablocks-core`);
    /// `ffn_hidden_size` must be a multiple of the block size.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Unaligned`] if any count violates block
    /// alignment.
    pub fn for_moe(
        padded_tokens_per_expert: &[usize],
        ffn_hidden_size: usize,
        block_size: BlockSize,
    ) -> Result<Self, SparseError> {
        let bs = block_size.get();
        if !ffn_hidden_size.is_multiple_of(bs) {
            return Err(SparseError::Unaligned {
                what: "ffn_hidden_size",
                value: ffn_hidden_size,
                block_size: bs,
            });
        }
        let mut rows_blocks = Vec::with_capacity(padded_tokens_per_expert.len());
        for &t in padded_tokens_per_expert {
            if t % bs != 0 {
                return Err(SparseError::Unaligned {
                    what: "padded tokens per expert",
                    value: t,
                    block_size: bs,
                });
            }
            rows_blocks.push(t / bs);
        }
        let cols_blocks = vec![ffn_hidden_size / bs; padded_tokens_per_expert.len()];
        Self::block_diagonal(&rows_blocks, &cols_blocks, block_size)
    }

    /// The block size.
    pub fn block_size(&self) -> BlockSize {
        self.inner.block_size
    }

    /// Number of block rows.
    pub fn block_rows(&self) -> usize {
        self.inner.block_rows
    }

    /// Number of block columns.
    pub fn block_cols(&self) -> usize {
        self.inner.block_cols
    }

    /// Element-level shape `(rows, cols)` of matrices over this topology.
    pub fn shape(&self) -> (usize, usize) {
        let bs = self.inner.block_size.get();
        (self.inner.block_rows * bs, self.inner.block_cols * bs)
    }

    /// Number of nonzero blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.inner.col_indices.len()
    }

    /// Number of nonzero elements (`nnz_blocks * block area`).
    pub fn nnz(&self) -> usize {
        self.nnz_blocks() * self.inner.block_size.area()
    }

    /// Fraction of the block grid that is nonzero (0.0 for an empty grid).
    pub fn density(&self) -> f64 {
        let total = self.inner.block_rows * self.inner.block_cols;
        if total == 0 {
            return 0.0;
        }
        self.nnz_blocks() as f64 / total as f64
    }

    /// BCSR row offsets (length `block_rows + 1`).
    pub fn row_offsets(&self) -> &[usize] {
        &self.inner.row_offsets
    }

    /// Block-column index of each nonzero block, in storage (row-major)
    /// order.
    pub fn col_indices(&self) -> &[usize] {
        &self.inner.col_indices
    }

    /// Materialized block-row index of each nonzero block (the COO half of
    /// the hybrid encoding, §5.1.3).
    pub fn row_indices(&self) -> &[usize] {
        &self.inner.row_indices
    }

    /// Per-block-column offsets into [`Topology::transpose_indices`]
    /// (length `block_cols + 1`).
    pub fn col_offsets(&self) -> &[usize] {
        &self.inner.col_offsets
    }

    /// Storage positions of the nonzero blocks in column-major order — the
    /// transpose secondary index of §5.1.4.
    pub fn transpose_indices(&self) -> &[usize] {
        &self.inner.transpose_indices
    }

    /// Coordinates of the block stored at position `k`.
    ///
    /// This is the O(1) lookup the hybrid encoding exists for: a worker
    /// assigned storage slot `k` reads `row_indices[k]` and
    /// `col_indices[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.nnz_blocks()`.
    pub fn coord(&self, k: usize) -> BlockCoord {
        BlockCoord {
            row: self.inner.row_indices[k],
            col: self.inner.col_indices[k],
        }
    }

    /// Looks up the storage position of block `(row, col)` via binary search
    /// within the row, or `None` if that block is zero.
    pub fn find(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.inner.block_rows {
            return None;
        }
        let lo = self.inner.row_offsets[row];
        let hi = self.inner.row_offsets[row + 1];
        self.inner.col_indices[lo..hi]
            .binary_search(&col)
            .ok()
            .map(|i| lo + i)
    }

    /// Iterates the storage positions of the nonzero blocks in block row
    /// `row`, in ascending column order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.block_rows()`.
    pub fn row_blocks(&self, row: usize) -> std::ops::Range<usize> {
        assert!(row < self.inner.block_rows, "block row {row} out of range");
        self.inner.row_offsets[row]..self.inner.row_offsets[row + 1]
    }

    /// Iterates the storage positions of the nonzero blocks in block column
    /// `col`, in ascending row order, through the transpose index.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.block_cols()`.
    pub fn col_blocks(&self, col: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(
            col < self.inner.block_cols,
            "block column {col} out of range"
        );
        let lo = self.inner.col_offsets[col];
        let hi = self.inner.col_offsets[col + 1];
        self.inner.transpose_indices[lo..hi].iter().copied()
    }

    /// The topology of the transposed matrix, built by swapping the roles of
    /// the two index halves. Used by the explicit-transposition ablation.
    ///
    /// # Panics
    ///
    /// Panics if this topology's metadata is internally inconsistent (never
    /// for a topology built through the checked constructors).
    pub fn transposed(&self) -> Topology {
        self.try_transposed().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Topology::transposed`].
    ///
    /// # Errors
    ///
    /// Returns an error if the mirrored coordinates are rejected — only
    /// possible for a topology with corrupted metadata (e.g. one built with
    /// [`Topology::from_raw_parts_unchecked`]).
    pub fn try_transposed(&self) -> Result<Topology, SparseError> {
        let blocks = (0..self.nnz_blocks()).map(|k| {
            let c = self.coord(k);
            BlockCoord {
                row: c.col,
                col: c.row,
            }
        });
        Topology::from_blocks(
            self.inner.block_cols,
            self.inner.block_rows,
            blocks,
            self.inner.block_size,
        )
    }

    /// Assembles a topology directly from raw metadata arrays, skipping
    /// every consistency check.
    ///
    /// This exists for the audit tooling only: seeded-corruption tests and
    /// the sanitizer's own mutation tests need to build *invalid* topologies
    /// to prove [`Topology::validate`] catches them. Production code must
    /// use [`Topology::from_blocks`] / [`Topology::block_diagonal`] /
    /// [`Topology::for_moe`], which establish the invariants by
    /// construction.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts_unchecked(
        block_size: BlockSize,
        block_rows: usize,
        block_cols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<usize>,
        row_indices: Vec<usize>,
        col_offsets: Vec<usize>,
        transpose_indices: Vec<usize>,
    ) -> Self {
        Self {
            inner: Arc::new(TopologyInner {
                block_size,
                block_rows,
                block_cols,
                row_offsets,
                col_indices,
                row_indices,
                col_offsets,
                transpose_indices,
            }),
        }
    }

    /// Bytes of metadata this topology stores (for the paper's claim that
    /// metadata overhead is negligible at large block sizes).
    pub fn metadata_bytes(&self) -> usize {
        (self.inner.row_offsets.len()
            + self.inner.col_indices.len()
            + self.inner.row_indices.len()
            + self.inner.col_offsets.len()
            + self.inner.transpose_indices.len())
            * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(n: usize) -> BlockSize {
        BlockSize::new(n).unwrap()
    }

    #[test]
    fn from_blocks_normalizes_order() {
        let topo = Topology::from_blocks(
            2,
            3,
            [
                BlockCoord { row: 1, col: 0 },
                BlockCoord { row: 0, col: 2 },
                BlockCoord { row: 0, col: 0 },
            ],
            bs(4),
        )
        .unwrap();
        assert_eq!(topo.nnz_blocks(), 3);
        assert_eq!(topo.row_offsets(), &[0, 2, 3]);
        assert_eq!(topo.col_indices(), &[0, 2, 0]);
        assert_eq!(topo.row_indices(), &[0, 0, 1]);
    }

    #[test]
    fn duplicate_blocks_rejected() {
        let err = Topology::from_blocks(
            2,
            2,
            [BlockCoord { row: 0, col: 1 }, BlockCoord { row: 0, col: 1 }],
            bs(2),
        );
        assert_eq!(err, Err(SparseError::DuplicateBlock { row: 0, col: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Topology::from_blocks(1, 1, [BlockCoord { row: 0, col: 1 }], bs(2));
        assert!(matches!(err, Err(SparseError::CoordOutOfRange { .. })));
    }

    #[test]
    fn transpose_indices_enumerate_column_major() {
        // Pattern (x = nonzero):
        //   x . x
        //   x x .
        let topo = Topology::from_blocks(
            2,
            3,
            [
                BlockCoord { row: 0, col: 0 },
                BlockCoord { row: 0, col: 2 },
                BlockCoord { row: 1, col: 0 },
                BlockCoord { row: 1, col: 1 },
            ],
            bs(2),
        )
        .unwrap();
        // Storage (row-major): (0,0)=0, (0,2)=1, (1,0)=2, (1,1)=3.
        // Column-major order: (0,0), (1,0), (1,1), (0,2) -> storage 0,2,3,1.
        assert_eq!(topo.transpose_indices(), &[0, 2, 3, 1]);
        assert_eq!(topo.col_offsets(), &[0, 2, 3, 4]);
        assert_eq!(topo.col_blocks(0).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(topo.col_blocks(2).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn find_and_coord_agree() {
        let topo = Topology::block_diagonal(&[2, 1], &[1, 2], bs(4)).unwrap();
        for k in 0..topo.nnz_blocks() {
            let c = topo.coord(k);
            assert_eq!(topo.find(c.row, c.col), Some(k));
        }
        assert_eq!(topo.find(0, 2), None); // off-diagonal block is zero
        assert_eq!(topo.find(99, 0), None);
    }

    #[test]
    fn block_diagonal_shapes() {
        let topo = Topology::block_diagonal(&[3, 1, 2], &[2, 2, 2], bs(8)).unwrap();
        assert_eq!(topo.block_rows(), 6);
        assert_eq!(topo.block_cols(), 6);
        assert_eq!(topo.nnz_blocks(), 3 * 2 + 2 + 2 * 2);
        assert_eq!(topo.shape(), (48, 48));
        let density = topo.density();
        assert!(density > 0.0 && density < 1.0);
    }

    #[test]
    fn for_moe_validates_alignment() {
        assert!(Topology::for_moe(&[128, 256], 512, bs(128)).is_ok());
        assert!(matches!(
            Topology::for_moe(&[100], 512, bs(128)),
            Err(SparseError::Unaligned { .. })
        ));
        assert!(matches!(
            Topology::for_moe(&[128], 500, bs(128)),
            Err(SparseError::Unaligned { .. })
        ));
    }

    #[test]
    fn for_moe_allows_zero_token_experts() {
        let topo = Topology::for_moe(&[128, 0, 256], 256, bs(128)).unwrap();
        assert_eq!(topo.block_rows(), 3);
        assert_eq!(topo.block_cols(), 6);
        assert_eq!(topo.nnz_blocks(), 2 + 2 * 2);
    }

    #[test]
    fn transposed_roundtrip() {
        let topo = Topology::block_diagonal(&[2, 1], &[1, 3], bs(2)).unwrap();
        let t = topo.transposed();
        assert_eq!(t.block_rows(), topo.block_cols());
        assert_eq!(t.block_cols(), topo.block_rows());
        assert_eq!(t.nnz_blocks(), topo.nnz_blocks());
        assert_eq!(t.transposed(), topo);
    }

    #[test]
    fn metadata_is_small_relative_to_values() {
        let topo = Topology::for_moe(&[1024; 8], 1024, bs(128)).unwrap();
        assert!(topo.metadata_bytes() * 10 < topo.nnz() * 4);
    }

    #[test]
    fn empty_topology_is_fine() {
        let topo = Topology::from_blocks(3, 3, [], bs(4)).unwrap();
        assert_eq!(topo.nnz_blocks(), 0);
        assert_eq!(topo.density(), 0.0);
        assert_eq!(topo.row_blocks(2), 0..0);
    }
}

//! Block-sparse matrix values over a shared [`Topology`].

use megablocks_tensor::Matrix;

use crate::{SparseError, Topology};

/// A block-sparse `f32` matrix.
///
/// Values are stored as dense `block_size x block_size` tiles, one per
/// nonzero block, in the topology's storage (row-major / BCSR) order. Each
/// tile is itself row-major. The topology — including the transpose
/// secondary index — is shared, so cloning or transposed iteration never
/// copies values.
///
/// # Example
///
/// ```
/// use megablocks_sparse::{BlockSize, BlockSparseMatrix, Topology};
/// use megablocks_tensor::Matrix;
///
/// let topo = Topology::block_diagonal(&[1, 1], &[1, 1], BlockSize::new(2)?)?;
/// let dense = Matrix::from_fn(4, 4, |i, j| if i / 2 == j / 2 { 1.0 } else { 0.0 });
/// let sparse = BlockSparseMatrix::from_dense(&dense, &topo)?;
/// assert_eq!(sparse.to_dense(), dense);
/// # Ok::<(), megablocks_sparse::SparseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSparseMatrix {
    topo: Topology,
    data: Vec<f32>,
}

impl BlockSparseMatrix {
    /// Creates a zero-valued matrix over `topo`.
    pub fn zeros(topo: &Topology) -> Self {
        Self {
            topo: topo.clone(),
            data: vec![0.0; topo.nnz()],
        }
    }

    /// Creates a zero-valued matrix over `topo` backed by the execution
    /// runtime's per-thread workspace arena. Pair with
    /// [`BlockSparseMatrix::recycle`] on short-lived values so kernels
    /// reuse storage across calls.
    pub fn pooled_zeros(topo: &Topology) -> Self {
        Self {
            topo: topo.clone(),
            data: megablocks_exec::workspace::take_zeroed(topo.nnz()),
        }
    }

    /// Returns this matrix's block storage to the execution runtime's
    /// workspace arena for reuse by a later pooled allocation.
    pub fn recycle(self) {
        megablocks_exec::workspace::recycle(self.data);
    }

    /// Creates a matrix over `topo` from raw block data in storage order.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Mismatch`] if `data.len() != topo.nnz()`.
    pub fn from_raw(topo: &Topology, data: Vec<f32>) -> Result<Self, SparseError> {
        if data.len() != topo.nnz() {
            return Err(SparseError::Mismatch(format!(
                "data length {} does not match topology nnz {}",
                data.len(),
                topo.nnz()
            )));
        }
        Ok(Self {
            topo: topo.clone(),
            data,
        })
    }

    /// Extracts the blocks of `dense` selected by `topo`.
    ///
    /// Values of `dense` outside the topology are discarded (they are
    /// structurally zero in the result).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Mismatch`] if `dense.shape() != topo.shape()`.
    pub fn from_dense(dense: &Matrix, topo: &Topology) -> Result<Self, SparseError> {
        if dense.shape() != topo.shape() {
            return Err(SparseError::Mismatch(format!(
                "dense shape {:?} does not match topology shape {:?}",
                dense.shape(),
                topo.shape()
            )));
        }
        let bs = topo.block_size().get();
        let mut out = Self::zeros(topo);
        for k in 0..topo.nnz_blocks() {
            let c = topo.coord(k);
            let block = out.block_mut(k);
            for bi in 0..bs {
                let src = dense.row(c.row * bs + bi);
                block[bi * bs..(bi + 1) * bs].copy_from_slice(&src[c.col * bs..(c.col + 1) * bs]);
            }
        }
        Ok(out)
    }

    /// Materializes the full dense matrix (zeros outside the topology).
    pub fn to_dense(&self) -> Matrix {
        let (rows, cols) = self.topo.shape();
        let bs = self.topo.block_size().get();
        let mut out = Matrix::zeros(rows, cols);
        for k in 0..self.topo.nnz_blocks() {
            let c = self.topo.coord(k);
            let block = self.block(k);
            for bi in 0..bs {
                let dst = out.row_mut(c.row * bs + bi);
                dst[c.col * bs..(c.col + 1) * bs].copy_from_slice(&block[bi * bs..(bi + 1) * bs]);
            }
        }
        out
    }

    /// The shared sparsity topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Element-level shape.
    pub fn shape(&self) -> (usize, usize) {
        self.topo.shape()
    }

    /// Values of block `k` (storage order), row-major within the block.
    ///
    /// # Panics
    ///
    /// Panics if `k >= topology().nnz_blocks()`.
    pub fn block(&self, k: usize) -> &[f32] {
        let area = self.topo.block_size().area();
        &self.data[k * area..(k + 1) * area]
    }

    /// Mutable values of block `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= topology().nnz_blocks()`.
    pub fn block_mut(&mut self, k: usize) -> &mut [f32] {
        let area = self.topo.block_size().area();
        &mut self.data[k * area..(k + 1) * area]
    }

    /// All block values in storage order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of all block values in storage order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Applies `f` to every stored value in place (structural zeros are
    /// untouched — beware of activations with `f(0) != 0`, which are only
    /// correct on stored blocks, matching the paper's kernels).
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a new matrix with `f` applied to every stored value.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Element-wise `self += alpha * other`. Both operands must share a
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics if the topologies differ.
    pub fn axpy(&mut self, alpha: f32, other: &BlockSparseMatrix) {
        assert_eq!(self.topo, other.topo, "axpy requires identical topologies");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Reads element `(i, j)`, returning 0.0 for structural zeros.
    ///
    /// This is a convenience for tests — kernels never use element access.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the matrix.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        let (rows, cols) = self.shape();
        assert!(i < rows && j < cols, "index ({i},{j}) out of bounds");
        let bs = self.topo.block_size().get();
        match self.topo.find(i / bs, j / bs) {
            None => 0.0,
            Some(k) => self.block(k)[(i % bs) * bs + (j % bs)],
        }
    }

    /// Explicitly materializes the transposed matrix: transposed topology
    /// and transposed (copied) block values.
    ///
    /// This is the *expensive* alternative that transpose indices avoid
    /// (§5.1.4); it exists for the ablation benchmark and as a correctness
    /// oracle for the transposed-iteration kernels.
    ///
    /// # Panics
    ///
    /// Panics if the topology's metadata is internally inconsistent (never
    /// for a topology built through the checked constructors).
    pub fn explicit_transpose(&self) -> BlockSparseMatrix {
        self.try_explicit_transpose()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`BlockSparseMatrix::explicit_transpose`].
    ///
    /// # Errors
    ///
    /// Returns an error if the topology's metadata is inconsistent — the
    /// mirrored block of a stored block is missing from the transposed
    /// topology, which only corrupted metadata can cause.
    pub fn try_explicit_transpose(&self) -> Result<BlockSparseMatrix, SparseError> {
        let bs = self.topo.block_size().get();
        let tt = self.topo.try_transposed()?;
        let mut out = BlockSparseMatrix::zeros(&tt);
        for k in 0..self.topo.nnz_blocks() {
            let c = self.topo.coord(k);
            let kt = tt.find(c.col, c.row).ok_or_else(|| {
                SparseError::Mismatch(format!(
                    "explicit_transpose: mirrored block ({}, {}) missing from transposed topology",
                    c.col, c.row
                ))
            })?;
            let src = self.block(k);
            let dst = out.block_mut(kt);
            for bi in 0..bs {
                for bj in 0..bs {
                    dst[bj * bs + bi] = src[bi * bs + bj];
                }
            }
        }
        Ok(out)
    }

    /// The largest absolute stored value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCoord, BlockSize};

    fn topo_2x3() -> Topology {
        Topology::from_blocks(
            2,
            3,
            [
                BlockCoord { row: 0, col: 0 },
                BlockCoord { row: 0, col: 2 },
                BlockCoord { row: 1, col: 1 },
            ],
            BlockSize::new(2).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn dense_roundtrip_preserves_topology_values() {
        let topo = topo_2x3();
        let dense = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f32);
        let sparse = BlockSparseMatrix::from_dense(&dense, &topo).unwrap();
        let back = sparse.to_dense();
        // On-topology values survive; off-topology are zeroed.
        for i in 0..4 {
            for j in 0..6 {
                let on = topo.find(i / 2, j / 2).is_some();
                assert_eq!(back[(i, j)], if on { dense[(i, j)] } else { 0.0 });
            }
        }
    }

    #[test]
    fn get_reads_through_blocks() {
        let topo = topo_2x3();
        let dense = Matrix::from_fn(4, 6, |i, j| (i + 10 * j) as f32);
        let sparse = BlockSparseMatrix::from_dense(&dense, &topo).unwrap();
        assert_eq!(sparse.get(0, 0), 0.0 + 0.0);
        assert_eq!(sparse.get(1, 5), 1.0 + 50.0);
        assert_eq!(sparse.get(0, 3), 0.0); // structural zero
    }

    #[test]
    fn from_raw_checks_length() {
        let topo = topo_2x3();
        assert!(BlockSparseMatrix::from_raw(&topo, vec![0.0; 5]).is_err());
        assert!(BlockSparseMatrix::from_raw(&topo, vec![0.0; topo.nnz()]).is_ok());
    }

    #[test]
    fn from_dense_rejects_wrong_shape() {
        let topo = topo_2x3();
        assert!(BlockSparseMatrix::from_dense(&Matrix::zeros(4, 4), &topo).is_err());
    }

    #[test]
    fn explicit_transpose_matches_dense_transpose() {
        let topo = topo_2x3();
        let dense = Matrix::from_fn(4, 6, |i, j| ((i * 7 + j * 3) as f32).sin());
        let sparse = BlockSparseMatrix::from_dense(&dense, &topo).unwrap();
        let t = sparse.explicit_transpose();
        assert!(t.to_dense().approx_eq(&sparse.to_dense().transpose(), 1e-6));
    }

    #[test]
    fn map_and_axpy() {
        let topo = topo_2x3();
        let mut a = BlockSparseMatrix::from_raw(&topo, vec![1.0; topo.nnz()]).unwrap();
        let b = a.map(|v| v * 3.0);
        a.axpy(2.0, &b);
        assert!(a.as_slice().iter().all(|&v| (v - 7.0).abs() < 1e-6));
    }
}

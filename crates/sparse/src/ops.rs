//! Block-sparse matrix products: SDD, DSD and DDS with all transpose
//! variants.
//!
//! These are the six products an MoE FFN layer needs (paper §5.1): the
//! forward pass computes SDD then DSD; the backward pass computes SDD^T and
//! DS^TD for the second layer and DSD^T and DD^TS for the first layer.
//!
//! Implementation notes, mirroring the paper's kernel design:
//!
//! * **SDD** parallelizes over nonzero output blocks. Each worker finds its
//!   block's coordinates with two O(1) metadata loads (`row_indices[k]`,
//!   `col_indices[k]`) — the hybrid blocked-CSR-COO encoding of §5.1.3 —
//!   instead of launching a dense grid of mostly-idle workers or searching
//!   `row_offsets`.
//! * **DSD / DDS with a transposed sparse operand** iterate the sparse
//!   matrix in column-major order through the *transpose indices* secondary
//!   index (§5.1.4); no nonzero values are moved. The explicit-transpose
//!   alternative ([`dst_d_explicit`]) exists as the ablation baseline.
//! * Every kernel launches through the shared execution runtime
//!   ([`megablocks_exec::LaunchPlan`]): disjoint output bands dispatched to
//!   a persistent worker pool, standing in for threadblocks over output
//!   tiles.
//! * Within a band, each op reduces to topology iteration plus
//!   [`block_gemm`] calls on strided [`PanelView`]s — the arithmetic lives
//!   in `megablocks_tensor::kernel`'s microkernel backends, shared with
//!   dense GEMM, so sparse and dense products are bit-identical per element
//!   regardless of the selected backend (`MEGABLOCKS_KERNEL`).

use megablocks_exec as exec;
use megablocks_telemetry as telemetry;
use megablocks_tensor::{block_gemm, Matrix, PanelView, Trans};

use crate::{BlockSparseMatrix, SparseError, Topology};

/// Sanitizer hooks, auto-invoked at every op entry under
/// `--features sanitize` (metadata validation, write-disjointness proof of
/// the launch plan, NaN/Inf output poisoning). Without the feature each
/// hook is an inlined `Ok(())`, so the hot paths carry no cost — mirroring
/// the telemetry design.
#[cfg(feature = "sanitize")]
mod sanitize {
    use crate::{audit, SparseError, Topology};

    pub(super) fn topology(topo: &Topology) -> Result<(), SparseError> {
        topo.validate().map_err(SparseError::Audit)
    }

    pub(super) fn sdd_partition(
        topo: &Topology,
        threads: usize,
        blocks_per_thread: usize,
    ) -> Result<(), SparseError> {
        audit::verify_sdd_partition(topo, threads, blocks_per_thread).map_err(SparseError::Audit)
    }

    pub(super) fn dsd_partition(
        topo: &Topology,
        transposed: bool,
        threads: usize,
        groups_per_thread: usize,
    ) -> Result<(), SparseError> {
        audit::verify_dsd_partition(topo, transposed, threads, groups_per_thread)
            .map_err(SparseError::Audit)
    }

    pub(super) fn output(op: &'static str, data: &[f32]) -> Result<(), SparseError> {
        audit::check_finite(op, data).map_err(SparseError::Audit)
    }

    pub(super) fn race(
        result: Result<(), megablocks_exec::RaceViolation>,
    ) -> Result<(), SparseError> {
        use megablocks_exec::RaceViolation;
        result.map_err(|violation| {
            SparseError::Audit(match violation {
                RaceViolation::Overlap {
                    op,
                    first_band,
                    second_band,
                    start,
                    end,
                } => audit::AuditError::RaceDetected {
                    op,
                    first_band,
                    second_band,
                    start,
                    end,
                },
                // A claim escape has one offending band; report it as a
                // degenerate pair so the error shape stays uniform.
                RaceViolation::ClaimMismatch {
                    op, band, recorded, ..
                } => audit::AuditError::RaceDetected {
                    op,
                    first_band: band,
                    second_band: band,
                    start: recorded.0,
                    end: recorded.1,
                },
            })
        })
    }
}

#[cfg(not(feature = "sanitize"))]
mod sanitize {
    use crate::{SparseError, Topology};

    #[inline(always)]
    pub(super) fn topology(_topo: &Topology) -> Result<(), SparseError> {
        Ok(())
    }

    #[inline(always)]
    pub(super) fn sdd_partition(
        _topo: &Topology,
        _threads: usize,
        _blocks_per_thread: usize,
    ) -> Result<(), SparseError> {
        Ok(())
    }

    #[inline(always)]
    pub(super) fn dsd_partition(
        _topo: &Topology,
        _transposed: bool,
        _threads: usize,
        _groups_per_thread: usize,
    ) -> Result<(), SparseError> {
        Ok(())
    }

    #[inline(always)]
    pub(super) fn output(_op: &'static str, _data: &[f32]) -> Result<(), SparseError> {
        Ok(())
    }

    #[inline(always)]
    pub(super) fn race(
        result: Result<(), megablocks_exec::RaceViolation>,
    ) -> Result<(), SparseError> {
        let _ = result;
        Ok(())
    }
}

/// Maps a launch result into the sparse error space: race violations go
/// through the sanitizer mapping (an inlined no-op without the feature)
/// and cancellation flavors — explicit cancel, expired deadline, watchdog
/// stall, pool shed — surface as [`SparseError::Cancelled`], carrying the
/// [`exec::CancelKind`] upper layers classify retryability by.
fn launch_result(result: Result<(), exec::ExecError>) -> Result<(), SparseError> {
    match result {
        Ok(()) => Ok(()),
        Err(exec::ExecError::Race(violation)) => sanitize::race(Err(violation)),
        Err(exec::ExecError::Cancelled { op }) => Err(SparseError::Cancelled {
            op,
            kind: exec::CancelKind::Cancelled,
        }),
        Err(exec::ExecError::DeadlineExceeded { op }) => Err(SparseError::Cancelled {
            op,
            kind: exec::CancelKind::DeadlineExceeded,
        }),
        Err(exec::ExecError::Overloaded { op }) => Err(SparseError::Cancelled {
            op,
            kind: exec::CancelKind::Overloaded,
        }),
    }
}

/// Work below this many f32 multiply-adds stays single-banded: even a
/// pooled launch costs a queue round-trip per band.
const PARALLEL_THRESHOLD: usize = 1 << 16;

/// Telemetry name for an SDD transpose combination. The named public
/// wrappers cover `sdd` / `sdd_t`; the remaining combinations get a
/// two-letter op suffix.
fn sdd_variant(op_a: Trans, op_b: Trans) -> &'static str {
    match (op_a, op_b) {
        (Trans::N, Trans::N) => "sparse.sdd",
        (Trans::N, Trans::T) => "sparse.sdd_t",
        (Trans::T, Trans::N) => "sparse.sdd_tn",
        (Trans::T, Trans::T) => "sparse.sdd_tt",
    }
}

/// Telemetry name for a DSD transpose combination.
fn dsd_variant(op_s: Trans, op_d: Trans) -> &'static str {
    match (op_s, op_d) {
        (Trans::N, Trans::N) => "sparse.dsd",
        (Trans::N, Trans::T) => "sparse.dsd_t",
        (Trans::T, Trans::N) => "sparse.dst_d",
        (Trans::T, Trans::T) => "sparse.dst_d_t",
    }
}

/// Telemetry name for a DDS transpose combination.
fn dds_variant(op_d: Trans, op_s: Trans) -> &'static str {
    match (op_d, op_s) {
        (Trans::N, Trans::N) => "sparse.dds",
        (Trans::N, Trans::T) => "sparse.dds_t",
        (Trans::T, Trans::N) => "sparse.ddt_s",
        (Trans::T, Trans::T) => "sparse.ddt_s_t",
    }
}

/// Generates a named product wrapper and its `try_` twin: each pair fixes
/// the transpositions of one of the generic fallible kernels
/// ([`try_sdd_op`] / [`try_dsd_op`] / [`try_dds_op`]) and differs only in
/// whether a shape mismatch panics or surfaces as a [`SparseError`].
macro_rules! product_wrappers {
    ($(
        $(#[$meta:meta])*
        $name:ident / $try_name:ident: ($($arg:ident: $ty:ty),*) -> $ret:ty
            = $target:ident($($call:expr),*);
    )*) => {$(
        $(#[$meta])*
        ///
        /// # Panics
        ///
        /// Panics if the logical shapes are incompatible.
        pub fn $name($($arg: $ty),*) -> $ret {
            $target($($call),*).unwrap_or_else(|e| panic!("{e}"))
        }

        #[doc = concat!("Fallible form of [`", stringify!($name), "`].")]
        ///
        /// # Errors
        ///
        /// Returns [`SparseError::Mismatch`] on incompatible shapes (and
        /// [`SparseError::Audit`] on sanitizer violations under `sanitize`).
        pub fn $try_name($($arg: $ty),*) -> Result<$ret, SparseError> {
            $target($($call),*)
        }
    )*};
}

// ---------------------------------------------------------------------------
// SDD: sparse output = dense x dense
// ---------------------------------------------------------------------------

product_wrappers! {
    /// SDD: computes `out = a * b` restricted to the nonzero blocks of
    /// `topo`.
    ///
    /// This is the first product in the dMoE forward pass (Figure 6, line
    /// 22): `a` holds the permuted tokens, `b` the concatenated expert
    /// weights, and the output's block-diagonal topology assigns each token
    /// block to its expert's weight columns.
    sdd / try_sdd: (a: &Matrix, b: &Matrix, topo: &Topology) -> BlockSparseMatrix
        = try_sdd_op(a, Trans::N, b, Trans::N, topo);

    /// SDD^T: computes `out = a * b^T` restricted to `topo` — the
    /// second-layer data gradient of a dMoE FFN (paper §5.1).
    sdd_t / try_sdd_t: (a: &Matrix, b: &Matrix, topo: &Topology) -> BlockSparseMatrix
        = try_sdd_op(a, Trans::N, b, Trans::T, topo);
}

/// Deadline-aware form of [`try_sdd`]: the forward-pass SDD run under
/// `ctx`, additionally returning [`SparseError::Cancelled`] when the
/// context trips or the launch is shed under overload.
///
/// # Errors
///
/// Everything [`try_sdd`] returns, plus [`SparseError::Cancelled`].
pub fn try_sdd_ctx(
    a: &Matrix,
    b: &Matrix,
    topo: &Topology,
    ctx: &exec::Ctx,
) -> Result<BlockSparseMatrix, SparseError> {
    try_sdd_op_ctx(a, Trans::N, b, Trans::N, topo, ctx)
}

/// General SDD with transpose control over both dense inputs:
/// `out = op_a(a) * op_b(b)` restricted to the nonzero blocks of `topo`.
///
/// # Panics
///
/// Panics if `op_a(a)` is not `M x K`, `op_b(b)` is not `K x N`, where
/// `(M, N) = topo.shape()`.
pub fn sdd_op(
    a: &Matrix,
    op_a: Trans,
    b: &Matrix,
    op_b: Trans,
    topo: &Topology,
) -> BlockSparseMatrix {
    try_sdd_op(a, op_a, b, op_b, topo).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`sdd_op`]: shape mismatches surface as
/// [`SparseError::Mismatch`] instead of panicking.
///
/// # Errors
///
/// Returns [`SparseError::Mismatch`] if `op_a(a)` is not `M x K`, `op_b(b)`
/// is not `K x N`, where `(M, N) = topo.shape()`.
pub fn try_sdd_op(
    a: &Matrix,
    op_a: Trans,
    b: &Matrix,
    op_b: Trans,
    topo: &Topology,
) -> Result<BlockSparseMatrix, SparseError> {
    try_sdd_op_ctx(a, op_a, b, op_b, topo, &exec::Ctx::none())
}

/// Deadline-aware form of [`try_sdd_op`]: the product runs under `ctx`,
/// checked at entry, at every band boundary and inside the tiled
/// microkernel's panel loop. An empty context ([`exec::Ctx::none`])
/// inherits the submitting thread's ambient context, making this exactly
/// [`try_sdd_op`].
///
/// # Errors
///
/// Everything [`try_sdd_op`] returns, plus [`SparseError::Cancelled`]
/// when the context trips (or the launch is shed under overload).
pub fn try_sdd_op_ctx(
    a: &Matrix,
    op_a: Trans,
    b: &Matrix,
    op_b: Trans,
    topo: &Topology,
    ctx: &exec::Ctx,
) -> Result<BlockSparseMatrix, SparseError> {
    let (m, n) = topo.shape();
    let (am, ak) = logical(a, op_a);
    let (bk, bn) = logical(b, op_b);
    if am != m {
        return Err(SparseError::Mismatch(format!(
            "sdd: op_a(a) has {am} rows, topology expects {m}"
        )));
    }
    if bn != n {
        return Err(SparseError::Mismatch(format!(
            "sdd: op_b(b) has {bn} cols, topology expects {n}"
        )));
    }
    if ak != bk {
        return Err(SparseError::Mismatch(format!(
            "sdd: inner dimensions differ ({ak} vs {bk})"
        )));
    }
    let k = ak;
    let bs = topo.block_size().get();

    let variant = sdd_variant(op_a, op_b);
    let _span = telemetry::span(variant);
    if let Some(kind) = ctx.status() {
        return Err(SparseError::Cancelled { op: variant, kind });
    }
    sanitize::topology(topo)?;

    let mut out = BlockSparseMatrix::pooled_zeros(topo);
    let nnz = topo.nnz_blocks();
    telemetry::counter_with("sparse.blocks", variant).add(nnz as u64);
    telemetry::counter_with("sparse.flops", variant)
        .add(2 * nnz as u64 * bs as u64 * bs as u64 * k as u64);
    if nnz == 0 || k == 0 {
        return Ok(out);
    }

    let threads = exec::parallelism_for(nnz * bs * bs * k, PARALLEL_THRESHOLD).min(nnz);
    let area = topo.block_size().area();
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let (_, a_cols) = a.shape();
    let (_, b_cols) = b.shape();
    let row_indices = topo.row_indices();
    let col_indices = topo.col_indices();

    // Each worker owns a contiguous range of nonzero blocks; coordinates
    // come straight from the COO metadata (no row-offset search). A block
    // at (r, c) is the `bs x bs` product of A's row panel `r` and B's
    // column panel `c` — transposition is a stride swap on the views, and
    // the selected microkernel backend does the arithmetic.
    let compute = |blocks: &mut [f32], k0: usize| {
        for (slot, block) in blocks.chunks_mut(area).enumerate() {
            let kk = k0 + slot;
            debug_assert!(kk < nnz, "sdd: worker block index {kk} out of range {nnz}");
            debug_assert_eq!(block.len(), area, "sdd: worker got a partial block");
            let r = row_indices[kk];
            let c = col_indices[kk];
            let a_view = match op_a {
                Trans::N => PanelView::new(&a_data[r * bs * a_cols..], a_cols, 1),
                Trans::T => PanelView::new(&a_data[r * bs..], 1, a_cols),
            };
            let b_view = match op_b {
                Trans::N => PanelView::new(&b_data[c * bs..], b_cols, 1),
                Trans::T => PanelView::new(&b_data[c * bs * b_cols..], 1, b_cols),
            };
            block_gemm(bs, bs, k, 1.0, a_view, b_view, block, bs);
        }
    };

    let blocks_per_thread = nnz.div_ceil(threads);
    if threads > 1 {
        sanitize::sdd_partition(topo, threads, blocks_per_thread)?;
    }
    launch_result(
        exec::LaunchPlan::over_items(
            variant,
            out.as_mut_slice(),
            area,
            blocks_per_thread,
            &compute,
        )
        .with_ctx(ctx.clone())
        .try_launch(),
    )?;
    sanitize::output(variant, out.as_slice())?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// DSD: dense output = sparse x dense
// ---------------------------------------------------------------------------

product_wrappers! {
    /// DSD: computes `out = s * d` — the second product of the dMoE forward
    /// pass (Figure 6, line 23).
    dsd / try_dsd: (s: &BlockSparseMatrix, d: &Matrix) -> Matrix
        = try_dsd_op(s, Trans::N, d, Trans::N);

    /// DSD^T: computes `out = s * d^T` — the first-layer data gradient.
    dsd_t / try_dsd_t: (s: &BlockSparseMatrix, d: &Matrix) -> Matrix
        = try_dsd_op(s, Trans::N, d, Trans::T);

    /// DS^TD: computes `out = s^T * d` — the second-layer weight gradient.
    ///
    /// The sparse operand is traversed in column-major order through the
    /// transpose-index secondary index; no values are copied or transposed.
    dst_d / try_dst_d: (s: &BlockSparseMatrix, d: &Matrix) -> Matrix
        = try_dsd_op(s, Trans::T, d, Trans::N);
}

/// Deadline-aware form of [`try_dsd`]: the forward-pass DSD run under
/// `ctx`.
///
/// # Errors
///
/// Everything [`try_dsd`] returns, plus [`SparseError::Cancelled`].
pub fn try_dsd_ctx(
    s: &BlockSparseMatrix,
    d: &Matrix,
    ctx: &exec::Ctx,
) -> Result<Matrix, SparseError> {
    try_dsd_op_ctx(s, Trans::N, d, Trans::N, ctx)
}

/// DS^TD via explicit transposition — the ablation baseline for §5.1.4.
///
/// Materializes `s^T` (copying every nonzero value) and then runs a plain
/// DSD. Produces bit-identical results to [`dst_d`] up to float summation
/// order.
///
/// # Panics
///
/// Panics if `s.shape().0 != d.rows()`.
pub fn dst_d_explicit(s: &BlockSparseMatrix, d: &Matrix) -> Matrix {
    try_dst_d_explicit(s, d).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`dst_d_explicit`].
///
/// # Errors
///
/// Returns [`SparseError::Mismatch`] on incompatible shapes (and
/// [`SparseError::Audit`] on sanitizer violations under `sanitize`).
pub fn try_dst_d_explicit(s: &BlockSparseMatrix, d: &Matrix) -> Result<Matrix, SparseError> {
    // The span covers the materialized transpose plus the inner DSD (which
    // records its own nested "sparse.dsd" span), so the ablation's extra
    // cost shows up as this span's exclusive time.
    let _span = telemetry::span("sparse.dst_d_explicit");
    try_dsd(&s.try_explicit_transpose()?, d)
}

/// General DSD: `out = op_s(s) * op_d(d)`.
///
/// # Panics
///
/// Panics if the logical shapes are incompatible.
pub fn dsd_op(s: &BlockSparseMatrix, op_s: Trans, d: &Matrix, op_d: Trans) -> Matrix {
    try_dsd_op(s, op_s, d, op_d).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`dsd_op`]: shape mismatches surface as
/// [`SparseError::Mismatch`] instead of panicking.
///
/// # Errors
///
/// Returns [`SparseError::Mismatch`] if the inner dimensions of `op_s(s)`
/// and `op_d(d)` differ.
pub fn try_dsd_op(
    s: &BlockSparseMatrix,
    op_s: Trans,
    d: &Matrix,
    op_d: Trans,
) -> Result<Matrix, SparseError> {
    try_dsd_op_ctx(s, op_s, d, op_d, &exec::Ctx::none())
}

/// Deadline-aware form of [`try_dsd_op`] — see [`try_sdd_op_ctx`] for
/// the context contract.
///
/// # Errors
///
/// Everything [`try_dsd_op`] returns, plus [`SparseError::Cancelled`]
/// when the context trips (or the launch is shed under overload).
pub fn try_dsd_op_ctx(
    s: &BlockSparseMatrix,
    op_s: Trans,
    d: &Matrix,
    op_d: Trans,
    ctx: &exec::Ctx,
) -> Result<Matrix, SparseError> {
    let topo = s.topology();
    let bs = topo.block_size().get();
    let (sm, sk) = match op_s {
        Trans::N => topo.shape(),
        Trans::T => {
            let (r, c) = topo.shape();
            (c, r)
        }
    };
    let (dk, dn) = logical(d, op_d);
    if sk != dk {
        return Err(SparseError::Mismatch(format!(
            "dsd: inner dimensions differ ({sk} vs {dk})"
        )));
    }
    let n = dn;

    let variant = dsd_variant(op_s, op_d);
    let _span = telemetry::span(variant);
    if let Some(kind) = ctx.status() {
        return Err(SparseError::Cancelled { op: variant, kind });
    }
    sanitize::topology(topo)?;
    telemetry::counter_with("sparse.blocks", variant).add(topo.nnz_blocks() as u64);
    telemetry::counter_with("sparse.flops", variant).add(2 * topo.nnz() as u64 * n as u64);

    let mut out = Matrix::pooled_zeros(sm, n);
    if topo.nnz_blocks() == 0 || n == 0 {
        return Ok(out);
    }

    let d_data = d.as_slice();
    let (_, d_cols) = d.shape();
    let col_indices = topo.col_indices();
    let row_indices = topo.row_indices();

    // Output rows are grouped by block row (op_s = N) or block column
    // (op_s = T); each group of `bs` output rows is written by exactly one
    // worker, so bands can be handed out with chunks_mut.
    let groups = match op_s {
        Trans::N => topo.block_rows(),
        Trans::T => topo.block_cols(),
    };
    let threads = exec::parallelism_for(topo.nnz() * n, PARALLEL_THRESHOLD).min(groups);

    // A group's band is the product of the sparse operand's block row
    // (op_s = N) or block column (op_s = T, traversed column-major through
    // the transpose indices, §5.1.4) with the matching dense row panels:
    // one microkernel call per nonzero block, accumulating into the band.
    let compute_group = |band: &mut [f32], g: usize| {
        debug_assert_eq!(band.len(), bs * n, "dsd: worker band has wrong length");
        let mut run_block = |k_idx: usize| {
            let block = s.block(k_idx);
            // `other` is the sparse block's coordinate along the reduction
            // dimension: its block column under N, its block row under T
            // (where the logical block is the stored block transposed —
            // again just a stride swap).
            let (other, s_view) = match op_s {
                Trans::N => (col_indices[k_idx], PanelView::new(block, bs, 1)),
                Trans::T => (row_indices[k_idx], PanelView::new(block, 1, bs)),
            };
            let d_view = match op_d {
                Trans::N => PanelView::new(&d_data[other * bs * d_cols..], d_cols, 1),
                Trans::T => PanelView::new(&d_data[other * bs..], 1, d_cols),
            };
            block_gemm(bs, n, bs, 1.0, s_view, d_view, band, n);
        };
        // row_blocks returns a contiguous range, col_blocks walks the
        // transpose index — different iterator types, same treatment.
        match op_s {
            Trans::N => topo.row_blocks(g).for_each(&mut run_block),
            Trans::T => topo.col_blocks(g).for_each(&mut run_block),
        }
    };

    let groups_per_thread = groups.div_ceil(threads);
    if threads > 1 {
        sanitize::dsd_partition(topo, op_s == Trans::T, threads, groups_per_thread)?;
    }
    let body = |bands: &mut [f32], g0: usize| {
        for (off, band) in bands.chunks_mut(bs * n).enumerate() {
            compute_group(band, g0 + off);
        }
    };
    launch_result(
        exec::LaunchPlan::over_items(
            variant,
            out.as_mut_slice(),
            bs * n,
            groups_per_thread,
            &body,
        )
        .with_ctx(ctx.clone())
        .try_launch(),
    )?;
    sanitize::output(variant, out.as_slice())?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// DDS: dense output = dense x sparse
// ---------------------------------------------------------------------------

product_wrappers! {
    /// DDS: computes `out = d * s`.
    dds / try_dds: (d: &Matrix, s: &BlockSparseMatrix) -> Matrix
        = try_dds_op(d, Trans::N, s, Trans::N);

    /// DDS^T: computes `out = d * s^T` (row-major traversal of the sparse
    /// operand).
    dds_t / try_dds_t: (d: &Matrix, s: &BlockSparseMatrix) -> Matrix
        = try_dds_op(d, Trans::N, s, Trans::T);

    /// DD^TS: computes `out = d^T * s` — the first-layer weight gradient of
    /// a dMoE FFN (paper §5.1).
    ddt_s / try_ddt_s: (d: &Matrix, s: &BlockSparseMatrix) -> Matrix
        = try_dds_op(d, Trans::T, s, Trans::N);
}

/// Deadline-aware form of [`try_dds`]: `out = d * s` run under `ctx`.
///
/// # Errors
///
/// Everything [`try_dds`] returns, plus [`SparseError::Cancelled`].
pub fn try_dds_ctx(
    d: &Matrix,
    s: &BlockSparseMatrix,
    ctx: &exec::Ctx,
) -> Result<Matrix, SparseError> {
    try_dds_op_ctx(d, Trans::N, s, Trans::N, ctx)
}

/// General DDS: `out = op_d(d) * op_s(s)`.
///
/// # Panics
///
/// Panics if the logical shapes are incompatible.
pub fn dds_op(d: &Matrix, op_d: Trans, s: &BlockSparseMatrix, op_s: Trans) -> Matrix {
    try_dds_op(d, op_d, s, op_s).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`dds_op`]: shape mismatches surface as
/// [`SparseError::Mismatch`] instead of panicking.
///
/// # Errors
///
/// Returns [`SparseError::Mismatch`] if the inner dimensions of `op_d(d)`
/// and `op_s(s)` differ.
pub fn try_dds_op(
    d: &Matrix,
    op_d: Trans,
    s: &BlockSparseMatrix,
    op_s: Trans,
) -> Result<Matrix, SparseError> {
    try_dds_op_ctx(d, op_d, s, op_s, &exec::Ctx::none())
}

/// Deadline-aware form of [`try_dds_op`] — see [`try_sdd_op_ctx`] for
/// the context contract.
///
/// # Errors
///
/// Everything [`try_dds_op`] returns, plus [`SparseError::Cancelled`]
/// when the context trips (or the launch is shed under overload).
pub fn try_dds_op_ctx(
    d: &Matrix,
    op_d: Trans,
    s: &BlockSparseMatrix,
    op_s: Trans,
    ctx: &exec::Ctx,
) -> Result<Matrix, SparseError> {
    let topo = s.topology();
    let bs = topo.block_size().get();
    let (dm, dk) = logical(d, op_d);
    let (sk, sn) = match op_s {
        Trans::N => topo.shape(),
        Trans::T => {
            let (r, c) = topo.shape();
            (c, r)
        }
    };
    if dk != sk {
        return Err(SparseError::Mismatch(format!(
            "dds: inner dimensions differ ({dk} vs {sk})"
        )));
    }
    let m = dm;
    let n = sn;

    let variant = dds_variant(op_d, op_s);
    let _span = telemetry::span(variant);
    if let Some(kind) = ctx.status() {
        return Err(SparseError::Cancelled { op: variant, kind });
    }
    sanitize::topology(topo)?;
    telemetry::counter_with("sparse.blocks", variant).add(topo.nnz_blocks() as u64);
    telemetry::counter_with("sparse.flops", variant).add(2 * topo.nnz() as u64 * m as u64);

    let mut out = Matrix::pooled_zeros(m, n);
    if topo.nnz_blocks() == 0 || m == 0 {
        return Ok(out);
    }

    let d_data = d.as_slice();
    let (_, d_cols) = d.shape();
    let col_indices = topo.col_indices();
    let row_indices = topo.row_indices();
    let threads = exec::parallelism_for(topo.nnz() * m, PARALLEL_THRESHOLD).min(m);

    // Workers own bands of output rows; every worker walks all nonzero
    // blocks (each block touches a disjoint output column stripe). Per
    // block: out[band rows, oc*bs..] += op_d(d)[band rows, ic*bs..] * blk,
    // one microkernel call with the band's stride carrying the column
    // offset.
    let compute_band = |band: &mut [f32], i0: usize, rows: usize| {
        debug_assert_eq!(band.len(), rows * n, "dds: worker band has wrong length");
        for k_idx in 0..topo.nnz_blocks() {
            let block = s.block(k_idx);
            // `ic` indexes the reduction dimension, `oc` the output column
            // stripe; a transposed sparse operand swaps both the block
            // coordinates and the block-local strides.
            let (ic, oc, s_view) = match op_s {
                Trans::N => (
                    row_indices[k_idx],
                    col_indices[k_idx],
                    PanelView::new(block, bs, 1),
                ),
                Trans::T => (
                    col_indices[k_idx],
                    row_indices[k_idx],
                    PanelView::new(block, 1, bs),
                ),
            };
            let d_view = match op_d {
                Trans::N => PanelView::new(&d_data[i0 * d_cols + ic * bs..], d_cols, 1),
                Trans::T => PanelView::new(&d_data[ic * bs * d_cols + i0..], 1, d_cols),
            };
            block_gemm(rows, bs, bs, 1.0, d_view, s_view, &mut band[oc * bs..], n);
        }
    };

    let rows_per_thread = m.div_ceil(threads);
    let body = |band: &mut [f32], i0: usize| compute_band(band, i0, band.len() / n);
    launch_result(
        exec::LaunchPlan::over_items(variant, out.as_mut_slice(), n, rows_per_thread, &body)
            .with_ctx(ctx.clone())
            .try_launch(),
    )?;
    sanitize::output(variant, out.as_slice())?;
    Ok(out)
}

fn logical(m: &Matrix, op: Trans) -> (usize, usize) {
    match op {
        Trans::N => m.shape(),
        Trans::T => (m.cols(), m.rows()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCoord, BlockSize};
    use megablocks_tensor::matmul;

    fn bs(n: usize) -> BlockSize {
        BlockSize::new(n).unwrap()
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    /// An irregular (non-block-diagonal) topology to stress generality.
    fn irregular_topo(block: usize) -> Topology {
        Topology::from_blocks(
            3,
            4,
            [
                BlockCoord { row: 0, col: 0 },
                BlockCoord { row: 0, col: 3 },
                BlockCoord { row: 1, col: 1 },
                BlockCoord { row: 1, col: 2 },
                BlockCoord { row: 2, col: 0 },
                BlockCoord { row: 2, col: 2 },
                BlockCoord { row: 2, col: 3 },
            ],
            bs(block),
        )
        .unwrap()
    }

    fn mask_dense(m: &Matrix, topo: &Topology) -> Matrix {
        let b = topo.block_size().get();
        Matrix::from_fn(m.rows(), m.cols(), |i, j| {
            if topo.find(i / b, j / b).is_some() {
                m[(i, j)]
            } else {
                0.0
            }
        })
    }

    #[test]
    fn sdd_all_variants_match_masked_dense() {
        let block = 4;
        let topo = irregular_topo(block);
        let (m, n) = topo.shape();
        let k = 10;
        for (op_a, op_b) in [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let a = match op_a {
                Trans::N => rand_matrix(m, k, 1),
                Trans::T => rand_matrix(k, m, 1),
            };
            let b = match op_b {
                Trans::N => rand_matrix(k, n, 2),
                Trans::T => rand_matrix(n, k, 2),
            };
            let got = sdd_op(&a, op_a, &b, op_b, &topo).to_dense();
            let ad = if op_a == Trans::T {
                a.transpose()
            } else {
                a.clone()
            };
            let bd = if op_b == Trans::T {
                b.transpose()
            } else {
                b.clone()
            };
            let want = mask_dense(&matmul(&ad, &bd), &topo);
            assert!(
                got.approx_eq(&want, 1e-4),
                "sdd ({op_a:?},{op_b:?}) diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn dsd_all_variants_match_dense() {
        let block = 4;
        let topo = irregular_topo(block);
        let (rows, cols) = topo.shape();
        let s = crate::BlockSparseMatrix::from_dense(
            &mask_dense(&rand_matrix(rows, cols, 3), &topo),
            &topo,
        )
        .unwrap();
        let sd = s.to_dense();
        let n = 9;
        for (op_s, op_d) in [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let inner = match op_s {
                Trans::N => cols,
                Trans::T => rows,
            };
            let d = match op_d {
                Trans::N => rand_matrix(inner, n, 4),
                Trans::T => rand_matrix(n, inner, 4),
            };
            let got = dsd_op(&s, op_s, &d, op_d);
            let sm = if op_s == Trans::T {
                sd.transpose()
            } else {
                sd.clone()
            };
            let dm = if op_d == Trans::T {
                d.transpose()
            } else {
                d.clone()
            };
            let want = matmul(&sm, &dm);
            assert!(
                got.approx_eq(&want, 1e-4),
                "dsd ({op_s:?},{op_d:?}) diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn dds_all_variants_match_dense() {
        let block = 4;
        let topo = irregular_topo(block);
        let (rows, cols) = topo.shape();
        let s = crate::BlockSparseMatrix::from_dense(
            &mask_dense(&rand_matrix(rows, cols, 5), &topo),
            &topo,
        )
        .unwrap();
        let sd = s.to_dense();
        let m = 7;
        for (op_d, op_s) in [
            (Trans::N, Trans::N),
            (Trans::N, Trans::T),
            (Trans::T, Trans::N),
            (Trans::T, Trans::T),
        ] {
            let inner = match op_s {
                Trans::N => rows,
                Trans::T => cols,
            };
            let d = match op_d {
                Trans::N => rand_matrix(m, inner, 6),
                Trans::T => rand_matrix(inner, m, 6),
            };
            let got = dds_op(&d, op_d, &s, op_s);
            let dm = if op_d == Trans::T {
                d.transpose()
            } else {
                d.clone()
            };
            let sm = if op_s == Trans::T {
                sd.transpose()
            } else {
                sd.clone()
            };
            let want = matmul(&dm, &sm);
            assert!(
                got.approx_eq(&want, 1e-4),
                "dds ({op_d:?},{op_s:?}) diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn transpose_index_path_matches_explicit_transpose() {
        let topo = irregular_topo(4);
        let (rows, cols) = topo.shape();
        let s = crate::BlockSparseMatrix::from_dense(
            &mask_dense(&rand_matrix(rows, cols, 7), &topo),
            &topo,
        )
        .unwrap();
        let d = rand_matrix(rows, 6, 8);
        let fast = dst_d(&s, &d);
        let slow = dst_d_explicit(&s, &d);
        assert!(
            fast.approx_eq(&slow, 1e-4),
            "diff {}",
            fast.max_abs_diff(&slow)
        );
    }

    #[test]
    fn moe_forward_backward_product_chain_shapes() {
        // Mimic a 2-expert dMoE FFN: hidden=6, ffn=8, block=4,
        // expert 0 gets 1 token block, expert 1 gets 2.
        let block = 4;
        let hidden = 6;
        let ffn = 8;
        let topo = Topology::for_moe(&[4, 8], ffn, bs(block)).unwrap();
        let tokens = 12;
        assert_eq!(topo.shape(), (tokens, 2 * ffn));

        let x = rand_matrix(tokens, hidden, 10);
        let w1 = rand_matrix(hidden, 2 * ffn, 11);
        let w2 = rand_matrix(2 * ffn, hidden, 12);

        // forward: SDD then DSD
        let h = sdd(&x, &w1, &topo);
        let y = dsd(&h, &w2);
        assert_eq!(y.shape(), (tokens, hidden));

        // backward: SDD^T, DS^TD, DSD^T, DD^TS
        let dy = rand_matrix(tokens, hidden, 13);
        let dh = sdd_t(&dy, &w2, &topo);
        assert_eq!(dh.shape(), topo.shape());
        let dw2 = dst_d(&h, &dy);
        assert_eq!(dw2.shape(), (2 * ffn, hidden));
        let dx = dsd_t(&dh, &w1);
        assert_eq!(dx.shape(), (tokens, hidden));
        let dw1 = ddt_s(&x, &dh);
        assert_eq!(dw1.shape(), (hidden, 2 * ffn));

        // Cross-check against dense math with an explicit mask.
        let hd = h.to_dense();
        let want_y = matmul(&hd, &w2);
        assert!(y.approx_eq(&want_y, 1e-4));
        let want_dh = mask_dense(&matmul(&dy, &w2.transpose()), &topo);
        assert!(dh.to_dense().approx_eq(&want_dh, 1e-4));
        let want_dw2 = matmul(&hd.transpose(), &dy);
        assert!(dw2.approx_eq(&want_dw2, 1e-4));
        let want_dx = matmul(&dh.to_dense(), &w1.transpose());
        assert!(dx.approx_eq(&want_dx, 1e-4));
        let want_dw1 = matmul(&x.transpose(), &dh.to_dense());
        assert!(dw1.approx_eq(&want_dw1, 1e-4));
    }

    #[test]
    fn empty_topology_products_are_zero() {
        let topo = Topology::from_blocks(2, 2, [], bs(4)).unwrap();
        let a = rand_matrix(8, 3, 20);
        let b = rand_matrix(3, 8, 21);
        let s = sdd(&a, &b, &topo);
        assert!(s.as_slice().is_empty());
        let d = rand_matrix(8, 5, 22);
        assert_eq!(dsd(&s, &d).max_abs(), 0.0);
        let d2 = rand_matrix(5, 8, 23);
        assert_eq!(dds(&d2, &s).max_abs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn sdd_shape_mismatch_panics() {
        let topo = irregular_topo(4);
        let (m, n) = topo.shape();
        let a = Matrix::zeros(m, 5);
        let b = Matrix::zeros(6, n);
        let _ = sdd(&a, &b, &topo);
    }

    #[test]
    fn try_entry_points_return_mismatch_errors() {
        let topo = irregular_topo(4);
        let (m, n) = topo.shape();

        let err = try_sdd_op(
            &Matrix::zeros(m, 5),
            Trans::N,
            &Matrix::zeros(6, n),
            Trans::N,
            &topo,
        )
        .unwrap_err();
        assert!(matches!(err, SparseError::Mismatch(_)));
        assert!(err.to_string().contains("sdd: inner dimensions differ"));
        let err = try_sdd_op(
            &Matrix::zeros(m + 4, 5),
            Trans::N,
            &Matrix::zeros(5, n),
            Trans::N,
            &topo,
        )
        .unwrap_err();
        assert!(err.to_string().contains("rows"));

        let s = BlockSparseMatrix::zeros(&topo);
        let err = try_dsd_op(&s, Trans::N, &Matrix::zeros(n + 1, 3), Trans::N).unwrap_err();
        assert!(err.to_string().contains("dsd: inner dimensions differ"));
        let err = try_dds_op(&Matrix::zeros(3, m + 1), Trans::N, &s, Trans::N).unwrap_err();
        assert!(err.to_string().contains("dds: inner dimensions differ"));

        // The happy path matches the panicking entry points bit-for-bit.
        let a = rand_matrix(m, 5, 40);
        let b = rand_matrix(5, n, 41);
        let via_try = try_sdd_op(&a, Trans::N, &b, Trans::N, &topo).unwrap();
        let via_panic = sdd(&a, &b, &topo);
        assert_eq!(via_try.as_slice(), via_panic.as_slice());
    }

    #[test]
    fn large_blocks_parallel_path() {
        // Big enough to cross PARALLEL_THRESHOLD and exercise threading.
        let topo = Topology::for_moe(&[64, 128], 64, bs(32)).unwrap();
        let (m, n) = topo.shape();
        let k = 48;
        let a = rand_matrix(m, k, 30);
        let b = rand_matrix(k, n, 31);
        let s = sdd(&a, &b, &topo);
        let want = mask_dense(&matmul(&a, &b), &topo);
        assert!(s.to_dense().approx_eq(&want, 1e-3));

        let d = rand_matrix(n, 64, 32);
        let y = dsd(&s, &d);
        assert!(y.approx_eq(&matmul(&s.to_dense(), &d), 1e-3));

        let dd = rand_matrix(m, 64, 33);
        let g = dst_d(&s, &dd);
        assert!(g.approx_eq(&matmul(&s.to_dense().transpose(), &dd), 1e-3));
    }
}

use crate::SparseError;

/// The sparsity block granularity of a block-sparse matrix.
///
/// The paper selects 128 after benchmarking CUTLASS tile shapes (§5.1.2,
/// Figure 4): blocks this large have enough arithmetic intensity to keep
/// matrix units busy while making metadata costs negligible (one column
/// index per 16384 values). [`BlockSize::PAPER`] is that default; tests and
/// ablations construct other sizes with [`BlockSize::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockSize(usize);

impl BlockSize {
    /// The 128x128 block size selected by the paper.
    pub const PAPER: BlockSize = BlockSize(128);

    /// Creates a block size.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ZeroBlockSize`] if `size == 0`.
    pub fn new(size: usize) -> Result<Self, SparseError> {
        if size == 0 {
            return Err(SparseError::ZeroBlockSize);
        }
        Ok(BlockSize(size))
    }

    /// The block edge length.
    pub fn get(self) -> usize {
        self.0
    }

    /// Number of elements in one block (`size * size`).
    pub fn area(self) -> usize {
        self.0 * self.0
    }

    /// Rounds `n` up to the nearest multiple of the block size.
    ///
    /// This is the padding rule from §5.2: each expert's token group is
    /// padded to a multiple of the block size.
    pub fn round_up(self, n: usize) -> usize {
        n.div_ceil(self.0) * self.0
    }

    /// Number of blocks needed to cover `n` elements.
    pub fn blocks_for(self, n: usize) -> usize {
        n.div_ceil(self.0)
    }
}

impl Default for BlockSize {
    fn default() -> Self {
        BlockSize::PAPER
    }
}

impl std::fmt::Display for BlockSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{0}x{0}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero() {
        assert_eq!(BlockSize::new(0), Err(SparseError::ZeroBlockSize));
    }

    #[test]
    fn paper_default_is_128() {
        assert_eq!(BlockSize::default(), BlockSize::PAPER);
        assert_eq!(BlockSize::PAPER.get(), 128);
        assert_eq!(BlockSize::PAPER.area(), 16384);
    }

    #[test]
    fn round_up_and_blocks_for() {
        let bs = BlockSize::new(128).unwrap();
        assert_eq!(bs.round_up(0), 0);
        assert_eq!(bs.round_up(1), 128);
        assert_eq!(bs.round_up(128), 128);
        assert_eq!(bs.round_up(129), 256);
        assert_eq!(bs.blocks_for(129), 2);
        assert_eq!(bs.blocks_for(0), 0);
    }

    #[test]
    fn display_is_square() {
        assert_eq!(BlockSize::new(64).unwrap().to_string(), "64x64");
    }
}

use std::error::Error;
use std::fmt;

use megablocks_exec::CancelKind;

use crate::audit::AuditError;

/// Error type for block-sparse construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A sanitizer invariant was violated (metadata corruption, a broken
    /// kernel launch plan, or NaN/Inf poisoning in a kernel output).
    Audit(AuditError),
    /// A block size of zero was requested.
    ZeroBlockSize,
    /// A dimension is not divisible by the block size.
    Unaligned {
        /// Which quantity was misaligned.
        what: &'static str,
        /// The misaligned value.
        value: usize,
        /// The required divisor (the block size).
        block_size: usize,
    },
    /// A block coordinate lies outside the matrix.
    CoordOutOfRange {
        /// The offending block row.
        row: usize,
        /// The offending block column.
        col: usize,
        /// Number of block rows in the matrix.
        block_rows: usize,
        /// Number of block columns in the matrix.
        block_cols: usize,
    },
    /// The same block coordinate appeared twice.
    DuplicateBlock {
        /// The duplicated block row.
        row: usize,
        /// The duplicated block column.
        col: usize,
    },
    /// Mismatched input lengths or shapes.
    Mismatch(String),
    /// The product's kernel launch was abandoned before completion: its
    /// cancellation context tripped (explicit cancel or expired
    /// deadline), the stall watchdog fired, or the pool shed the launch
    /// under overload. The partially-written output is discarded with
    /// this error.
    Cancelled {
        /// The telemetry name of the abandoned product.
        op: &'static str,
        /// Why the launch was abandoned.
        kind: CancelKind,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::Audit(e) => write!(f, "{e}"),
            SparseError::ZeroBlockSize => write!(f, "block size must be nonzero"),
            SparseError::Unaligned {
                what,
                value,
                block_size,
            } => write!(
                f,
                "{what} = {value} is not a multiple of block size {block_size}"
            ),
            SparseError::CoordOutOfRange {
                row,
                col,
                block_rows,
                block_cols,
            } => write!(
                f,
                "block ({row}, {col}) out of range for {block_rows}x{block_cols} block grid"
            ),
            SparseError::DuplicateBlock { row, col } => {
                write!(f, "duplicate nonzero block at ({row}, {col})")
            }
            SparseError::Mismatch(s) => write!(f, "{s}"),
            // Leads with the exec panic prefix for the kind, so a message
            // crossing a panic boundary still classifies uniformly
            // (retryable deadline vs. non-retryable cancel).
            SparseError::Cancelled { op, kind } => {
                write!(
                    f,
                    "{}: {op} abandoned before completion",
                    kind.panic_prefix()
                )
            }
        }
    }
}

impl Error for SparseError {}

impl From<AuditError> for SparseError {
    fn from(e: AuditError) -> Self {
        SparseError::Audit(e)
    }
}

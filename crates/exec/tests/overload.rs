//! Bounded pool admission and load shedding.
//!
//! This binary pins the overload policy with the queue cap forced to
//! zero — every multi-band launch faces the admission decision a flooded
//! queue would produce. The cap resolves once per process, which is why
//! these tests live in their own test binary: each test re-requests the
//! same configuration, so in-binary test order cannot change it.

use std::time::Duration;

use megablocks_exec::{
    configure_queue_cap, configure_threads, pool, queue_cap, CancelToken, Ctx, Deadline, ExecError,
    LaunchPlan,
};

/// Forces the zero cap (and a deterministic pool size) before the first
/// launch of the process; later calls are no-ops on the same values.
fn pin_zero_cap() {
    configure_queue_cap(0);
    configure_threads(4);
}

#[test]
fn queue_cap_resolves_to_the_configured_zero() {
    pin_zero_cap();
    assert_eq!(queue_cap(), 0);
    // The cap is resolved for the life of the process now.
    assert!(!configure_queue_cap(64), "cap must already be resolved");
    assert_eq!(queue_cap(), 0);
}

#[test]
fn plain_launches_degrade_inline_when_shed() {
    pin_zero_cap();
    let n = 8192usize;
    let mut data: Vec<f32> = (1..=n).map(|v| v as f32).collect();
    let body = |band: &mut [f32], _i0: usize| {
        for v in band.iter_mut() {
            *v *= 2.0;
        }
    };
    // No context: throughput work has no deadline to miss, so the shed
    // launch must degrade to inline execution and still complete.
    LaunchPlan::over_items("test.overload.plain", &mut data, 1, n / 8, &body)
        .try_launch()
        .expect("plain work must degrade inline, not fail");
    let want = (n * (n + 1)) as f64; // 2 * sum(1..=n)
    assert_eq!(data.iter().map(|&v| v as f64).sum::<f64>(), want);
    // Nothing may have been queued past the cap.
    assert_eq!(pool().queue_depth(), 0, "the zero cap must hold");
}

#[test]
fn latency_bound_launches_are_shed_with_overloaded() {
    pin_zero_cap();
    let mut data = vec![0.0f32; 4096];
    let body = |band: &mut [f32], _i0: usize| band.fill(1.0);
    // A live deadline marks the launch latency-bound: queueing into a
    // flood would blow the budget, so the launch is shed explicitly.
    let ctx = Ctx::none().with_deadline(Deadline::after(Duration::from_secs(3600)));
    let result = LaunchPlan::over_items("test.overload.bound", &mut data, 1, 512, &body)
        .with_ctx(ctx)
        .try_launch();
    assert_eq!(
        result,
        Err(ExecError::Overloaded {
            op: "test.overload.bound"
        })
    );
}

#[test]
fn token_only_contexts_are_latency_bound_too() {
    pin_zero_cap();
    let token = CancelToken::new();
    let mut data = vec![0.0f32; 4096];
    let body = |band: &mut [f32], _i0: usize| band.fill(1.0);
    let result = LaunchPlan::over_items("test.overload.token", &mut data, 1, 512, &body)
        .with_ctx(Ctx::none().with_token(&token))
        .try_launch();
    assert_eq!(
        result,
        Err(ExecError::Overloaded {
            op: "test.overload.token"
        })
    );
}

#[test]
fn dead_contexts_are_refused_before_the_admission_decision() {
    pin_zero_cap();
    let token = CancelToken::new();
    token.cancel();
    let mut data = vec![0.0f32; 4096];
    let body = |band: &mut [f32], _i0: usize| band.fill(1.0);
    // Precedence: an already-cancelled launch reports the cancel, not
    // the overload it would also have hit.
    let result = LaunchPlan::over_items("test.overload.dead", &mut data, 1, 512, &body)
        .with_ctx(Ctx::none().with_token(&token))
        .try_launch();
    assert_eq!(
        result,
        Err(ExecError::Cancelled {
            op: "test.overload.dead"
        })
    );
}

#[test]
fn single_band_launches_never_face_admission() {
    pin_zero_cap();
    let mut data = vec![0.0f32; 64];
    let body = |band: &mut [f32], _i0: usize| band.fill(3.0);
    // One band runs inline on the submitter; a zero cap cannot shed it
    // even when the launch is latency-bound.
    let ctx = Ctx::none().with_deadline(Deadline::after(Duration::from_secs(3600)));
    LaunchPlan::over_items("test.overload.single", &mut data, 1, 64, &body)
        .with_ctx(ctx)
        .try_launch()
        .expect("single-band launches bypass the queue");
    assert!(data.iter().all(|&v| v == 3.0));
}

//! Cancellation, deadline and watchdog behavior of launch plans.
//!
//! These tests pin the cooperative-cancellation contract end to end:
//! already-dead contexts are refused before any band runs, token
//! hierarchies propagate an ancestor's cancel into nested launches, the
//! ambient context installed with [`cancel::enter`] is inherited by
//! plans that carry none, and the stall watchdog cancels a wedged band
//! in bounded time instead of letting the launch hang.

use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::time::{Duration, Instant};

use megablocks_exec::{
    cancel, configure_threads, CancelKind, CancelToken, Ctx, Deadline, ExecError, LaunchPlan,
};

/// Bands a 4096-float output eight ways and counts body executions; the
/// workhorse launch the cancellation tests drive.
fn counted_launch(ctx: Ctx) -> (Result<(), ExecError>, usize) {
    let ran = AtomicUsize::new(0);
    let mut data = vec![0.0f32; 4096];
    let body = |band: &mut [f32], _i0: usize| {
        ran.fetch_add(1, Relaxed);
        band.fill(1.0);
    };
    let result = LaunchPlan::over_items("test.cancel.counted", &mut data, 1, 512, &body)
        .with_ctx(ctx)
        .try_launch();
    (result, ran.load(Relaxed))
}

#[test]
fn pre_cancelled_token_refuses_the_launch() {
    configure_threads(4);
    let token = CancelToken::new();
    token.cancel();
    let (result, ran) = counted_launch(Ctx::none().with_token(&token));
    assert_eq!(
        result,
        Err(ExecError::Cancelled {
            op: "test.cancel.counted"
        })
    );
    assert_eq!(ran, 0, "no band body may run under a dead context");
}

#[test]
fn expired_deadline_reports_deadline_exceeded() {
    configure_threads(4);
    let deadline = Deadline::after(Duration::ZERO);
    let (result, ran) = counted_launch(Ctx::none().with_deadline(deadline));
    assert_eq!(
        result,
        Err(ExecError::DeadlineExceeded {
            op: "test.cancel.counted"
        })
    );
    assert_eq!(ran, 0);
}

#[test]
fn future_deadline_lets_the_launch_complete() {
    configure_threads(4);
    let deadline = Deadline::after(Duration::from_secs(3600));
    let (result, ran) = counted_launch(Ctx::none().with_deadline(deadline));
    assert_eq!(result, Ok(()));
    assert_eq!(ran, 8, "every band must run under a live deadline");
}

#[test]
fn ancestor_cancel_reaches_child_token_contexts() {
    configure_threads(4);
    let parent = CancelToken::new();
    let child = parent.child();
    assert!(!child.is_cancelled());
    parent.cancel();
    assert_eq!(child.kind(), Some(CancelKind::Cancelled));
    let (result, ran) = counted_launch(Ctx::none().with_token(&child));
    assert_eq!(
        result,
        Err(ExecError::Cancelled {
            op: "test.cancel.counted"
        })
    );
    assert_eq!(ran, 0);

    // The reverse must not hold: cancelling a child leaves the parent
    // (and thus sibling subtrees) live.
    let parent = CancelToken::new();
    let child = parent.child();
    child.cancel();
    assert!(child.is_cancelled());
    assert!(!parent.is_cancelled());
}

#[test]
fn ambient_context_is_inherited_by_plans_without_one() {
    configure_threads(4);
    let token = CancelToken::new();
    token.cancel();
    let ctx = Ctx::none().with_token(&token);
    let _ambient = cancel::enter(&ctx);
    // The plan carries no context of its own; it must pick up the dead
    // ambient one and refuse the launch.
    let (result, ran) = counted_launch(Ctx::none());
    assert_eq!(
        result,
        Err(ExecError::Cancelled {
            op: "test.cancel.counted"
        })
    );
    assert_eq!(ran, 0);
}

#[test]
fn empty_ambient_scope_does_not_mask_results() {
    configure_threads(4);
    // Entering an empty context is a no-op; the launch proceeds, and the
    // output is identical to a launch with no scope at all.
    let run = || {
        let mut data: Vec<f32> = (0..2048).map(|v| v as f32).collect();
        let body = |band: &mut [f32], i0: usize| {
            for (i, v) in band.iter_mut().enumerate() {
                *v = v.mul_add(1.5, (i0 + i) as f32);
            }
        };
        LaunchPlan::over_items("test.cancel.empty_scope", &mut data, 1, 256, &body)
            .try_launch()
            .expect("plain launch cannot fail");
        data
    };
    let bare = run();
    let scoped = {
        let ctx = Ctx::none();
        let _ambient = cancel::enter(&ctx);
        run()
    };
    assert!(
        bare.iter()
            .zip(&scoped)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "an empty ambient scope must be unobservable"
    );
}

#[test]
fn mid_flight_cancel_skips_unstarted_bands_and_reports() {
    configure_threads(4);
    let token = CancelToken::new();
    let ran = AtomicUsize::new(0);
    let bands = 64usize;
    let mut data = vec![0.0f32; bands * 64];
    // The first band (which runs inline on the submitter) cancels the
    // launch immediately; every other band that does sneak past the
    // band-boundary check dwells briefly, so with 64 bands and a handful
    // of workers the pool cannot start them all before the cancel lands
    // — the tail must be skipped.
    let body = |_band: &mut [f32], i0: usize| {
        ran.fetch_add(1, Relaxed);
        if i0 == 0 {
            token.cancel();
        } else {
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    let result = LaunchPlan::over_items("test.cancel.midflight", &mut data, 1, 64, &body)
        .with_ctx(Ctx::none().with_token(&token))
        .try_launch();
    assert_eq!(
        result,
        Err(ExecError::Cancelled {
            op: "test.cancel.midflight"
        })
    );
    assert!(
        ran.load(Relaxed) < bands,
        "at least one unstarted band must be skipped after the cancel"
    );
}

#[test]
fn watchdog_cancels_a_stalled_band_in_bounded_time() {
    configure_threads(4);
    let stalled = AtomicUsize::new(0);
    let mut data = vec![0.0f32; 4096];
    // Band 0 wedges until cancelled (with a hard cap so a watchdog
    // regression fails the test instead of hanging it); the sibling
    // bands finish instantly, so the stall threshold resolves to the
    // plan's explicit budget.
    let body = |band: &mut [f32], i0: usize| {
        if i0 == 0 {
            stalled.fetch_add(1, Relaxed);
            let hard_cap = Instant::now() + Duration::from_secs(30);
            while !cancel::poll_cancelled() && Instant::now() < hard_cap {
                std::thread::sleep(Duration::from_millis(1));
            }
            return;
        }
        band.fill(1.0);
    };
    let start = Instant::now();
    let result = LaunchPlan::over_items("test.cancel.stall", &mut data, 1, 512, &body)
        .with_stall_budget(Duration::from_millis(50))
        .try_launch();
    let elapsed = start.elapsed();
    assert_eq!(
        result,
        Err(ExecError::DeadlineExceeded {
            op: "test.cancel.stall"
        }),
        "the watchdog must cancel the stalled launch"
    );
    assert_eq!(
        stalled.load(Relaxed),
        1,
        "the stalled band ran exactly once"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "a 50ms stall budget must unwind the launch promptly, took {elapsed:?}"
    );
}

#[test]
fn healthy_launches_pass_under_a_stall_budget() {
    configure_threads(4);
    let mut data: Vec<f32> = (1..=4096).map(|v| v as f32).collect();
    let body = |band: &mut [f32], _i0: usize| {
        for v in band.iter_mut() {
            *v *= 2.0;
        }
    };
    LaunchPlan::over_items("test.cancel.healthy", &mut data, 1, 512, &body)
        .with_stall_budget(Duration::from_secs(5))
        .try_launch()
        .expect("a healthy launch under a generous budget must pass");
    let want = (4096u64 * 4097) as f64; // 2 * sum(1..=n)
    assert_eq!(data.iter().map(|&v| v as f64).sum::<f64>(), want);
}

#[test]
fn error_messages_carry_their_classification_prefix() {
    let cancelled = ExecError::Cancelled { op: "x" };
    let deadline = ExecError::DeadlineExceeded { op: "x" };
    let overloaded = ExecError::Overloaded { op: "x" };
    assert!(cancelled
        .to_string()
        .starts_with(megablocks_exec::CANCELLED_PANIC_PREFIX));
    assert!(deadline
        .to_string()
        .starts_with(megablocks_exec::DEADLINE_PANIC_PREFIX));
    assert!(overloaded
        .to_string()
        .starts_with(megablocks_exec::OVERLOADED_PANIC_PREFIX));
    assert_eq!(cancelled.kind(), Some(CancelKind::Cancelled));
    assert_eq!(deadline.kind(), Some(CancelKind::DeadlineExceeded));
    assert_eq!(overloaded.kind(), Some(CancelKind::Overloaded));
}

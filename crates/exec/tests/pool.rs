//! Pool and launch-plan behavior: panic recovery, nested launches, and
//! the scoped parallelism override.
//!
//! The panic tests are the regression suite for the pool's recovery
//! protocol: a launch whose band panics must re-raise on the submitter
//! with the original payload, and the *next* launch over the same pool
//! must behave normally (no wedged queue, no poisoned lock, no stale
//! completion state).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::{Duration, Instant};

use megablocks_exec::{configure_threads, parallelism, pool, scoped_parallelism, LaunchPlan};

/// Sums `1..=n` through a multi-band plan; the workhorse "normal launch"
/// the panic tests interleave with.
fn banded_sum(n: usize, bands: usize) -> f64 {
    let mut data: Vec<f32> = (1..=n).map(|v| v as f32).collect();
    let body = |band: &mut [f32], _i0: usize| {
        for v in band.iter_mut() {
            *v *= 2.0;
        }
    };
    LaunchPlan::over_items("test.banded_sum", &mut data, 1, n.div_ceil(bands), &body).launch();
    data.iter().map(|&v| v as f64).sum()
}

#[test]
fn plans_partition_and_execute_all_bands() {
    // Pin a parallelism target so the pool exists even on 1-CPU runners.
    configure_threads(4);
    let n = 10_000;
    let want = (n * (n + 1)) as f64; // 2 * sum(1..=n)
    for bands in [1, 2, 3, 7, 16] {
        assert_eq!(banded_sum(n, bands), want, "bands={bands}");
    }
}

#[test]
fn explicit_bands_receive_their_index() {
    configure_threads(4);
    let mut data = vec![0.0f32; 10];
    let lens = vec![3usize, 0, 5, 2];
    let body = |band: &mut [f32], s: usize| {
        for v in band.iter_mut() {
            *v = s as f32;
        }
    };
    LaunchPlan::over_bands("test.explicit", &mut data, lens, &body).launch();
    assert_eq!(
        data,
        [0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 2.0, 2.0, 3.0, 3.0] // band 1 is empty
    );
}

#[test]
fn panicking_band_reraises_payload_and_pool_survives() {
    configure_threads(4);

    // Round 1: a multi-band launch whose first (inline) band panics.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut data = vec![0.0f32; 1000];
        let body = |band: &mut [f32], i0: usize| {
            if i0 == 0 {
                panic!("inline band boom");
            }
            band.fill(1.0);
        };
        LaunchPlan::over_items("test.panic_inline", &mut data, 1, 100, &body).launch();
    }));
    let payload = result.expect_err("inline band panic must re-raise");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .expect("original payload type preserved");
    assert_eq!(msg, "inline band boom");

    // Round 2: a queued (worker-side) band panics instead.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut data = vec![0.0f32; 1000];
        let body = |band: &mut [f32], i0: usize| {
            if i0 == 500 {
                panic!("worker band boom");
            }
            band.fill(1.0);
        };
        LaunchPlan::over_items("test.panic_worker", &mut data, 1, 100, &body).launch();
    }));
    let payload = result.expect_err("worker band panic must re-raise");
    assert_eq!(
        payload.downcast_ref::<&str>().copied(),
        Some("worker band boom")
    );

    // Round 3: the same pool still executes normal launches correctly.
    let n = 10_000;
    assert_eq!(banded_sum(n, 8), (n * (n + 1)) as f64);
}

#[test]
fn nested_launches_run_inline_without_deadlock() {
    configure_threads(4);
    let outer_bands = 8;
    let mut data = vec![0.0f32; 64 * outer_bands];
    let per_band = data.len() / outer_bands;
    let body = |band: &mut [f32], _i0: usize| {
        // A launch from inside a pool task must not wait on the pool's
        // own (busy) workers.
        let inner_body = |inner: &mut [f32], _j0: usize| inner.fill(1.0);
        LaunchPlan::over_items(
            "test.nested_inner",
            band,
            1,
            band.len().div_ceil(4),
            &inner_body,
        )
        .launch();
    };
    LaunchPlan::over_items("test.nested_outer", &mut data, 1, per_band, &body).launch();
    assert!(data.iter().all(|&v| v == 1.0));
}

#[test]
fn scoped_parallelism_overrides_and_restores() {
    configure_threads(4);
    let outside = parallelism();
    let inside = scoped_parallelism(2, || {
        let a = parallelism();
        let nested = scoped_parallelism(7, parallelism);
        (a, nested, parallelism())
    });
    assert_eq!(inside, (2, 7, 2), "override must nest and restore");
    assert_eq!(parallelism(), outside, "override must not leak");
}

#[test]
fn occupancy_gauges_never_underflow() {
    configure_threads(4);
    // Regression test for the signed-and-clamped occupancy mirrors: a
    // probe racing a worker's increment/decrement pair used to be able
    // to observe a `usize` wrapped to an absurd value. Hammer the pool
    // with launches while a sampler thread reads both gauges; every
    // sample must stay within physical bounds.
    let stop = AtomicBool::new(false);
    let workers = pool().workers();
    std::thread::scope(|s| {
        let sampler = s.spawn(|| {
            let mut max_depth = 0usize;
            let mut max_busy = 0usize;
            while !stop.load(Relaxed) {
                max_depth = max_depth.max(pool().queue_depth());
                max_busy = max_busy.max(pool().busy_workers());
            }
            (max_depth, max_busy)
        });
        for _ in 0..200 {
            banded_sum(4096, 8);
        }
        stop.store(true, Relaxed);
        let (max_depth, max_busy) = sampler.join().expect("sampler thread");
        assert!(
            max_depth <= 10_000,
            "queue depth gauge wrapped or leaked: {max_depth}"
        );
        assert!(
            max_busy <= workers,
            "busy gauge exceeded the pool's {workers} workers: {max_busy}"
        );
    });
    // Once the traffic stops, both mirrors drain back to empty. Sibling
    // tests share the pool and may still be launching, so poll for the
    // drained state rather than asserting it instantaneously.
    let settle = Instant::now() + Duration::from_secs(30);
    while (pool().queue_depth() > 0 || pool().busy_workers() > 0) && Instant::now() < settle {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(pool().queue_depth(), 0, "queue mirror must drain to zero");
    assert_eq!(pool().busy_workers(), 0, "busy mirror must drain to zero");
}

#[test]
fn spawn_per_op_baseline_matches_pooled() {
    configure_threads(4);
    let n = 4096;
    let mut pooled: Vec<f32> = (0..n).map(|v| v as f32).collect();
    let mut spawned = pooled.clone();
    let body = |band: &mut [f32], i0: usize| {
        for (i, v) in band.iter_mut().enumerate() {
            *v = v.mul_add(3.0, (i0 + i) as f32);
        }
    };
    LaunchPlan::over_items("test.pooled", &mut pooled, 1, n / 8, &body).launch();
    LaunchPlan::over_items("test.spawned", &mut spawned, 1, n / 8, &body).launch_spawn_per_op();
    assert_eq!(pooled, spawned);
}

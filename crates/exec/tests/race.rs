//! Dynamic race-sanitizer integration tests.
//!
//! Everything here runs only under `--features sanitize` — without it the
//! access-set log compiles out and `try_launch` is always `Ok`. The tests
//! force a single-threaded pool (`configure_threads(1)` → zero workers →
//! tasks run inline in submission order), which makes the seeded
//! schedule-perturbation tests deterministic: the shuffled submission
//! order *is* the execution order.
#![cfg(feature = "sanitize")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Mutex, MutexGuard, OnceLock};

use megablocks_exec::{
    band_order, configure_threads, record_write_span, set_perturbation, ExecError, LaunchPlan,
    RaceViolation, RACE_PANIC_PREFIX,
};

/// Serializes the tests in this file (they mutate the process-wide
/// perturbation seed) and pins the pool to sequential inline execution.
/// Every test must hold the guard for its whole body and leave the seed
/// at 0.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    configure_threads(1);
    set_perturbation(0);
    guard
}

/// band index from the `over_items` body argument (first item index).
fn band_of(first_item: usize, items_per_band: usize) -> usize {
    first_item / items_per_band
}

#[test]
fn disjoint_launch_is_clean() {
    let _guard = serial();
    let mut out = vec![0.0f32; 16];
    let body = |band: &mut [f32], first: usize| {
        for (i, v) in band.iter_mut().enumerate() {
            *v = (first + i) as f32;
        }
    };
    let plan = LaunchPlan::over_items("race.clean", &mut out, 1, 4, &body);
    assert_eq!(plan.bands(), 4);
    assert!(plan.try_launch().is_ok());
    let expect: Vec<f32> = (0..16).map(|i| i as f32).collect();
    assert_eq!(out, expect);
}

#[test]
fn cross_band_overlap_is_detected() {
    let _guard = serial();
    let mut out = vec![0.0f32; 8];
    // Band 1 claims floats 2..4 but also reports a write to float 0,
    // which band 0's auto-recorded slice owns.
    let body = |_band: &mut [f32], first: usize| {
        if band_of(first, 2) == 1 {
            record_write_span(0, 1);
        }
    };
    let err = LaunchPlan::over_items("race.overlap", &mut out, 1, 2, &body)
        .try_launch()
        .expect_err("seeded overlap must be detected");
    match err {
        ExecError::Race(RaceViolation::Overlap {
            op,
            first_band,
            second_band,
            start,
            end,
        }) => {
            assert_eq!(op, "race.overlap");
            assert_eq!((first_band, second_band), (0, 1));
            // floats 0..1 == bytes 0..4
            assert_eq!((start, end), (0, 4));
        }
        other => panic!("expected Overlap, got {other:?}"),
    }
}

#[test]
fn claim_escape_is_detected() {
    let _guard = serial();
    let mut out = vec![0.0f32; 8];
    // Band 1 reports a write past the end of the output — it overlaps no
    // other band's writes, so the overlap sweep stays quiet and the claim
    // cross-check must catch it.
    let body = |_band: &mut [f32], first: usize| {
        if band_of(first, 2) == 1 {
            record_write_span(8, 4);
        }
    };
    let err = LaunchPlan::over_items("race.escape", &mut out, 1, 2, &body)
        .try_launch()
        .expect_err("claim escape must be detected");
    match err {
        ExecError::Race(RaceViolation::ClaimMismatch {
            op,
            band,
            claimed,
            recorded,
        }) => {
            assert_eq!(op, "race.escape");
            assert_eq!(band, 1);
            assert_eq!(claimed, (8, 16));
            assert_eq!(recorded, (32, 48));
        }
        other => panic!("expected ClaimMismatch, got {other:?}"),
    }
}

#[test]
fn launch_panics_with_the_race_prefix() {
    let _guard = serial();
    let mut out = vec![0.0f32; 8];
    let body = |_band: &mut [f32], first: usize| {
        if band_of(first, 2) == 1 {
            record_write_span(0, 2);
        }
    };
    let plan = LaunchPlan::over_items("race.panic", &mut out, 1, 2, &body);
    let payload = catch_unwind(AssertUnwindSafe(|| plan.launch()))
        .expect_err("launch must panic on a detected race");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("race panics carry a formatted String payload");
    assert!(
        message.starts_with(RACE_PANIC_PREFIX),
        "panic message {message:?} must start with {RACE_PANIC_PREFIX:?}"
    );
}

#[test]
fn overlap_reachable_only_under_schedule_perturbation() {
    let _guard = serial();
    const BANDS: usize = 4;
    const ITEMS_PER_BAND: usize = 2;

    // The latent bug: band 0 double-writes into band 1's territory, but
    // only when band 3 already ran — e.g. a kernel that reads a sibling's
    // partial result through a stale index. In the natural submission
    // order band 0 runs first, so the overlap never happens; only a
    // perturbed schedule that places band 3 before band 0 exposes it.
    let run = |seed: u64| -> Result<(), ExecError> {
        set_perturbation(seed);
        let band3_ran = AtomicBool::new(false);
        let body = |_band: &mut [f32], first: usize| match band_of(first, ITEMS_PER_BAND) {
            3 => {
                band3_ran.store(true, SeqCst);
            }
            0 if band3_ran.load(SeqCst) => {
                record_write_span(ITEMS_PER_BAND, 1); // band 1's floats
            }
            _ => {}
        };
        let mut out = vec![0.0f32; BANDS * ITEMS_PER_BAND];
        let result =
            LaunchPlan::over_items("race.perturb", &mut out, 1, ITEMS_PER_BAND, &body).try_launch();
        set_perturbation(0);
        result
    };

    // Natural order: clean.
    assert!(run(0).is_ok(), "unperturbed schedule must not race");

    // Find a seed whose shuffle runs band 3 before band 0 (pure helper,
    // so the test controls the schedule instead of hoping for it).
    let seed = (1..=64)
        .find(|&s| {
            let order = band_order(s, BANDS);
            let pos = |b: usize| order.iter().position(|&x| x == b);
            pos(3) < pos(0)
        })
        .expect("some small seed must order band 3 before band 0");
    match run(seed) {
        Err(ExecError::Race(RaceViolation::Overlap {
            first_band,
            second_band,
            ..
        })) => assert_eq!((first_band, second_band), (0, 1)),
        other => panic!("perturbed schedule (seed {seed}) must race, got {other:?}"),
    }

    // And a seed that keeps band 0 first stays clean.
    if let Some(clean_seed) = (1..=64).find(|&s| {
        let order = band_order(s, BANDS);
        let pos = |b: usize| order.iter().position(|&x| x == b);
        pos(0) < pos(3)
    }) {
        assert!(
            run(clean_seed).is_ok(),
            "seed {clean_seed} keeps band 0 first and must stay clean"
        );
    }
}

#[test]
fn explicit_band_plans_are_monitored_too() {
    let _guard = serial();
    let mut out = vec![0.0f32; 9];
    // Unequal shards, as the expert-parallel path produces. Band 2
    // reports a write into band 0's floats.
    let body = |_band: &mut [f32], band_idx: usize| {
        if band_idx == 2 {
            record_write_span(0, 1);
        }
    };
    let err = LaunchPlan::over_bands("race.explicit", &mut out, vec![2, 3, 4], &body)
        .try_launch()
        .expect_err("explicit-band overlap must be detected");
    match err {
        ExecError::Race(RaceViolation::Overlap {
            first_band,
            second_band,
            ..
        }) => assert_eq!((first_band, second_band), (0, 2)),
        other => panic!("expected Overlap, got {other:?}"),
    }
}

//! Chaos drills for the exec runtime's overload and stall sites.
//!
//! `pool.queue_flood` forces the admission decision a flooded queue
//! would produce, proving the shed/degrade split end to end;
//! `exec.band_stall` parks a band mid-launch, proving the stall watchdog
//! cancels the launch within its budget instead of letting it hang.
#![cfg(feature = "chaos")]

use std::time::{Duration, Instant};

use megablocks_exec::{configure_threads, pool, queue_cap, Ctx, Deadline, ExecError, LaunchPlan};
use megablocks_resilience::{clear_plan, install_plan, report, sites, FaultPlan};

// The fault plan is process-global: chaos tests serialize under a lock
// so installs cannot race each other.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn queue_flood_sheds_latency_bound_launches() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    configure_threads(4);
    install_plan(FaultPlan::seeded(21).at_calls(&sites::POOL_QUEUE_FLOOD, &[0]));

    let mut data = vec![0.0f32; 4096];
    let body = |band: &mut [f32], _i0: usize| band.fill(1.0);
    let ctx = Ctx::none().with_deadline(Deadline::after(Duration::from_secs(3600)));
    let result = LaunchPlan::over_items("test.chaos.flood", &mut data, 1, 512, &body)
        .with_ctx(ctx)
        .try_launch();
    assert_eq!(
        result,
        Err(ExecError::Overloaded {
            op: "test.chaos.flood"
        })
    );
    assert_eq!(report().injected_at(&sites::POOL_QUEUE_FLOOD), 1);
    // The shed launch queued nothing: the bound on queue depth holds
    // through the flood.
    assert!(pool().queue_depth() <= queue_cap());
    clear_plan();
}

#[test]
fn queue_flood_degrades_plain_launches_inline() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    configure_threads(4);
    install_plan(FaultPlan::seeded(22).at_calls(&sites::POOL_QUEUE_FLOOD, &[0]));

    let n = 4096usize;
    let mut data: Vec<f32> = (1..=n).map(|v| v as f32).collect();
    let body = |band: &mut [f32], _i0: usize| {
        for v in band.iter_mut() {
            *v *= 2.0;
        }
    };
    // No deadline: the flooded launch degrades to inline execution and
    // still completes with the right answer.
    LaunchPlan::over_items("test.chaos.flood_plain", &mut data, 1, n / 8, &body)
        .try_launch()
        .expect("plain work must survive a flood by degrading inline");
    assert_eq!(report().injected_at(&sites::POOL_QUEUE_FLOOD), 1);
    let want = (n * (n + 1)) as f64;
    assert_eq!(data.iter().map(|&v| v as f64).sum::<f64>(), want);
    clear_plan();
}

#[test]
fn band_stall_is_cancelled_by_the_watchdog_within_budget() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    configure_threads(4);
    // One band parks for 30 s — far past the 50 ms stall budget. The
    // watchdog must cancel the launch, the parked band must notice via
    // its cancellation poll, and the whole launch must unwind in a small
    // multiple of the budget rather than the injected delay.
    install_plan(
        FaultPlan::seeded(23)
            .at_calls(&sites::EXEC_BAND_STALL, &[0])
            .delay_ms(30_000),
    );

    let mut data = vec![0.0f32; 4096];
    let body = |band: &mut [f32], _i0: usize| band.fill(1.0);
    let start = Instant::now();
    let result = LaunchPlan::over_items("test.chaos.stall", &mut data, 1, 512, &body)
        .with_stall_budget(Duration::from_millis(50))
        .try_launch();
    let elapsed = start.elapsed();
    assert_eq!(
        result,
        Err(ExecError::DeadlineExceeded {
            op: "test.chaos.stall"
        }),
        "the watchdog must cancel the stalled launch"
    );
    assert_eq!(report().injected_at(&sites::EXEC_BAND_STALL), 1);
    assert!(
        elapsed < Duration::from_secs(10),
        "a 50ms budget must unwind a 30s injected stall promptly, took {elapsed:?}"
    );
    clear_plan();
}

//! The persistent worker pool.
//!
//! One pool per process, initialized lazily on the first pooled launch.
//! Worker threads are spawned once and live for the lifetime of the
//! process, so a kernel launch costs a queue push + condvar wake instead
//! of `threads` fresh OS thread spawns — the CPU analogue of the paper's
//! cheap kernel launches iterating precomputed metadata (§5.1.3).
//!
//! Panic safety: a panicking task is caught on the worker, its payload is
//! parked in the launch's shared state, and the *submitter* re-raises it
//! after every task of the launch has finished. Workers never unwind, so
//! one poisoned launch cannot wedge the queue or leak a lock; the next
//! launch sees a clean pool.
//!
//! Admission is bounded: a launch that would push the queue past the
//! configured depth cap ([`configure_queue_cap`] / `MEGABLOCKS_QUEUE_CAP`)
//! is rejected with its tasks handed back, and the launch plan decides
//! whether to shed it explicitly (deadline-bound work) or degrade to
//! inline execution (plain work — the queue stays bounded either way).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use megablocks_telemetry as telemetry;

/// A unit of work queued on the pool. Tasks are lifetime-erased closures;
/// the submitting thread blocks until every task of its launch completed,
/// which is what makes the erasure sound (see [`Pool::run`]).
type Job = Box<dyn FnOnce() + Send>;

/// State shared by the pool's workers.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Workers currently executing a task (pool occupancy). Signed so a
    /// torn read interleaved with a worker's increment/decrement pair can
    /// only ever look *negative* — which the accessor clamps — instead of
    /// wrapping a `usize` to an absurd occupancy.
    busy: AtomicIsize,
    /// Tasks currently queued, mirrored outside the mutex so occupancy
    /// probes never contend with the dispatch hot path. Signed and
    /// clamped on read for the same reason as `busy`.
    queued: AtomicIsize,
}

/// Completion tracking for one launch: the submitter waits on `done`
/// until `remaining` queued tasks have finished; the first worker panic
/// is parked in `panic` for the submitter to re-raise.
struct LaunchState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl LaunchState {
    fn new(remaining: usize) -> Self {
        LaunchState {
            remaining: Mutex::new(remaining),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Marks one task finished (storing `payload` if it panicked first).
    fn finish(&self, payload: Option<Box<dyn Any + Send + 'static>>) {
        if let Some(p) = payload {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(p);
        }
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every queued task of the launch has finished.
    fn wait(&self) {
        let mut remaining = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *remaining > 0 {
            remaining = self.done.wait(remaining).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The parked panic payload, if any task panicked.
    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.panic.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// The persistent worker pool. Obtain the process-wide instance with
/// [`pool`]; plans submit through [`Pool::run`].
pub struct Pool {
    shared: Arc<Shared>,
    /// Background workers spawned (the submitting thread is the
    /// `target`-th executor, so this is `target - 1`).
    workers: usize,
}

thread_local! {
    /// Set on pool worker threads: launches submitted from inside a task
    /// run inline to keep nested launches deadlock-free.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread parallelism override installed by [`scoped_parallelism`].
    static PARALLELISM_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Parallelism target requested via [`configure_threads`] before first
/// use (0 = unset).
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

/// The resolved process-wide parallelism target.
static TARGET: OnceLock<usize> = OnceLock::new();

/// The process-wide pool (spawned lazily, on the first pooled launch).
static POOL: OnceLock<Pool> = OnceLock::new();

/// Queue-depth cap requested via [`configure_queue_cap`] before first
/// use, stored as `cap + 1` so a configured cap of zero is
/// distinguishable from unset.
static CONFIGURED_QUEUE_CAP: AtomicUsize = AtomicUsize::new(0);

/// The resolved process-wide queue-depth cap.
static QUEUE_CAP: OnceLock<usize> = OnceLock::new();

/// Default queue-depth cap: generous for kernel fan-out (a launch queues
/// at most `parallelism - 1` bands) while bounding memory and latency
/// when many submitters flood the pool at once.
const DEFAULT_QUEUE_CAP: usize = 1024;

/// Requests a process-wide parallelism target, overriding the
/// `MEGABLOCKS_THREADS` environment variable and the detected CPU count.
///
/// Returns `false` if the runtime already resolved its target (the pool
/// keeps its original configuration in that case).
pub fn configure_threads(threads: usize) -> bool {
    CONFIGURED.store(threads.max(1), Relaxed);
    TARGET.get().is_none()
}

/// Requests a process-wide queue-depth cap (0 = never queue; every
/// multi-band launch degrades or sheds), overriding the
/// `MEGABLOCKS_QUEUE_CAP` environment variable and the default.
///
/// Returns `false` if the runtime already resolved its cap (the original
/// configuration is kept in that case).
pub fn configure_queue_cap(cap: usize) -> bool {
    CONFIGURED_QUEUE_CAP.store(cap.saturating_add(1), Relaxed);
    QUEUE_CAP.get().is_none()
}

/// The resolved queue-depth cap: explicit [`configure_queue_cap`], then
/// the `MEGABLOCKS_QUEUE_CAP` environment variable, then
/// [`DEFAULT_QUEUE_CAP`].
pub fn queue_cap() -> usize {
    *QUEUE_CAP.get_or_init(|| {
        let configured = CONFIGURED_QUEUE_CAP.load(Relaxed);
        if configured > 0 {
            return configured - 1;
        }
        if let Ok(v) = std::env::var("MEGABLOCKS_QUEUE_CAP") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n;
            }
        }
        DEFAULT_QUEUE_CAP
    })
}

/// Resolves the parallelism target: explicit [`configure_threads`] call,
/// then the `MEGABLOCKS_THREADS` environment variable, then the detected
/// CPU count. Never less than 1.
fn resolve_target() -> usize {
    let configured = CONFIGURED.load(Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("MEGABLOCKS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// The process-wide parallelism target (workers + submitter), honoring a
/// [`scoped_parallelism`] override on the current thread. Launch-plan
/// builders use this to size their band partitions; it never spawns the
/// pool by itself.
pub fn parallelism() -> usize {
    let override_n = PARALLELISM_OVERRIDE.with(Cell::get);
    if override_n > 0 {
        return override_n;
    }
    *TARGET.get_or_init(resolve_target)
}

/// Band count for a kernel with `work` fused multiply-adds (or moved
/// elements): 1 below `threshold` — launch overhead would dominate —
/// otherwise the full [`parallelism`] target.
pub fn parallelism_for(work: usize, threshold: usize) -> usize {
    if work < threshold {
        1
    } else {
        parallelism()
    }
}

/// Runs `f` with the parallelism target pinned to `threads` on this
/// thread (nested scopes restore the previous value). Launches submitted
/// inside still execute on the shared pool, but plans partition their
/// output for `threads` bands — the hook the determinism suite uses to
/// prove band count does not change results.
pub fn scoped_parallelism<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            PARALLELISM_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let previous = PARALLELISM_OVERRIDE.with(|c| c.replace(threads.max(1)));
    let _restore = Restore(previous);
    f()
}

/// Whether the current thread is a pool worker (nested launches run
/// inline).
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// The process-wide pool, spawning its workers on first use.
pub fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool::new(*TARGET.get_or_init(resolve_target)))
}

/// A launch handed back by bounded admission: queueing its tasks would
/// have pushed the queue past `cap`. The tasks are returned untouched so
/// the caller can run them inline or drop them.
pub(crate) struct Rejected<'scope> {
    /// The launch's tasks, in submission order.
    pub tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    /// Queue depth observed at the admission decision.
    pub depth: usize,
    /// The cap the launch was held to.
    pub cap: usize,
}

impl Pool {
    fn new(target: usize) -> Self {
        let workers = target.saturating_sub(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            busy: AtomicIsize::new(0),
            queued: AtomicIsize::new(0),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("megablocks-exec-{i}"))
                .spawn(move || worker_loop(&shared));
            // A failed spawn degrades parallelism but not correctness:
            // remaining workers (or the submitter) drain the queue.
            drop(spawned);
        }
        telemetry::gauge("exec.pool.workers").set(workers as f64);
        Pool { shared, workers }
    }

    /// Background worker threads owned by the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Tasks currently queued (for tests and occupancy metrics). Read
    /// from the lock-free mirror and clamped at zero: a probe racing a
    /// worker wakeup may observe the decrement before the matching
    /// enqueue count, and a transient `-1` must read as empty, not as
    /// `usize::MAX`.
    pub fn queue_depth(&self) -> usize {
        self.shared.queued.load(Relaxed).max(0) as usize
    }

    /// Workers currently executing a task, clamped at zero against the
    /// same torn-interleaving reads as [`Pool::queue_depth`].
    pub fn busy_workers(&self) -> usize {
        self.shared.busy.load(Relaxed).max(0) as usize
    }

    /// Executes `tasks` to completion, one per band of a launch plan.
    ///
    /// The first task runs on the calling thread; the rest are queued for
    /// the workers. The call returns only after *every* task finished —
    /// even when one panics — so tasks may freely borrow the caller's
    /// stack. If any task panicked, the first payload is re-raised on the
    /// caller once all sibling tasks are done (their borrows must outlive
    /// the unwind).
    ///
    /// Launches submitted from inside a pool task, and launches with a
    /// single task or on a worker-less pool, run inline on the calling
    /// thread; panics then propagate directly.
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        if let Err(rejected) = self.submit(tasks, None) {
            // Uncapped submission cannot be rejected; run the launch
            // inline rather than lose it if that invariant ever breaks.
            for task in rejected.tasks {
                task();
            }
        }
    }

    /// Executes `tasks` like [`Pool::run`], but under bounded admission:
    /// if queueing them would push the queue past [`queue_cap`], nothing
    /// is queued and the tasks come back in [`Rejected`] for the caller
    /// to shed or degrade.
    pub(crate) fn try_run<'scope>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
    ) -> Result<(), Rejected<'scope>> {
        self.submit(tasks, Some(queue_cap()))
    }

    /// The submission path shared by [`Pool::run`] (uncapped) and
    /// [`Pool::try_run`] (capped). The admission decision is taken under
    /// the queue lock, so the cap is exact even with many concurrent
    /// submitters.
    fn submit<'scope>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
        cap: Option<usize>,
    ) -> Result<(), Rejected<'scope>> {
        let queued = tasks.len().saturating_sub(1);
        if queued == 0 || self.workers == 0 || in_worker() {
            for task in tasks {
                task();
            }
            return Ok(());
        }

        let state = Arc::new(LaunchState::new(queued));
        let enqueued_us = telemetry::trace_now_us();
        let first;
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = cap {
                let depth = queue.len();
                if depth + queued > cap {
                    drop(queue);
                    return Err(Rejected { tasks, depth, cap });
                }
            }
            let mut tasks = tasks.into_iter();
            first = match tasks.next() {
                Some(t) => t,
                None => return Ok(()),
            };
            for task in tasks {
                // SAFETY: the erased closure borrows from the caller's
                // stack frame ('scope). This function does not return —
                // normally or by unwinding — until `state` confirms the
                // task ran to completion (`wait` below runs even when the
                // inline task panics), so every borrow strictly outlives
                // the task's execution.
                let task: Box<dyn FnOnce() + Send + 'static> = unsafe { erase_lifetime(task) };
                let state = Arc::clone(&state);
                queue.push_back(Box::new(move || {
                    // Queue wait: enqueue → the moment a worker dequeued
                    // and started this task. Shows up on the worker's
                    // trace lane right before the band interval.
                    let started_us = telemetry::trace_now_us();
                    telemetry::trace_complete(
                        "exec.queue_wait",
                        enqueued_us,
                        started_us.saturating_sub(enqueued_us),
                    );
                    let payload = catch_unwind(AssertUnwindSafe(task)).err();
                    state.finish(payload);
                }));
            }
            self.shared.queued.fetch_add(queued as isize, Relaxed);
            telemetry::gauge("exec.pool.queue_depth").set(queue.len() as f64);
        }
        self.shared.available.notify_all();

        // Run the first band here: the submitter is the pool's extra
        // executor. Capture its panic so queued siblings can finish
        // before the stack unwinds past their borrows.
        let inline_panic = catch_unwind(AssertUnwindSafe(first)).err();
        state.wait();
        if let Some(p) = inline_panic.or_else(|| state.take_panic()) {
            resume_unwind(p);
        }
        Ok(())
    }
}

/// Erases the borrow lifetime of a queued task.
///
/// # Safety
///
/// The caller must guarantee the task finishes executing before any
/// borrow captured in it ends — [`Pool::run`] does so by blocking until
/// the launch's completion count reaches zero.
// SAFETY: declaring this fn unsafe delegates the outlives proof to the
// caller; see the function docs above for the exact contract.
unsafe fn erase_lifetime<'scope>(
    task: Box<dyn FnOnce() + Send + 'scope>,
) -> Box<dyn FnOnce() + Send + 'static> {
    // SAFETY: identical vtable layout; only the borrow lifetime changes,
    // and the caller upholds the outlives contract documented above.
    unsafe { std::mem::transmute(task) }
}

/// Worker main loop: pop a task, run it, repeat. Tasks are already
/// panic-wrapped, so the loop never unwinds and the pool never poisons.
fn worker_loop(shared: &Shared) {
    IN_WORKER.with(|c| c.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.queued.fetch_sub(1, Relaxed);
                    telemetry::gauge("exec.pool.queue_depth").set(queue.len() as f64);
                    break job;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let busy = shared.busy.fetch_add(1, Relaxed) + 1;
        telemetry::gauge("exec.pool.busy_workers").set(busy.max(0) as f64);
        telemetry::counter("exec.pool.tasks").inc();
        job();
        shared.busy.fetch_sub(1, Relaxed);
    }
}

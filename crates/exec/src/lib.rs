//! Unified execution runtime for MegaBlocks-RS.
//!
//! The paper's performance story rests on kernels that *launch cheaply*
//! and iterate over precomputed metadata (§5.1.3–5.1.4); this crate is
//! the CPU stand-in's version of that contract. It owns the three pieces
//! every kernel in the workspace shares:
//!
//! * **A persistent worker pool** ([`pool`], [`Pool`]) — spawned once,
//!   sized by [`configure_threads`] or the `MEGABLOCKS_THREADS`
//!   environment variable (falling back to the CPU count), and reused by
//!   every launch for the lifetime of the process. A panicking task is
//!   re-raised on the submitter without poisoning or wedging the pool.
//! * **First-class launch plans** ([`LaunchPlan`]) — a disjoint band
//!   partition of an output slice plus a per-band body. The sparse
//!   SDD/DSD/DDS kernels, the dense GEMM and the expert-parallel shard
//!   loop all launch through this one abstraction; under
//!   `--features sanitize` every plan's geometry is proven to tile its
//!   output before a worker touches it.
//! * **Reusable workspaces** ([`workspace`], [`Workspace`]) — a
//!   per-thread buffer arena so kernel outputs and scratch reuse storage
//!   across calls within a training step instead of round-tripping
//!   through the allocator.
//!
//! Pool occupancy, queue depth, launch counts and workspace hit rates
//! are reported through `megablocks-telemetry` (`exec.*` metrics).

#![deny(missing_docs)]

mod plan;
mod pool;
pub mod workspace;

pub use plan::LaunchPlan;
pub use pool::{configure_threads, parallelism, parallelism_for, pool, scoped_parallelism, Pool};
pub use workspace::{Workspace, WorkspaceStats};

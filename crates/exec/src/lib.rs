//! Unified execution runtime for MegaBlocks-RS.
//!
//! The paper's performance story rests on kernels that *launch cheaply*
//! and iterate over precomputed metadata (§5.1.3–5.1.4); this crate is
//! the CPU stand-in's version of that contract. It owns the three pieces
//! every kernel in the workspace shares:
//!
//! * **A persistent worker pool** ([`pool`], [`Pool`]) — spawned once,
//!   sized by [`configure_threads`] or the `MEGABLOCKS_THREADS`
//!   environment variable (falling back to the CPU count), and reused by
//!   every launch for the lifetime of the process. A panicking task is
//!   re-raised on the submitter without poisoning or wedging the pool.
//! * **First-class launch plans** ([`LaunchPlan`]) — a disjoint band
//!   partition of an output slice plus a per-band body. The sparse
//!   SDD/DSD/DDS kernels, the dense GEMM and the expert-parallel shard
//!   loop all launch through this one abstraction; under
//!   `--features sanitize` every plan's geometry is proven to tile its
//!   output before a worker touches it.
//! * **Reusable workspaces** ([`workspace`], [`Workspace`]) — a
//!   per-thread buffer arena so kernel outputs and scratch reuse storage
//!   across calls within a training step instead of round-tripping
//!   through the allocator.
//!
//! * **A dynamic race sanitizer** ([`RaceViolation`], [`record_write`],
//!   [`set_perturbation`]) — under `--features sanitize`, every
//!   multi-band launch records its empirical per-band write sets and the
//!   submitter proves them pairwise disjoint and inside the geometry's
//!   claims after the launch; a seeded schedule-perturbation mode
//!   shuffles band submission order to flush out order-dependent
//!   overlaps. Violations surface from [`LaunchPlan::try_launch`] or as
//!   panics prefixed with [`RACE_PANIC_PREFIX`].
//!
//! * **Deadlines, cancellation & overload control** ([`cancel`],
//!   [`CancelToken`], [`Deadline`], [`Ctx`], [`ExecError`]) — every
//!   launch runs under a cancellation context (explicit or inherited
//!   from the thread), checked cooperatively at band boundaries and
//!   inside the tiled microkernel's panel loop; a background watchdog
//!   ([`configure_stall_budget`] / `MEGABLOCKS_STALL_MS`) cancels
//!   launches whose bands stall past a median-based budget; and pool
//!   admission is bounded ([`configure_queue_cap`] /
//!   `MEGABLOCKS_QUEUE_CAP`) with explicit load shedding for
//!   latency-bound launches.
//!
//! Pool occupancy, queue depth, launch counts and workspace hit rates
//! are reported through `megablocks-telemetry` (`exec.*` metrics).

#![deny(missing_docs)]

pub mod cancel;
mod plan;
mod pool;
mod sanitizer;
mod watchdog;
pub mod workspace;

pub use cancel::{
    CancelKind, CancelToken, Ctx, Deadline, ExecError, CANCELLED_PANIC_PREFIX,
    DEADLINE_PANIC_PREFIX, OVERLOADED_PANIC_PREFIX,
};
pub use plan::LaunchPlan;
pub use pool::{
    configure_queue_cap, configure_threads, parallelism, parallelism_for, pool, queue_cap,
    scoped_parallelism, Pool,
};
pub use sanitizer::{
    band_order, perturbation_seed, record_write, record_write_span, set_perturbation, stall_slots,
    RaceViolation, RACE_PANIC_PREFIX,
};
pub use watchdog::{configure_stall_budget, stall_budget};
pub use workspace::{
    configure_workspace_cap, workspace_cap, Workspace, WorkspaceStats, MAX_WORKSPACE_CAP,
};

//! Cooperative cancellation, deadlines, and execution contexts.
//!
//! A [`CancelToken`] is a cheap shared flag (one relaxed atomic load to
//! poll) that marks in-flight work as abandoned; [`Deadline`] is a fixed
//! point in time after which work should stop. Both travel together in a
//! [`Ctx`], which a [`crate::LaunchPlan`] carries explicitly
//! ([`crate::LaunchPlan::with_ctx`]) or inherits from the submitting
//! thread's ambient context (installed with [`enter`]). Band tasks
//! re-install the context on whichever worker runs them, so the tiled
//! microkernel's panel loop can poll [`poll_cancelled`] without any
//! plumbing through the kernel signatures.
//!
//! Cancellation is *cooperative*: nothing preempts a running band.
//! Instead the runtime checks the context at band boundaries and inside
//! the packed-panel loop, so an abandoned launch unwinds within one
//! panel's worth of work per in-flight band and skips every band that
//! has not started. The launch then reports a structured
//! [`ExecError::Cancelled`] / [`ExecError::DeadlineExceeded`] instead of
//! running to completion.
//!
//! Tokens are hierarchical: [`CancelToken::child`] makes a token that
//! trips when either it *or any ancestor* is cancelled, so a trainer can
//! hold one root token and hand independent sub-tokens to each step.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sanitizer::RaceViolation;

/// Panic-message prefix for launches aborted by an explicit cancel.
/// [`crate::LaunchPlan::launch`] panics with it; the fault-tolerant
/// trainer classifies such panics as non-retryable (retrying cancelled
/// work cannot succeed — someone asked for it to stop).
pub const CANCELLED_PANIC_PREFIX: &str = "exec: cancelled";

/// Panic-message prefix for launches aborted by an expired deadline or
/// the stall watchdog. The fault-tolerant trainer classifies such panics
/// as retryable-with-fresh-deadline.
pub const DEADLINE_PANIC_PREFIX: &str = "exec: deadline";

/// Panic-message prefix for launches shed by the pool's bounded
/// admission instead of queueing past the configured depth cap.
pub const OVERLOADED_PANIC_PREFIX: &str = "exec: overloaded";

/// Token state: work may proceed.
const LIVE: u8 = 0;
/// Token state: explicitly cancelled.
const CANCELLED: u8 = 1;
/// Token state: cancelled because a deadline passed (or the watchdog
/// declared a band stalled).
const DEADLINE: u8 = 2;

/// Why in-flight work was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelKind {
    /// An explicit [`CancelToken::cancel`] (or an ancestor's).
    Cancelled,
    /// A [`Deadline`] expired, or the stall watchdog fired.
    DeadlineExceeded,
    /// The pool's bounded admission shed the launch under overload.
    Overloaded,
}

impl CancelKind {
    /// Short label used for `exec.cancelled` / `exec.shed` counters.
    pub fn label(self) -> &'static str {
        match self {
            CancelKind::Cancelled => "cancelled",
            CancelKind::DeadlineExceeded => "deadline",
            CancelKind::Overloaded => "overloaded",
        }
    }

    /// The panic-message prefix a panicking launch uses for this kind —
    /// the stable string upper layers classify retryability by.
    pub fn panic_prefix(self) -> &'static str {
        match self {
            CancelKind::Cancelled => CANCELLED_PANIC_PREFIX,
            CancelKind::DeadlineExceeded => DEADLINE_PANIC_PREFIX,
            CancelKind::Overloaded => OVERLOADED_PANIC_PREFIX,
        }
    }
}

struct TokenInner {
    state: AtomicU8,
    parent: Option<Arc<TokenInner>>,
}

impl TokenInner {
    /// The first non-live state found walking up the ancestor chain.
    fn kind(&self) -> Option<CancelKind> {
        let mut node = self;
        loop {
            match node.state.load(Relaxed) {
                CANCELLED => return Some(CancelKind::Cancelled),
                DEADLINE => return Some(CancelKind::DeadlineExceeded),
                _ => {}
            }
            match &node.parent {
                Some(parent) => node = parent,
                None => return None,
            }
        }
    }
}

/// A shared cancellation flag. Cloning shares the flag; use
/// [`CancelToken::child`] for a token that also observes this one.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A fresh, live token with no ancestors.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(LIVE),
                parent: None,
            }),
        }
    }

    /// A child token: cancelled when it *or any ancestor* is cancelled,
    /// while cancelling the child leaves the parent (and siblings) live.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                state: AtomicU8::new(LIVE),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Marks the token cancelled. Idempotent; never downgrades a
    /// deadline-cancellation already recorded.
    pub fn cancel(&self) {
        let _ = self
            .inner
            .state
            .compare_exchange(LIVE, CANCELLED, Relaxed, Relaxed);
    }

    /// Marks the token cancelled by deadline/stall — the watchdog's and
    /// deadline enforcement's flavor of [`CancelToken::cancel`].
    pub fn cancel_deadline(&self) {
        let _ = self
            .inner
            .state
            .compare_exchange(LIVE, DEADLINE, Relaxed, Relaxed);
    }

    /// Whether this token or any ancestor has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.kind().is_some()
    }

    /// Why this token (or an ancestor) was cancelled, if it was.
    pub fn kind(&self) -> Option<CancelKind> {
        self.inner.kind()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("kind", &self.kind())
            .finish()
    }
}

/// A fixed point in time after which work should stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// The cancellation/deadline context a launch runs under. Empty by
/// default ([`Ctx::none`]) — and an empty context costs nothing: every
/// poll short-circuits on a `None` check.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    token: Option<CancelToken>,
    deadline: Option<Deadline>,
}

impl Ctx {
    /// The empty context: no token, no deadline, zero-cost polls.
    pub fn none() -> Self {
        Ctx::default()
    }

    /// Adds (a clone of) a cancel token to the context.
    pub fn with_token(mut self, token: &CancelToken) -> Self {
        self.token = Some(token.clone());
        self
    }

    /// Adds a deadline to the context.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The context's cancel token, if any.
    pub fn token(&self) -> Option<&CancelToken> {
        self.token.as_ref()
    }

    /// The context's deadline, if any.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// Whether the context carries neither token nor deadline.
    pub fn is_empty(&self) -> bool {
        self.token.is_none() && self.deadline.is_none()
    }

    /// Why work under this context should stop, if it should: a tripped
    /// token wins over an expired deadline (it fired first).
    pub fn status(&self) -> Option<CancelKind> {
        if let Some(token) = &self.token {
            if let Some(kind) = token.kind() {
                return Some(kind);
            }
        }
        match &self.deadline {
            Some(d) if d.expired() => Some(CancelKind::DeadlineExceeded),
            _ => None,
        }
    }
}

thread_local! {
    /// The ambient context of the current thread: installed by [`enter`]
    /// on submitters and re-installed per band on workers.
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// RAII guard restoring the previous ambient context on drop.
pub struct CtxScope {
    /// `None` when [`enter`] was a no-op (empty context).
    prev: Option<Option<Ctx>>,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Installs `ctx` as the current thread's ambient context until the
/// returned guard drops. Launch plans built without an explicit
/// [`crate::LaunchPlan::with_ctx`] inherit the ambient context, so one
/// `enter` at (say) the trainer step covers every nested kernel launch.
///
/// Entering an *empty* context is a no-op (the previous ambient context,
/// if any, stays installed) — wrappers can unconditionally enter their
/// optional context without masking an outer deadline.
pub fn enter(ctx: &Ctx) -> CtxScope {
    if ctx.is_empty() {
        return CtxScope { prev: None };
    }
    let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx.clone()));
    CtxScope { prev: Some(prev) }
}

/// The current thread's ambient context (empty if none installed).
pub fn current() -> Ctx {
    CURRENT.with(|c| c.borrow().clone().unwrap_or_default())
}

/// Cooperative cancellation point: whether the ambient context wants the
/// current work abandoned. With no ambient context installed this is one
/// thread-local read — cheap enough for kernel panel loops.
pub fn poll_cancelled() -> bool {
    CURRENT.with(|c| match &*c.borrow() {
        Some(ctx) => ctx.status().is_some(),
        None => false,
    })
}

/// Why a launch did not run to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The context's cancel token (or an ancestor) was cancelled.
    Cancelled {
        /// The launching op.
        op: &'static str,
    },
    /// The context's deadline passed, or the stall watchdog fired.
    DeadlineExceeded {
        /// The launching op.
        op: &'static str,
    },
    /// The pool's bounded admission shed the launch (queue at cap) and
    /// the context was latency-bound, so degrading inline was wrong.
    Overloaded {
        /// The launching op.
        op: &'static str,
    },
    /// The dynamic race sanitizer detected a band-write violation
    /// (`--features sanitize` only).
    Race(RaceViolation),
}

impl ExecError {
    /// The abort kind, when the error is a cancellation flavor
    /// (`None` for race violations).
    pub fn kind(&self) -> Option<CancelKind> {
        match self {
            ExecError::Cancelled { .. } => Some(CancelKind::Cancelled),
            ExecError::DeadlineExceeded { .. } => Some(CancelKind::DeadlineExceeded),
            ExecError::Overloaded { .. } => Some(CancelKind::Overloaded),
            ExecError::Race(_) => None,
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Cancelled { op } => {
                write!(
                    f,
                    "{CANCELLED_PANIC_PREFIX}: {op} abandoned at a cancellation point"
                )
            }
            ExecError::DeadlineExceeded { op } => {
                write!(f, "{DEADLINE_PANIC_PREFIX}: {op} exceeded its deadline")
            }
            ExecError::Overloaded { op } => {
                write!(
                    f,
                    "{OVERLOADED_PANIC_PREFIX}: {op} shed at the pool queue cap"
                )
            }
            ExecError::Race(violation) => violation.fmt(f),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cancel_is_sticky_and_typed() {
        let token = CancelToken::new();
        assert_eq!(token.kind(), None);
        token.cancel();
        assert_eq!(token.kind(), Some(CancelKind::Cancelled));
        // Never downgraded or re-flavored after the fact.
        token.cancel_deadline();
        assert_eq!(token.kind(), Some(CancelKind::Cancelled));
    }

    #[test]
    fn child_tokens_observe_ancestors_not_vice_versa() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        child.cancel();
        assert!(!root.is_cancelled(), "cancel must not propagate upward");
        assert!(grandchild.is_cancelled(), "cancel must propagate downward");
        assert_eq!(grandchild.kind(), Some(CancelKind::Cancelled));
    }

    #[test]
    fn deadline_expiry_and_ctx_status() {
        let live = Ctx::none().with_deadline(Deadline::after(Duration::from_secs(3600)));
        assert_eq!(live.status(), None);
        let expired = Ctx::none().with_deadline(Deadline::after(Duration::ZERO));
        assert_eq!(expired.status(), Some(CancelKind::DeadlineExceeded));
        assert_eq!(
            expired.deadline().map(|d| d.remaining()),
            Some(Duration::ZERO)
        );
    }

    #[test]
    fn ambient_scopes_nest_and_restore() {
        assert!(!poll_cancelled(), "no ambient context installed");
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let outer = Ctx::none().with_token(&cancelled);
        {
            let _outer = enter(&outer);
            assert!(poll_cancelled());
            {
                // Empty contexts do not mask the outer scope.
                let _noop = enter(&Ctx::none());
                assert!(poll_cancelled());
                // A live inner context does replace it.
                let _inner = enter(&Ctx::none().with_token(&CancelToken::new()));
                assert!(!poll_cancelled());
            }
            assert!(poll_cancelled(), "inner scope must restore on drop");
            assert_eq!(current().status(), Some(CancelKind::Cancelled));
        }
        assert!(!poll_cancelled(), "outer scope must restore on drop");
    }

    #[test]
    fn error_messages_start_with_their_classification_prefix() {
        let c = ExecError::Cancelled { op: "t" }.to_string();
        let d = ExecError::DeadlineExceeded { op: "t" }.to_string();
        let o = ExecError::Overloaded { op: "t" }.to_string();
        assert!(c.starts_with(CANCELLED_PANIC_PREFIX), "{c}");
        assert!(d.starts_with(DEADLINE_PANIC_PREFIX), "{d}");
        assert!(o.starts_with(OVERLOADED_PANIC_PREFIX), "{o}");
        assert_eq!(
            ExecError::Cancelled { op: "t" }.kind(),
            Some(CancelKind::Cancelled)
        );
    }
}

//! Reusable kernel workspaces.
//!
//! Every kernel in the workspace produces a freshly sized `f32` buffer
//! (sparse outputs, dense outputs, permutation targets, weight-gradient
//! scratch). Allocating those from the global allocator on every call
//! wastes the very launch latency the pool saves, so the runtime keeps a
//! per-thread [`Workspace`] arena: [`take_zeroed`] hands out a recycled
//! buffer when one of sufficient capacity is shelved, and call sites
//! return short-lived buffers with [`recycle`] once their contents died
//! (e.g. a weight gradient after it has been accumulated). Within a
//! training step the same few buffers then ping-pong between kernels
//! instead of round-tripping through `malloc`.
//!
//! The arena is thread-local, so pool workers and the submitting thread
//! each reuse their own buffers without any locking; a buffer recycled
//! on a worker serves that worker's next allocation.

use std::cell::RefCell;
use std::collections::BTreeMap;

use megablocks_telemetry as telemetry;

/// Upper bound on floats a thread's arena will hold before it starts
/// dropping recycled buffers (64 MiB of `f32`s) — a backstop against
/// pathological workloads hoarding memory, not a tuning knob.
const MAX_HELD_FLOATS: usize = 16 << 20;

/// A size-bucketed arena of reusable `f32` buffers.
///
/// Normally used through the thread-local instance via [`take_zeroed`] /
/// [`recycle`]; owning one directly is useful in tests.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Shelved buffers keyed by capacity (each key holds a stack).
    shelves: BTreeMap<usize, Vec<Vec<f32>>>,
    held_floats: usize,
    hits: u64,
    misses: u64,
}

/// Counters describing one thread's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Allocations served from a shelved buffer.
    pub hits: u64,
    /// Allocations that fell through to the global allocator.
    pub misses: u64,
    /// Buffers currently shelved.
    pub held_buffers: usize,
    /// Total floats currently shelved.
    pub held_floats: usize,
}

impl Workspace {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A zeroed buffer of exactly `len` floats, reusing the smallest
    /// shelved buffer whose capacity suffices.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let shelf = self
            .shelves
            .range_mut(len..)
            .next()
            .map(|(&cap, stack)| (cap, stack.pop()));
        if let Some((cap, Some(mut buf))) = shelf {
            if self.shelves.get(&cap).is_some_and(Vec::is_empty) {
                self.shelves.remove(&cap);
            }
            self.held_floats -= buf.capacity();
            buf.clear();
            buf.resize(len, 0.0);
            self.hits += 1;
            telemetry::counter("exec.workspace.hits").inc();
            telemetry::trace_counter_event("exec.workspace.hits", self.hits as f64);
            buf
        } else {
            self.misses += 1;
            telemetry::counter("exec.workspace.misses").inc();
            // A miss is the interesting event on a timeline: it marks a
            // cold allocation inside a step that should be steady-state.
            telemetry::trace_instant("exec.workspace.miss");
            telemetry::trace_counter_event("exec.workspace.misses", self.misses as f64);
            vec![0.0; len]
        }
    }

    /// Shelves `buf` for reuse (dropped instead if it has no capacity or
    /// the arena is at its holding limit).
    pub fn recycle(&mut self, buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 || self.held_floats + cap > MAX_HELD_FLOATS {
            return;
        }
        self.held_floats += cap;
        self.shelves.entry(cap).or_default().push(buf);
    }

    /// Counters describing the arena.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.hits,
            misses: self.misses,
            held_buffers: self.shelves.values().map(Vec::len).sum(),
            held_floats: self.held_floats,
        }
    }

    /// Drops every shelved buffer (counters are kept).
    pub fn clear(&mut self) {
        self.shelves.clear();
        self.held_floats = 0;
    }
}

thread_local! {
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// A zeroed buffer of `len` floats from the current thread's arena.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    WORKSPACE.with(|w| w.borrow_mut().take_zeroed(len))
}

/// Returns a buffer to the current thread's arena for reuse.
pub fn recycle(buf: Vec<f32>) {
    WORKSPACE.with(|w| w.borrow_mut().recycle(buf));
}

/// Counters for the current thread's arena.
pub fn stats() -> WorkspaceStats {
    WORKSPACE.with(|w| w.borrow().stats())
}

/// Drops every buffer shelved on the current thread.
pub fn clear() {
    WORKSPACE.with(|w| w.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_a_hit_and_buffers_are_zeroed() {
        let mut ws = Workspace::new();
        let mut a = ws.take_zeroed(16);
        a.iter_mut().for_each(|v| *v = 7.0);
        let cap = a.capacity();
        ws.recycle(a);
        assert_eq!(ws.stats().held_buffers, 1);

        let b = ws.take_zeroed(10);
        assert!(b.capacity() >= 10 && b.capacity() <= cap.max(10));
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer not zeroed");
        let s = ws.stats();
        assert_eq!((s.hits, s.misses, s.held_buffers), (1, 1, 0));
    }

    #[test]
    fn undersized_shelves_are_skipped() {
        let mut ws = Workspace::new();
        ws.recycle(Vec::with_capacity(4));
        let b = ws.take_zeroed(64);
        assert_eq!(b.len(), 64);
        assert_eq!(ws.stats().misses, 1);
        assert_eq!(ws.stats().held_buffers, 1, "small buffer stays shelved");
    }

    #[test]
    fn clear_empties_the_arena() {
        let mut ws = Workspace::new();
        ws.recycle(vec![0.0; 8]);
        ws.clear();
        let s = ws.stats();
        assert_eq!((s.held_buffers, s.held_floats), (0, 0));
    }
}

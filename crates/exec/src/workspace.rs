//! Reusable kernel workspaces.
//!
//! Every kernel in the workspace produces a freshly sized `f32` buffer
//! (sparse outputs, dense outputs, permutation targets, weight-gradient
//! scratch). Allocating those from the global allocator on every call
//! wastes the very launch latency the pool saves, so the runtime keeps a
//! per-thread [`Workspace`] arena: [`take_zeroed`] hands out a recycled
//! buffer when one of sufficient capacity is shelved, and call sites
//! return short-lived buffers with [`recycle`] once their contents died
//! (e.g. a weight gradient after it has been accumulated). Within a
//! training step the same few buffers then ping-pong between kernels
//! instead of round-tripping through `malloc`.
//!
//! The arena is thread-local, so pool workers and the submitting thread
//! each reuse their own buffers without any locking; a buffer recycled
//! on a worker serves that worker's next allocation.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use megablocks_telemetry as telemetry;

/// Default upper bound on floats a thread's arena will hold before it
/// starts dropping recycled buffers (64 MiB of `f32`s) — a backstop
/// against pathological workloads hoarding memory.
const DEFAULT_CAP_FLOATS: usize = 16 << 20;

/// Process-wide cap override set by [`configure_workspace_cap`], stored
/// as `cap + 1` so `0` can mean "unset" (an explicit cap of zero —
/// "shelve nothing" — is legitimate).
static CONFIGURED_CAP: AtomicUsize = AtomicUsize::new(0);

/// Cap resolved from `MEGABLOCKS_WORKSPACE_CAP`, read once per process.
static ENV_CAP: OnceLock<usize> = OnceLock::new();

fn env_cap() -> usize {
    *ENV_CAP.get_or_init(|| {
        std::env::var("MEGABLOCKS_WORKSPACE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAP_FLOATS)
    })
}

/// The largest representable configured cap: the sentinel encoding stores
/// `cap + 1` in a `usize`, so `usize::MAX` itself cannot be represented
/// and requests for it clamp here. (No real arena ever reaches either
/// value — a `usize::MAX`-float shelf would be the entire address space.)
pub const MAX_WORKSPACE_CAP: usize = usize::MAX - 1;

/// Overrides the per-thread holding cap (in floats) for every arena in the
/// process, taking precedence over `MEGABLOCKS_WORKSPACE_CAP`. Returns the
/// previously effective cap. A cap of `0` disables shelving entirely; a
/// cap above [`MAX_WORKSPACE_CAP`] is clamped to it (the `cap + 1`
/// sentinel encoding cannot represent `usize::MAX`), so the value
/// returned by a later call — and by [`workspace_cap`] — is always the
/// cap actually in effect, never the unrepresentable request.
///
/// Buffers already shelved above a lowered cap are not evicted eagerly;
/// they drain as [`Workspace::recycle`] rejects further deposits.
pub fn configure_workspace_cap(cap_floats: usize) -> usize {
    let effective = cap_floats.min(MAX_WORKSPACE_CAP);
    let prev = CONFIGURED_CAP.swap(effective + 1, Ordering::Relaxed);
    if prev == 0 {
        env_cap()
    } else {
        prev - 1
    }
}

/// The currently effective per-thread holding cap in floats:
/// [`configure_workspace_cap`] if called, else `MEGABLOCKS_WORKSPACE_CAP`
/// (invalid or unset values fall back to the 16M-float default).
pub fn workspace_cap() -> usize {
    match CONFIGURED_CAP.load(Ordering::Relaxed) {
        0 => env_cap(),
        v => v - 1,
    }
}

/// A size-bucketed arena of reusable `f32` buffers.
///
/// Normally used through the thread-local instance via [`take_zeroed`] /
/// [`recycle`]; owning one directly is useful in tests.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Shelved buffers keyed by capacity (each key holds a stack).
    shelves: BTreeMap<usize, Vec<Vec<f32>>>,
    held_floats: usize,
    hits: u64,
    misses: u64,
}

/// Counters describing one thread's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Allocations served from a shelved buffer.
    pub hits: u64,
    /// Allocations that fell through to the global allocator.
    pub misses: u64,
    /// Buffers currently shelved.
    pub held_buffers: usize,
    /// Total floats currently shelved.
    pub held_floats: usize,
}

impl Workspace {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A zeroed buffer of exactly `len` floats, reusing the smallest
    /// shelved buffer whose capacity suffices.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let shelf = self
            .shelves
            .range_mut(len..)
            .next()
            .map(|(&cap, stack)| (cap, stack.pop()));
        if let Some((cap, Some(mut buf))) = shelf {
            if self.shelves.get(&cap).is_some_and(Vec::is_empty) {
                self.shelves.remove(&cap);
            }
            self.held_floats -= buf.capacity();
            buf.clear();
            buf.resize(len, 0.0);
            self.hits += 1;
            telemetry::counter("exec.workspace.hits").inc();
            telemetry::trace_counter_event("exec.workspace.hits", self.hits as f64);
            buf
        } else {
            self.misses += 1;
            telemetry::counter("exec.workspace.misses").inc();
            // A miss is the interesting event on a timeline: it marks a
            // cold allocation inside a step that should be steady-state.
            telemetry::trace_instant("exec.workspace.miss");
            telemetry::trace_counter_event("exec.workspace.misses", self.misses as f64);
            vec![0.0; len]
        }
    }

    /// Shelves `buf` for reuse (dropped instead if it has no capacity or
    /// the arena is at its holding limit, see [`workspace_cap`]).
    pub fn recycle(&mut self, buf: Vec<f32>) {
        let cap = buf.capacity();
        if cap == 0 || self.held_floats + cap > workspace_cap() {
            return;
        }
        self.held_floats += cap;
        self.shelves.entry(cap).or_default().push(buf);
    }

    /// Counters describing the arena.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            hits: self.hits,
            misses: self.misses,
            held_buffers: self.shelves.values().map(Vec::len).sum(),
            held_floats: self.held_floats,
        }
    }

    /// Drops every shelved buffer (counters are kept).
    pub fn clear(&mut self) {
        self.shelves.clear();
        self.held_floats = 0;
    }
}

thread_local! {
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// A zeroed buffer of `len` floats from the current thread's arena.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    WORKSPACE.with(|w| w.borrow_mut().take_zeroed(len))
}

/// Returns a buffer to the current thread's arena for reuse.
pub fn recycle(buf: Vec<f32>) {
    WORKSPACE.with(|w| w.borrow_mut().recycle(buf));
}

/// Counters for the current thread's arena.
pub fn stats() -> WorkspaceStats {
    WORKSPACE.with(|w| w.borrow().stats())
}

/// Drops every buffer shelved on the current thread.
pub fn clear() {
    WORKSPACE.with(|w| w.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// `configure_workspace_cap` is process-global, so every test whose
    /// shelving expectations depend on the cap serializes on this lock.
    fn cap_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn reuse_is_a_hit_and_buffers_are_zeroed() {
        let _guard = cap_lock();
        let mut ws = Workspace::new();
        let mut a = ws.take_zeroed(16);
        a.iter_mut().for_each(|v| *v = 7.0);
        let cap = a.capacity();
        ws.recycle(a);
        assert_eq!(ws.stats().held_buffers, 1);

        let b = ws.take_zeroed(10);
        assert!(b.capacity() >= 10 && b.capacity() <= cap.max(10));
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer not zeroed");
        let s = ws.stats();
        assert_eq!((s.hits, s.misses, s.held_buffers), (1, 1, 0));
    }

    #[test]
    fn undersized_shelves_are_skipped() {
        let _guard = cap_lock();
        let mut ws = Workspace::new();
        ws.recycle(Vec::with_capacity(4));
        let b = ws.take_zeroed(64);
        assert_eq!(b.len(), 64);
        assert_eq!(ws.stats().misses, 1);
        assert_eq!(ws.stats().held_buffers, 1, "small buffer stays shelved");
    }

    #[test]
    fn clear_empties_the_arena() {
        let mut ws = Workspace::new();
        ws.recycle(vec![0.0; 8]);
        ws.clear();
        let s = ws.stats();
        assert_eq!((s.held_buffers, s.held_floats), (0, 0));
    }

    #[test]
    fn configured_cap_bounds_shelving() {
        let _guard = cap_lock();
        let prev = configure_workspace_cap(10);
        let mut ws = Workspace::new();
        ws.recycle(vec![0.0; 8]);
        assert_eq!(ws.stats().held_buffers, 1, "under the cap: shelved");
        ws.recycle(vec![0.0; 8]);
        assert_eq!(ws.stats().held_buffers, 1, "over the cap: dropped");

        configure_workspace_cap(0);
        let mut empty = Workspace::new();
        empty.recycle(vec![0.0; 1]);
        assert_eq!(empty.stats().held_buffers, 0, "zero cap disables shelving");

        let restored = configure_workspace_cap(prev);
        assert_eq!(restored, 0, "previous effective cap is returned");
        assert_eq!(workspace_cap(), prev);
    }

    #[test]
    fn usize_max_cap_clamps_to_the_effective_maximum() {
        let _guard = cap_lock();
        let prev = configure_workspace_cap(usize::MAX);
        // The sentinel encoding cannot represent usize::MAX; the request
        // clamps to MAX_WORKSPACE_CAP and reads back exactly as stored
        // instead of silently dropping one more unit.
        assert_eq!(workspace_cap(), MAX_WORKSPACE_CAP);
        let effective = configure_workspace_cap(MAX_WORKSPACE_CAP);
        assert_eq!(
            effective, MAX_WORKSPACE_CAP,
            "the actually-effective cap is returned, not the request"
        );
        assert_eq!(workspace_cap(), MAX_WORKSPACE_CAP);
        configure_workspace_cap(prev);
    }
}

//! First-class kernel launch plans.
//!
//! A [`LaunchPlan`] describes one kernel launch: a flat output slice, a
//! partition of that slice into disjoint contiguous bands, and a band
//! body. It replaces the hand-rolled scoped-thread launchers that the
//! sparse (SDD/DSD/DDS), dense (GEMM) and expert-parallel paths used to
//! duplicate — every parallel region in the workspace now goes through
//! this one seam.
//!
//! Two partition shapes cover every kernel:
//!
//! * [`LaunchPlan::over_items`] — the output is `items` equal units of
//!   `unit` floats (nonzero blocks for SDD, block-row bands for DSD,
//!   rows for DDS/GEMM); each band owns `items_per_band` consecutive
//!   items and the body receives `(band, first_item_index)`.
//! * [`LaunchPlan::over_bands`] — explicitly sized bands (the
//!   expert-parallel shard loop, where shards own different row counts);
//!   the body receives `(band, band_index)`.
//!
//! Write disjointness holds *by construction*: bands are carved with
//! `chunks_mut`/`split_at_mut`, so no two tasks can alias an output
//! element. Under `--features sanitize` the plan is additionally proven
//! coherent before launch — the declared geometry must tile the output
//! exactly — which moves the old per-kernel band-partition audit into
//! the one place every launch passes through.
//!
//! Every launch also runs under a cancellation [`Ctx`] — attached
//! explicitly with [`LaunchPlan::with_ctx`] or inherited from the
//! submitting thread's ambient context — and is checked cooperatively
//! at band boundaries: a launch whose token trips or whose deadline
//! passes skips unstarted bands, unwinds in bounded time, and reports a
//! structured [`ExecError`]. Queue admission is bounded too: a launch
//! that would flood the pool past its depth cap is shed with
//! [`ExecError::Overloaded`] when latency-bound, or degraded to inline
//! execution when not.

use std::time::{Duration, Instant};

use megablocks_resilience as resilience;
use megablocks_telemetry as telemetry;

use crate::cancel::{self, CancelKind, CancelToken, Ctx, ExecError};
use crate::pool;
use crate::sanitizer;
use crate::watchdog;

/// How a plan slices its output.
enum Partition {
    /// `items` units of `unit` floats, `items_per_band` per band.
    Uniform { unit: usize, items_per_band: usize },
    /// Explicit per-band lengths, in floats.
    Explicit { band_lens: Vec<usize> },
}

/// One kernel launch: output bands plus the per-band body.
///
/// Build with [`LaunchPlan::over_items`] or [`LaunchPlan::over_bands`],
/// then call [`LaunchPlan::launch`]. The body must be `Sync`: every band
/// task shares it by reference.
pub struct LaunchPlan<'data, 'body> {
    op: &'static str,
    data: &'data mut [f32],
    partition: Partition,
    body: &'body (dyn Fn(&mut [f32], usize) + Sync),
    ctx: Ctx,
    stall_budget: Option<Duration>,
}

impl<'data, 'body> LaunchPlan<'data, 'body> {
    /// Plan over `data.len() / unit` uniform items, `items_per_band` per
    /// band. The body receives each band and the index of its first item.
    ///
    /// # Panics
    ///
    /// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`
    /// — a malformed plan is a kernel bug, never a data condition.
    pub fn over_items(
        op: &'static str,
        data: &'data mut [f32],
        unit: usize,
        items_per_band: usize,
        body: &'body (dyn Fn(&mut [f32], usize) + Sync),
    ) -> Self {
        assert!(unit > 0, "{op}: launch plan unit must be nonzero");
        assert!(
            data.len().is_multiple_of(unit),
            "{op}: output length {} is not a multiple of unit {unit}",
            data.len()
        );
        LaunchPlan {
            op,
            data,
            partition: Partition::Uniform {
                unit,
                items_per_band: items_per_band.max(1),
            },
            body,
            ctx: Ctx::none(),
            stall_budget: None,
        }
    }

    /// Plan over explicitly sized bands (`band_lens` in floats). The body
    /// receives each band and its index.
    ///
    /// # Panics
    ///
    /// Panics if the band lengths do not sum to `data.len()` — the bands
    /// must tile the output exactly.
    pub fn over_bands(
        op: &'static str,
        data: &'data mut [f32],
        band_lens: Vec<usize>,
        body: &'body (dyn Fn(&mut [f32], usize) + Sync),
    ) -> Self {
        let total: usize = band_lens.iter().sum();
        assert_eq!(
            total,
            data.len(),
            "{op}: band lengths sum to {total}, output has {} floats",
            data.len()
        );
        LaunchPlan {
            op,
            data,
            partition: Partition::Explicit { band_lens },
            body,
            ctx: Ctx::none(),
            stall_budget: None,
        }
    }

    /// Attaches a cancellation/deadline context to the launch. Plans
    /// without an explicit context inherit the submitting thread's
    /// ambient context (see [`crate::cancel::enter`]), so one `enter` at
    /// an outer layer covers every nested launch.
    pub fn with_ctx(mut self, ctx: Ctx) -> Self {
        self.ctx = ctx;
        self
    }

    /// Puts this launch under the stall watchdog with an explicit
    /// budget, overriding the process-wide
    /// [`crate::configure_stall_budget`] / `MEGABLOCKS_STALL_MS`
    /// setting. A band exceeding `max(budget, 8 x median finished-band
    /// time)` gets the launch cancelled with
    /// [`ExecError::DeadlineExceeded`].
    pub fn with_stall_budget(mut self, budget: Duration) -> Self {
        self.stall_budget = Some(budget);
        self
    }

    /// The op name the plan was built for (telemetry label).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Number of bands the plan will launch.
    pub fn bands(&self) -> usize {
        match &self.partition {
            Partition::Uniform {
                unit,
                items_per_band,
            } => {
                let items = self.data.len() / unit;
                items.div_ceil(*items_per_band).max(1)
            }
            Partition::Explicit { band_lens } => band_lens.len().max(1),
        }
    }

    /// Executes the plan on the shared worker pool.
    ///
    /// Single-band plans (and launches from inside a pool task) run
    /// inline on the caller. A panicking band is re-raised on the caller
    /// after every sibling band finished; the pool stays usable.
    ///
    /// # Panics
    ///
    /// Panics with a message starting with one of the classification
    /// prefixes when the launch fails structurally: under
    /// `--features sanitize`, [`crate::RACE_PANIC_PREFIX`] when the
    /// dynamic race sanitizer detects overlapping band write sets or a
    /// claim escape; [`crate::CANCELLED_PANIC_PREFIX`] /
    /// [`crate::DEADLINE_PANIC_PREFIX`] when the launch's context was
    /// cancelled or timed out. Use [`LaunchPlan::try_launch`] to receive
    /// the failure as a value.
    pub fn launch(self) {
        if let Err(error) = self.run(false) {
            panic!("{error}");
        }
    }

    /// Executes the plan like [`LaunchPlan::launch`], but returns the
    /// structured [`ExecError`] — detected race, cancellation, deadline
    /// expiry, or overload shed — instead of panicking. With no context
    /// attached or inherited and without `--features sanitize`, the
    /// dynamic checks compile out or short-circuit and this always
    /// returns `Ok(())` (band panics are still re-raised either way).
    pub fn try_launch(self) -> Result<(), ExecError> {
        self.run(false)
    }

    /// Executes the plan by spawning one fresh OS thread per band — the
    /// pre-runtime behavior, kept as the ablation baseline the exec
    /// microbenchmark compares pooled launches against.
    ///
    /// # Panics
    ///
    /// As [`LaunchPlan::launch`], including detected race violations.
    pub fn launch_spawn_per_op(self) {
        if let Err(error) = self.run(true) {
            panic!("{error}");
        }
    }

    fn run(self, spawn_per_op: bool) -> Result<(), ExecError> {
        verify_plan(&self);
        let bands = self.bands();
        telemetry::histogram("exec.launch.bands").record(bands as u64);
        let LaunchPlan {
            op,
            data,
            partition,
            body,
            ctx,
            stall_budget,
        } = self;
        // Inherit the submitter's ambient context when the plan carries
        // none, so a deadline installed at (say) the trainer step reaches
        // every nested kernel launch without each call site threading it
        // through. An empty inherited context keeps the fast path: every
        // check below short-circuits on `None`.
        let mut ctx = if ctx.is_empty() {
            cancel::current()
        } else {
            ctx
        };
        // Pre-launch cancellation point: refuse already-dead work before
        // building a single task.
        if let Some(kind) = ctx.status() {
            return Err(abort_error(op, kind));
        }
        // Whether the *caller* attached a deadline/token — the watchdog
        // may add a private token below, but that must not change the
        // overload policy (only caller-bound launches shed).
        let latency_bound = !ctx.is_empty();
        // Chaos injection site: under an installed FaultPlan (chaos
        // feature only) a band task may panic before running its body,
        // exercising the pool's park-and-reraise recovery path end to
        // end. Compiles to nothing without the feature. The trace
        // interval is recorded directly (not via `telemetry::span`) so
        // band executions land on each worker's timeline lane without
        // inflating the op's scalar span-family call counts.
        let guarded = |band: &mut [f32], i: usize| {
            resilience::maybe_panic(&resilience::sites::EXEC_WORKER_PANIC);
            let band_start_us = telemetry::trace_now_us();
            body(band, i);
            telemetry::trace_complete(
                op,
                band_start_us,
                telemetry::trace_now_us().saturating_sub(band_start_us),
            );
        };
        if bands <= 1 {
            telemetry::counter_with("exec.launches", "inline").inc();
            let _ambient = cancel::enter(&ctx);
            guarded(data, 0);
            return finish_status(op, &ctx);
        }
        // Put the launch under the stall watchdog when a budget is
        // active (per-plan override first, then the process setting).
        // The watchdog cancels through the context's token, so a watched
        // context without one gets a private token here.
        let watch = match stall_budget.or_else(watchdog::stall_budget) {
            Some(budget) => {
                let token = match ctx.token() {
                    Some(t) => t.clone(),
                    None => {
                        let t = CancelToken::new();
                        ctx = ctx.with_token(&t);
                        t
                    }
                };
                Some(watchdog::register(op, token, bands, budget))
            }
            None => None,
        };
        let race_monitor =
            sanitizer::Monitor::begin(op, data, partition_claims(&partition, data.len()));
        let monitor = &race_monitor;
        let guarded = &guarded;
        let ctx_ref = &ctx;
        let watch_ref = &watch;
        // One band task: re-installs the launch context on whichever
        // thread runs the band (so kernel panel loops can poll it),
        // checks the band-boundary cancellation point, and reports
        // start/finish to the watchdog. A cancelled launch skips every
        // band that has not started; its output is discarded with the
        // launch error, so the skipped writes are unobservable.
        let run_band = |b: usize, band: &mut [f32], i: usize| {
            sanitizer::stall(b);
            let _ambient = cancel::enter(ctx_ref);
            let _claim = monitor.enter(b, band);
            if ctx_ref.status().is_some() {
                return;
            }
            if let Some(w) = watch_ref {
                w.watch().band_started(b);
            }
            chaos_stall_band();
            if ctx_ref.status().is_none() {
                guarded(band, i);
            }
            if let Some(w) = watch_ref {
                w.watch().band_finished(b);
            }
        };
        let run_band = &run_band;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bands);
        match partition {
            Partition::Uniform {
                unit,
                items_per_band,
            } => {
                for (b, band) in data.chunks_mut(items_per_band * unit).enumerate() {
                    tasks.push(Box::new(move || run_band(b, band, b * items_per_band)));
                }
            }
            Partition::Explicit { band_lens } => {
                let mut rest = data;
                for (b, &len) in band_lens.iter().enumerate() {
                    let (band, tail) = rest.split_at_mut(len);
                    rest = tail;
                    tasks.push(Box::new(move || run_band(b, band, b)));
                }
            }
        }
        let tasks = perturb_submission_order(tasks);

        if spawn_per_op {
            telemetry::counter_with("exec.launches", "spawn_per_op").inc();
            run_spawn_per_op(tasks);
        } else {
            telemetry::counter_with("exec.launches", "pooled").inc();
            // Chaos `pool.queue_flood` site: force the admission decision
            // this launch would face on a flooded queue. Compiles to
            // `false` without the chaos feature.
            let outcome = if resilience::should_fail(&resilience::sites::POOL_QUEUE_FLOOD) {
                Err(pool::Rejected {
                    tasks,
                    depth: pool::pool().queue_depth(),
                    cap: pool::queue_cap(),
                })
            } else {
                pool::pool().try_run(tasks)
            };
            if let Err(rejected) = outcome {
                resilience::record_detected(&resilience::sites::POOL_QUEUE_FLOOD);
                telemetry::trace_instant("exec.shed");
                telemetry::histogram("exec.shed.depth").record(rejected.depth as u64);
                telemetry::gauge("exec.pool.queue_cap").set(rejected.cap as f64);
                if !latency_bound {
                    // Plain throughput work has no deadline to miss:
                    // degrade to inline execution on the submitter. The
                    // queue stays bounded and the work still completes —
                    // the recovery this site's counter pins.
                    telemetry::counter_with("exec.shed", "inline").inc();
                    for task in rejected.tasks {
                        task();
                    }
                    resilience::record_recovered(&resilience::sites::POOL_QUEUE_FLOOD);
                } else {
                    // Latency-bound work (it carries a deadline/token):
                    // shed explicitly rather than queue into the flood.
                    telemetry::counter_with("exec.shed", "rejected").inc();
                    drop(rejected.tasks);
                    return Err(abort_error(op, CancelKind::Overloaded));
                }
            }
        }
        race_monitor.finish().map_err(ExecError::Race)?;
        finish_status(op, &ctx)
    }
}

/// Maps an aborted context into the launch's structured error, emitting
/// the `exec.cancelled` counter (labelled by kind) and a trace instant.
fn abort_error(op: &'static str, kind: CancelKind) -> ExecError {
    telemetry::counter_with("exec.cancelled", kind.label()).inc();
    telemetry::trace_instant("exec.cancelled");
    match kind {
        CancelKind::Cancelled => ExecError::Cancelled { op },
        CancelKind::DeadlineExceeded => ExecError::DeadlineExceeded { op },
        CancelKind::Overloaded => ExecError::Overloaded { op },
    }
}

/// Post-launch verdict of the context: `Err` when the launch was
/// cancelled mid-flight (by its token, its deadline, or the watchdog),
/// in which case the output must be considered garbage.
fn finish_status(op: &'static str, ctx: &Ctx) -> Result<(), ExecError> {
    match ctx.status() {
        Some(kind) => Err(abort_error(op, kind)),
        None => Ok(()),
    }
}

/// Chaos `exec.band_stall` site: parks the current band for the plan's
/// configured delay, sleeping in short slices and polling the ambient
/// context between them — an injected stall still unwinds promptly once
/// the watchdog (or an explicit cancel) fires, which is exactly the
/// recovery the site exists to prove. Compiles to a no-op without the
/// chaos feature.
fn chaos_stall_band() {
    let ms = resilience::delay_requested(&resilience::sites::EXEC_BAND_STALL);
    if ms == 0 {
        return;
    }
    let until = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < until {
        if cancel::poll_cancelled() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Reorders band tasks by the active schedule-perturbation seed (a no-op
/// at the default seed 0). Bands are disjoint, so any submission order is
/// semantically legal; perturbing it flushes out latent order-dependent
/// overlaps for the race sanitizer to catch.
fn perturb_submission_order(
    tasks: Vec<Box<dyn FnOnce() + Send + '_>>,
) -> Vec<Box<dyn FnOnce() + Send + '_>> {
    let seed = sanitizer::perturbation_seed();
    if seed == 0 || tasks.len() < 2 {
        return tasks;
    }
    let order = sanitizer::band_order(seed, tasks.len());
    let mut slots: Vec<Option<Box<dyn FnOnce() + Send + '_>>> =
        tasks.into_iter().map(Some).collect();
    let mut shuffled = Vec::with_capacity(slots.len());
    for &b in &order {
        if let Some(task) = slots[b].take() {
            shuffled.push(task);
        }
    }
    shuffled
}

/// The byte interval each band's geometry claims, in launch order — the
/// reference the race sanitizer cross-checks recorded writes against.
/// Compiles to an empty vec without the `sanitize` feature.
#[cfg(feature = "sanitize")]
fn partition_claims(partition: &Partition, len: usize) -> Vec<(usize, usize)> {
    const F: usize = std::mem::size_of::<f32>();
    match partition {
        Partition::Uniform {
            unit,
            items_per_band,
        } => {
            let items = len / unit;
            let bands = items.div_ceil(*items_per_band).max(1);
            (0..bands)
                .map(|b| {
                    let lo = b * items_per_band;
                    let hi = ((b + 1) * items_per_band).min(items);
                    (lo * unit * F, hi * unit * F)
                })
                .collect()
        }
        Partition::Explicit { band_lens } => {
            let mut start = 0usize;
            band_lens
                .iter()
                .map(|&band_len| {
                    let claim = (start * F, (start + band_len) * F);
                    start += band_len;
                    claim
                })
                .collect()
        }
    }
}

/// The byte interval each band's geometry claims, in launch order — the
/// reference the race sanitizer cross-checks recorded writes against.
/// Compiles to an empty vec without the `sanitize` feature.
#[cfg(not(feature = "sanitize"))]
fn partition_claims(partition: &Partition, len: usize) -> Vec<(usize, usize)> {
    let _ = (partition, len);
    Vec::new()
}

/// The spawn-per-op ablation launcher: a fresh scoped thread per band,
/// exactly what the kernels did before the shared pool existed. Worker
/// panics are re-raised on the caller with their original payload.
fn run_spawn_per_op(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            for task in tasks {
                s.spawn(task);
            }
        });
    }));
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Proves the plan's declared geometry tiles the output exactly — the
/// uniform write-disjointness check every launch passes through under
/// `--features sanitize`.
#[cfg(feature = "sanitize")]
fn verify_plan(plan: &LaunchPlan<'_, '_>) {
    match &plan.partition {
        Partition::Uniform {
            unit,
            items_per_band,
        } => {
            let items = plan.data.len() / unit;
            // Bands are consecutive `items_per_band`-item ranges; prove
            // they cover every item exactly once.
            let bands = items.div_ceil((*items_per_band).max(1));
            let mut covered = 0usize;
            for b in 0..bands {
                let lo = b * items_per_band;
                let hi = ((b + 1) * items_per_band).min(items);
                assert!(
                    lo == covered && hi > lo,
                    "sanitize: {} launch plan leaves a gap at item {covered} \
                     (band {b} owns {lo}..{hi} of {items})",
                    plan.op
                );
                covered = hi;
            }
            assert_eq!(
                covered, items,
                "sanitize: {} launch plan covers {covered} of {items} items",
                plan.op
            );
        }
        Partition::Explicit { band_lens } => {
            let total: usize = band_lens.iter().sum();
            assert_eq!(
                total,
                plan.data.len(),
                "sanitize: {} launch plan bands sum to {total}, output has {}",
                plan.op,
                plan.data.len()
            );
        }
    }
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn verify_plan(_plan: &LaunchPlan<'_, '_>) {}

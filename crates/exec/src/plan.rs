//! First-class kernel launch plans.
//!
//! A [`LaunchPlan`] describes one kernel launch: a flat output slice, a
//! partition of that slice into disjoint contiguous bands, and a band
//! body. It replaces the hand-rolled scoped-thread launchers that the
//! sparse (SDD/DSD/DDS), dense (GEMM) and expert-parallel paths used to
//! duplicate — every parallel region in the workspace now goes through
//! this one seam.
//!
//! Two partition shapes cover every kernel:
//!
//! * [`LaunchPlan::over_items`] — the output is `items` equal units of
//!   `unit` floats (nonzero blocks for SDD, block-row bands for DSD,
//!   rows for DDS/GEMM); each band owns `items_per_band` consecutive
//!   items and the body receives `(band, first_item_index)`.
//! * [`LaunchPlan::over_bands`] — explicitly sized bands (the
//!   expert-parallel shard loop, where shards own different row counts);
//!   the body receives `(band, band_index)`.
//!
//! Write disjointness holds *by construction*: bands are carved with
//! `chunks_mut`/`split_at_mut`, so no two tasks can alias an output
//! element. Under `--features sanitize` the plan is additionally proven
//! coherent before launch — the declared geometry must tile the output
//! exactly — which moves the old per-kernel band-partition audit into
//! the one place every launch passes through.

use megablocks_resilience as resilience;
use megablocks_telemetry as telemetry;

use crate::pool;
use crate::sanitizer::{self, RaceViolation};

/// How a plan slices its output.
enum Partition {
    /// `items` units of `unit` floats, `items_per_band` per band.
    Uniform { unit: usize, items_per_band: usize },
    /// Explicit per-band lengths, in floats.
    Explicit { band_lens: Vec<usize> },
}

/// One kernel launch: output bands plus the per-band body.
///
/// Build with [`LaunchPlan::over_items`] or [`LaunchPlan::over_bands`],
/// then call [`LaunchPlan::launch`]. The body must be `Sync`: every band
/// task shares it by reference.
pub struct LaunchPlan<'data, 'body> {
    op: &'static str,
    data: &'data mut [f32],
    partition: Partition,
    body: &'body (dyn Fn(&mut [f32], usize) + Sync),
}

impl<'data, 'body> LaunchPlan<'data, 'body> {
    /// Plan over `data.len() / unit` uniform items, `items_per_band` per
    /// band. The body receives each band and the index of its first item.
    ///
    /// # Panics
    ///
    /// Panics if `unit == 0` or `data.len()` is not a multiple of `unit`
    /// — a malformed plan is a kernel bug, never a data condition.
    pub fn over_items(
        op: &'static str,
        data: &'data mut [f32],
        unit: usize,
        items_per_band: usize,
        body: &'body (dyn Fn(&mut [f32], usize) + Sync),
    ) -> Self {
        assert!(unit > 0, "{op}: launch plan unit must be nonzero");
        assert!(
            data.len().is_multiple_of(unit),
            "{op}: output length {} is not a multiple of unit {unit}",
            data.len()
        );
        LaunchPlan {
            op,
            data,
            partition: Partition::Uniform {
                unit,
                items_per_band: items_per_band.max(1),
            },
            body,
        }
    }

    /// Plan over explicitly sized bands (`band_lens` in floats). The body
    /// receives each band and its index.
    ///
    /// # Panics
    ///
    /// Panics if the band lengths do not sum to `data.len()` — the bands
    /// must tile the output exactly.
    pub fn over_bands(
        op: &'static str,
        data: &'data mut [f32],
        band_lens: Vec<usize>,
        body: &'body (dyn Fn(&mut [f32], usize) + Sync),
    ) -> Self {
        let total: usize = band_lens.iter().sum();
        assert_eq!(
            total,
            data.len(),
            "{op}: band lengths sum to {total}, output has {} floats",
            data.len()
        );
        LaunchPlan {
            op,
            data,
            partition: Partition::Explicit { band_lens },
            body,
        }
    }

    /// The op name the plan was built for (telemetry label).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Number of bands the plan will launch.
    pub fn bands(&self) -> usize {
        match &self.partition {
            Partition::Uniform {
                unit,
                items_per_band,
            } => {
                let items = self.data.len() / unit;
                items.div_ceil(*items_per_band).max(1)
            }
            Partition::Explicit { band_lens } => band_lens.len().max(1),
        }
    }

    /// Executes the plan on the shared worker pool.
    ///
    /// Single-band plans (and launches from inside a pool task) run
    /// inline on the caller. A panicking band is re-raised on the caller
    /// after every sibling band finished; the pool stays usable.
    ///
    /// # Panics
    ///
    /// Under `--features sanitize`, panics with a message starting with
    /// [`crate::RACE_PANIC_PREFIX`] when the dynamic race sanitizer
    /// detects overlapping band write sets or a claim escape. Use
    /// [`LaunchPlan::try_launch`] to receive the violation as a value.
    pub fn launch(self) {
        if let Err(violation) = self.run(false) {
            panic!("{violation}");
        }
    }

    /// Executes the plan like [`LaunchPlan::launch`], but returns the
    /// race sanitizer's verdict instead of panicking on a detected
    /// violation. Without `--features sanitize` the dynamic checks
    /// compile out and this always returns `Ok(())` (band panics are
    /// still re-raised either way).
    pub fn try_launch(self) -> Result<(), RaceViolation> {
        self.run(false)
    }

    /// Executes the plan by spawning one fresh OS thread per band — the
    /// pre-runtime behavior, kept as the ablation baseline the exec
    /// microbenchmark compares pooled launches against.
    ///
    /// # Panics
    ///
    /// As [`LaunchPlan::launch`], including detected race violations.
    pub fn launch_spawn_per_op(self) {
        if let Err(violation) = self.run(true) {
            panic!("{violation}");
        }
    }

    fn run(self, spawn_per_op: bool) -> Result<(), RaceViolation> {
        verify_plan(&self);
        let bands = self.bands();
        telemetry::histogram("exec.launch.bands").record(bands as u64);
        let LaunchPlan {
            op,
            data,
            partition,
            body,
        } = self;
        // Chaos injection site: under an installed FaultPlan (chaos
        // feature only) a band task may panic before running its body,
        // exercising the pool's park-and-reraise recovery path end to
        // end. Compiles to nothing without the feature. The trace
        // interval is recorded directly (not via `telemetry::span`) so
        // band executions land on each worker's timeline lane without
        // inflating the op's scalar span-family call counts.
        let guarded = |band: &mut [f32], i: usize| {
            resilience::maybe_panic(&resilience::sites::EXEC_WORKER_PANIC);
            let band_start_us = telemetry::trace_now_us();
            body(band, i);
            telemetry::trace_complete(
                op,
                band_start_us,
                telemetry::trace_now_us().saturating_sub(band_start_us),
            );
        };
        if bands <= 1 {
            telemetry::counter_with("exec.launches", "inline").inc();
            guarded(data, 0);
            return Ok(());
        }
        let race_monitor =
            sanitizer::Monitor::begin(op, data, partition_claims(&partition, data.len()));
        let monitor = &race_monitor;
        let guarded = &guarded;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(bands);
        match partition {
            Partition::Uniform {
                unit,
                items_per_band,
            } => {
                for (b, band) in data.chunks_mut(items_per_band * unit).enumerate() {
                    tasks.push(Box::new(move || {
                        sanitizer::stall(b);
                        let _scope = monitor.enter(b, band);
                        guarded(band, b * items_per_band)
                    }));
                }
            }
            Partition::Explicit { band_lens } => {
                let mut rest = data;
                for (b, &len) in band_lens.iter().enumerate() {
                    let (band, tail) = rest.split_at_mut(len);
                    rest = tail;
                    tasks.push(Box::new(move || {
                        sanitizer::stall(b);
                        let _scope = monitor.enter(b, band);
                        guarded(band, b)
                    }));
                }
            }
        }
        let tasks = perturb_submission_order(tasks);

        if spawn_per_op {
            telemetry::counter_with("exec.launches", "spawn_per_op").inc();
            run_spawn_per_op(tasks);
        } else {
            telemetry::counter_with("exec.launches", "pooled").inc();
            pool::pool().run(tasks);
        }
        race_monitor.finish()
    }
}

/// Reorders band tasks by the active schedule-perturbation seed (a no-op
/// at the default seed 0). Bands are disjoint, so any submission order is
/// semantically legal; perturbing it flushes out latent order-dependent
/// overlaps for the race sanitizer to catch.
fn perturb_submission_order(
    tasks: Vec<Box<dyn FnOnce() + Send + '_>>,
) -> Vec<Box<dyn FnOnce() + Send + '_>> {
    let seed = sanitizer::perturbation_seed();
    if seed == 0 || tasks.len() < 2 {
        return tasks;
    }
    let order = sanitizer::band_order(seed, tasks.len());
    let mut slots: Vec<Option<Box<dyn FnOnce() + Send + '_>>> =
        tasks.into_iter().map(Some).collect();
    let mut shuffled = Vec::with_capacity(slots.len());
    for &b in &order {
        if let Some(task) = slots[b].take() {
            shuffled.push(task);
        }
    }
    shuffled
}

/// The byte interval each band's geometry claims, in launch order — the
/// reference the race sanitizer cross-checks recorded writes against.
/// Compiles to an empty vec without the `sanitize` feature.
#[cfg(feature = "sanitize")]
fn partition_claims(partition: &Partition, len: usize) -> Vec<(usize, usize)> {
    const F: usize = std::mem::size_of::<f32>();
    match partition {
        Partition::Uniform {
            unit,
            items_per_band,
        } => {
            let items = len / unit;
            let bands = items.div_ceil(*items_per_band).max(1);
            (0..bands)
                .map(|b| {
                    let lo = b * items_per_band;
                    let hi = ((b + 1) * items_per_band).min(items);
                    (lo * unit * F, hi * unit * F)
                })
                .collect()
        }
        Partition::Explicit { band_lens } => {
            let mut start = 0usize;
            band_lens
                .iter()
                .map(|&band_len| {
                    let claim = (start * F, (start + band_len) * F);
                    start += band_len;
                    claim
                })
                .collect()
        }
    }
}

/// The byte interval each band's geometry claims, in launch order — the
/// reference the race sanitizer cross-checks recorded writes against.
/// Compiles to an empty vec without the `sanitize` feature.
#[cfg(not(feature = "sanitize"))]
fn partition_claims(partition: &Partition, len: usize) -> Vec<(usize, usize)> {
    let _ = (partition, len);
    Vec::new()
}

/// The spawn-per-op ablation launcher: a fresh scoped thread per band,
/// exactly what the kernels did before the shared pool existed. Worker
/// panics are re-raised on the caller with their original payload.
fn run_spawn_per_op(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            for task in tasks {
                s.spawn(task);
            }
        });
    }));
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Proves the plan's declared geometry tiles the output exactly — the
/// uniform write-disjointness check every launch passes through under
/// `--features sanitize`.
#[cfg(feature = "sanitize")]
fn verify_plan(plan: &LaunchPlan<'_, '_>) {
    match &plan.partition {
        Partition::Uniform {
            unit,
            items_per_band,
        } => {
            let items = plan.data.len() / unit;
            // Bands are consecutive `items_per_band`-item ranges; prove
            // they cover every item exactly once.
            let bands = items.div_ceil((*items_per_band).max(1));
            let mut covered = 0usize;
            for b in 0..bands {
                let lo = b * items_per_band;
                let hi = ((b + 1) * items_per_band).min(items);
                assert!(
                    lo == covered && hi > lo,
                    "sanitize: {} launch plan leaves a gap at item {covered} \
                     (band {b} owns {lo}..{hi} of {items})",
                    plan.op
                );
                covered = hi;
            }
            assert_eq!(
                covered, items,
                "sanitize: {} launch plan covers {covered} of {items} items",
                plan.op
            );
        }
        Partition::Explicit { band_lens } => {
            let total: usize = band_lens.iter().sum();
            assert_eq!(
                total,
                plan.data.len(),
                "sanitize: {} launch plan bands sum to {total}, output has {}",
                plan.op,
                plan.data.len()
            );
        }
    }
}

#[cfg(not(feature = "sanitize"))]
#[inline(always)]
fn verify_plan(_plan: &LaunchPlan<'_, '_>) {}

//! Dynamic access-set race sanitizer for launch plans.
//!
//! The static `verify_plan` check proves a plan's declared geometry tiles
//! its output; this module verifies the *empirical* write sets. Under
//! `--features sanitize`, every multi-band launch allocates a shadow
//! [`AccessLog`] with one lock-free slot per band. Each band task records
//! the byte interval of the band slice it was actually handed (plus any
//! extra intervals kernels report through [`record_write`] /
//! [`record_write_span`]); after the launch completes, the submitter
//! sweeps the recorded intervals and asserts
//!
//! 1. **pairwise disjointness** — no byte of the output was written by
//!    two different bands ([`RaceViolation::Overlap`]), and
//! 2. **claim conformance** — every band stayed inside the interval the
//!    plan's geometry claimed for it ([`RaceViolation::ClaimMismatch`]).
//!
//! The per-band slots use interior mutability without locks: band `b`'s
//! task is the only writer of slot `b` (bands are disjoint by
//! construction, like the data they own), and the submitter only reads
//! the slots after the pool's completion rendezvous, which provides the
//! happens-before edge.
//!
//! Because schedule-dependent overlaps may only manifest under specific
//! interleavings, the sanitizer also carries a **seeded
//! schedule-perturbation mode** ([`set_perturbation`], or the
//! `MEGABLOCKS_PERTURB_SEED` environment variable): band tasks are
//! submitted in a seed-derived shuffled order and prefixed with short
//! injected stalls, flushing out order-dependent overlaps that the
//! natural schedule would mask. Seed 0 disables perturbation.
//!
//! Violations surface as [`RaceViolation`] from
//! [`LaunchPlan::try_launch`](crate::LaunchPlan::try_launch); the
//! panicking [`launch`](crate::LaunchPlan::launch) path re-raises them
//! with a message starting with [`RACE_PANIC_PREFIX`], which the
//! fault-tolerant trainer treats as non-retryable (a race does not go
//! away by rerunning the step).
//!
//! Without the `sanitize` feature every hook here compiles to a no-op
//! with an identical signature, so callers never gate their own code.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Prefix of every panic message raised for a detected race. The
/// fault-tolerant trainer matches on this to classify the panic as
/// non-retryable.
pub const RACE_PANIC_PREFIX: &str = "sanitize: race";

/// A violation detected by the access-set race sanitizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceViolation {
    /// Two bands recorded overlapping write intervals.
    Overlap {
        /// The op whose launch raced.
        op: &'static str,
        /// Lower-numbered band of the racing pair.
        first_band: usize,
        /// Higher-numbered band of the racing pair.
        second_band: usize,
        /// First overlapping byte (offset into the plan's output).
        start: usize,
        /// One past the last overlapping byte.
        end: usize,
    },
    /// A band recorded a write outside the interval the plan's geometry
    /// claimed for it.
    ClaimMismatch {
        /// The op whose launch misbehaved.
        op: &'static str,
        /// The offending band.
        band: usize,
        /// Claimed byte interval `[start, end)`.
        claimed: (usize, usize),
        /// Recorded byte interval that escapes the claim.
        recorded: (usize, usize),
    },
}

impl fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceViolation::Overlap {
                op,
                first_band,
                second_band,
                start,
                end,
            } => write!(
                f,
                "{RACE_PANIC_PREFIX}: {op} bands {first_band} and {second_band} \
                 both wrote output bytes {start}..{end}"
            ),
            RaceViolation::ClaimMismatch {
                op,
                band,
                claimed,
                recorded,
            } => write!(
                f,
                "{RACE_PANIC_PREFIX}: {op} band {band} wrote output bytes \
                 {}..{} outside its claimed {}..{}",
                recorded.0, recorded.1, claimed.0, claimed.1
            ),
        }
    }
}

impl std::error::Error for RaceViolation {}

/// The process-wide perturbation seed (0 = perturbation off). Resolved
/// lazily from `MEGABLOCKS_PERTURB_SEED` unless [`set_perturbation`] ran
/// first. The high bit marks "explicitly resolved".
static PERTURB_SEED: AtomicU64 = AtomicU64::new(u64::MAX);

/// Sets the schedule-perturbation seed (0 disables perturbation),
/// overriding the `MEGABLOCKS_PERTURB_SEED` environment variable. Takes
/// effect for every subsequent sanitized launch in the process.
pub fn set_perturbation(seed: u64) {
    PERTURB_SEED.store(seed.min(u64::MAX - 1), Relaxed);
}

/// The active schedule-perturbation seed (0 = off).
pub fn perturbation_seed() -> u64 {
    let s = PERTURB_SEED.load(Relaxed);
    if s != u64::MAX {
        return s;
    }
    let resolved = std::env::var("MEGABLOCKS_PERTURB_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0)
        .min(u64::MAX - 1);
    // First resolver wins; a concurrent `set_perturbation` overwrite is
    // also fine (last store is the configured value either way).
    let _ = PERTURB_SEED.compare_exchange(u64::MAX, resolved, Relaxed, Relaxed);
    PERTURB_SEED.load(Relaxed)
}

/// splitmix64: the deterministic mixer behind band shuffles and stall
/// injection. Dependency-free and stable across platforms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The submission order perturbation seed `seed` imposes on a launch of
/// `bands` band tasks: a deterministic Fisher–Yates shuffle of
/// `0..bands`. Seed 0 returns the identity order. Pure — tests use this
/// to find seeds that place one band before another.
pub fn band_order(seed: u64, bands: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..bands).collect();
    if seed == 0 {
        return order;
    }
    let mut state = splitmix64(seed);
    for i in (1..bands).rev() {
        state = splitmix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Number of `yield_now` stalls perturbation seed `seed` injects before
/// band `band` runs (0..=7; 0 for most bands). Pure.
pub fn stall_slots(seed: u64, band: usize) -> u32 {
    if seed == 0 {
        return 0;
    }
    let r = splitmix64(seed ^ splitmix64(band as u64 + 1));
    if r.is_multiple_of(3) {
        (r >> 8) as u32 % 8
    } else {
        0
    }
}

/// Injects the schedule-perturbation stall for band `band`: a short run
/// of scheduler yields derived from the active seed. A no-op when
/// perturbation is off (seed 0). Called by the launch path at the top of
/// every band task.
pub(crate) fn stall(band: usize) {
    let seed = perturbation_seed();
    for _ in 0..stall_slots(seed, band) {
        std::thread::yield_now();
    }
}

/// Shadow race monitor for one multi-band launch. Under
/// `--features sanitize` it owns the launch's [`AccessLog`]; without the
/// feature every method is a no-op and the type is zero-sized, so the
/// launch path never gates its own code.
#[cfg(feature = "sanitize")]
pub(crate) struct Monitor {
    log: active::AccessLog,
}

/// Shadow race monitor for one multi-band launch. Under
/// `--features sanitize` it owns the launch's [`AccessLog`]; without the
/// feature every method is a no-op and the type is zero-sized, so the
/// launch path never gates its own code.
#[cfg(not(feature = "sanitize"))]
pub(crate) struct Monitor {}

/// RAII scope marking the current thread as executing one band of a
/// monitored launch; writes recorded while it lives are attributed to
/// that band. Zero-sized no-op without the `sanitize` feature.
#[cfg(feature = "sanitize")]
pub(crate) struct TaskScope {
    _guard: active::BandGuard,
}

/// RAII scope marking the current thread as executing one band of a
/// monitored launch; writes recorded while it lives are attributed to
/// that band. Zero-sized no-op without the `sanitize` feature.
#[cfg(not(feature = "sanitize"))]
pub(crate) struct TaskScope {}

#[cfg(feature = "sanitize")]
impl Monitor {
    /// Starts monitoring a launch of `data` whose geometry claims the
    /// per-band byte intervals `claims`.
    pub(crate) fn begin(op: &'static str, data: &[f32], claims: Vec<(usize, usize)>) -> Monitor {
        Monitor {
            log: active::AccessLog::new(op, data, claims),
        }
    }

    /// Enters band `band`, auto-recording the band slice the launcher
    /// carved for it. The returned scope must live for the whole band
    /// body so kernel-side [`record_write`] calls attribute correctly.
    pub(crate) fn enter(&self, band: usize, slice: &[f32]) -> TaskScope {
        self.log.record_band(band, slice);
        TaskScope {
            _guard: active::BandGuard::enter(&self.log, band),
        }
    }

    /// Sweeps the recorded write sets after the launch completed.
    pub(crate) fn finish(self) -> Result<(), RaceViolation> {
        self.log.check()
    }
}

#[cfg(not(feature = "sanitize"))]
impl Monitor {
    /// Starts monitoring a launch of `data` whose geometry claims the
    /// per-band byte intervals `claims`.
    pub(crate) fn begin(op: &'static str, data: &[f32], claims: Vec<(usize, usize)>) -> Monitor {
        let _ = (op, data, claims);
        Monitor {}
    }

    /// Enters band `band`, auto-recording the band slice the launcher
    /// carved for it. The returned scope must live for the whole band
    /// body so kernel-side [`record_write`] calls attribute correctly.
    pub(crate) fn enter(&self, band: usize, slice: &[f32]) -> TaskScope {
        let _ = (band, slice);
        TaskScope {}
    }

    /// Sweeps the recorded write sets after the launch completed.
    pub(crate) fn finish(self) -> Result<(), RaceViolation> {
        Ok(())
    }
}

#[cfg(feature = "sanitize")]
use active::record_write_impl;

/// Records that the current band task wrote the given slice. A no-op
/// outside a sanitized multi-band launch, or when the slice does not lie
/// inside the launch's output. Without the `sanitize` feature this
/// compiles to nothing.
#[cfg(feature = "sanitize")]
pub fn record_write(slice: &[f32]) {
    record_write_impl(Some(slice), None);
}

/// Records that the current band task wrote the given slice. A no-op
/// outside a sanitized multi-band launch, or when the slice does not lie
/// inside the launch's output. Without the `sanitize` feature this
/// compiles to nothing.
#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn record_write(slice: &[f32]) {
    let _ = slice;
}

/// Records that the current band task wrote `len_floats` output floats
/// starting at float index `start_float` of the launch's output slice.
/// Used by kernels whose write sets are derived from metadata rather
/// than a contiguous subslice, and by the race test suites to seed
/// deliberate overlaps. A no-op outside a sanitized multi-band launch.
/// Without the `sanitize` feature this compiles to nothing.
#[cfg(feature = "sanitize")]
pub fn record_write_span(start_float: usize, len_floats: usize) {
    record_write_impl(None, Some((start_float, len_floats)));
}

/// Records that the current band task wrote `len_floats` output floats
/// starting at float index `start_float` of the launch's output slice.
/// Used by kernels whose write sets are derived from metadata rather
/// than a contiguous subslice, and by the race test suites to seed
/// deliberate overlaps. A no-op outside a sanitized multi-band launch.
/// Without the `sanitize` feature this compiles to nothing.
#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn record_write_span(start_float: usize, len_floats: usize) {
    let _ = (start_float, len_floats);
}

#[cfg(feature = "sanitize")]
mod active {
    use std::cell::{RefCell, UnsafeCell};

    use super::RaceViolation;

    /// One band's recorded write intervals (byte offsets into the plan's
    /// output). Interior-mutable without a lock — see the SAFETY
    /// discussion on [`AccessLog`].
    struct Slot(UnsafeCell<Vec<(usize, usize)>>);

    // SAFETY: a Slot is shared across threads only through AccessLog,
    // whose access protocol guarantees exclusive mutation — band b's task
    // is the sole writer of slot b while the launch runs, and the
    // submitter reads the slots only after the pool's completion
    // rendezvous (a happens-before edge via the launch-state mutex and
    // condvar). No two threads ever touch the same slot concurrently.
    unsafe impl Sync for Slot {}

    /// Shadow write-set log for one sanitized launch: one slot per band
    /// plus the byte intervals the plan's geometry claims per band.
    pub(crate) struct AccessLog {
        op: &'static str,
        /// Base address of the output slice, as an integer (used only for
        /// offset arithmetic, never dereferenced).
        base: usize,
        /// Output length in bytes.
        total_bytes: usize,
        /// Per-band claimed byte intervals `[start, end)`.
        claims: Vec<(usize, usize)>,
        slots: Vec<Slot>,
    }

    thread_local! {
        /// Stack of (log address, band index) for launches this thread is
        /// currently executing a band of. A stack because nested launches
        /// (a band body launching a sub-plan inline) must attribute
        /// writes to the innermost active band.
        static ACTIVE: RefCell<Vec<(usize, usize)>> = const { RefCell::new(Vec::new()) };
    }

    impl AccessLog {
        /// A log for one launch of `data` split into the claimed byte
        /// intervals `claims` (one per band).
        pub(crate) fn new(op: &'static str, data: &[f32], claims: Vec<(usize, usize)>) -> Self {
            let slots = (0..claims.len())
                .map(|_| Slot(UnsafeCell::new(Vec::new())))
                .collect();
            AccessLog {
                op,
                base: data.as_ptr() as usize,
                total_bytes: std::mem::size_of_val(data),
                claims,
                slots,
            }
        }

        /// Appends a byte interval to `band`'s slot.
        ///
        /// Caller contract (upheld by [`BandGuard`] + the pool's
        /// completion protocol): only the thread currently running band
        /// `band`'s task calls this, and never concurrently with
        /// [`AccessLog::check`].
        fn record(&self, band: usize, start: usize, end: usize) {
            if start >= end {
                return;
            }
            // SAFETY: exclusive access per the Slot protocol above — band
            // `band`'s task is the only writer of this slot, and the
            // submitter's read in `check` happens only after the launch's
            // completion rendezvous.
            let intervals = unsafe { &mut *self.slots[band].0.get() };
            intervals.push((start, end));
        }

        /// Records the contiguous band slice handed to band `band`, by
        /// pointer offset from the output base.
        pub(crate) fn record_band(&self, band: usize, slice: &[f32]) {
            let start = (slice.as_ptr() as usize).wrapping_sub(self.base);
            if start > self.total_bytes {
                return; // not our output (foreign scratch)
            }
            self.record(band, start, start + std::mem::size_of_val(slice));
        }

        /// Sweeps the recorded intervals: pairwise disjointness across
        /// bands first (the headline race), then per-band claim
        /// conformance.
        pub(crate) fn check(&self) -> Result<(), RaceViolation> {
            let mut all: Vec<(usize, usize, usize)> = Vec::new();
            for (band, slot) in self.slots.iter().enumerate() {
                // SAFETY: the launch completed — every band task finished
                // before `check` runs (the pool blocks the submitter on
                // the completion condvar), so no writer is live and the
                // submitter may read every slot.
                let intervals = unsafe { &*slot.0.get() };
                for &(s, e) in intervals {
                    all.push((s, e, band));
                }
            }
            all.sort_unstable();
            // Sweep with the running farthest end seen so far. Comparing
            // only adjacent intervals would miss an overlap hidden behind
            // a same-band interval that reaches farther; tracking the max
            // end and its band catches the first cross-band overlap in
            // every case (if the max is same-band, the true culprit pair
            // was already adjacent earlier in the sweep).
            let mut max_end = 0usize;
            let mut max_band = usize::MAX;
            for &(s, e, b) in &all {
                if s < max_end && b != max_band {
                    let (first, second) = if max_band < b {
                        (max_band, b)
                    } else {
                        (b, max_band)
                    };
                    return Err(RaceViolation::Overlap {
                        op: self.op,
                        first_band: first,
                        second_band: second,
                        start: s,
                        end: e.min(max_end),
                    });
                }
                if e > max_end {
                    max_end = e;
                    max_band = b;
                }
            }
            for (band, slot) in self.slots.iter().enumerate() {
                // SAFETY: as above — the launch completed, no live
                // writers remain, reading is race-free.
                let intervals = unsafe { &*slot.0.get() };
                let (cs, ce) = self.claims[band];
                for &(s, e) in intervals {
                    if s < cs || e > ce {
                        return Err(RaceViolation::ClaimMismatch {
                            op: self.op,
                            band,
                            claimed: (cs, ce),
                            recorded: (s, e),
                        });
                    }
                }
            }
            Ok(())
        }
    }

    /// RAII marker: the current thread is executing band `band` of `log`.
    /// Pushed before the band body runs and popped on drop — including
    /// the unwind path when the body panics, so a poisoned band can never
    /// leak its attribution onto a worker's next task.
    pub(crate) struct BandGuard;

    impl BandGuard {
        pub(crate) fn enter(log: &AccessLog, band: usize) -> BandGuard {
            ACTIVE.with(|a| {
                a.borrow_mut()
                    .push((log as *const AccessLog as usize, band));
            });
            BandGuard
        }
    }

    impl Drop for BandGuard {
        fn drop(&mut self) {
            ACTIVE.with(|a| {
                a.borrow_mut().pop();
            });
        }
    }

    /// Shared body of [`super::record_write`] / [`super::record_write_span`]:
    /// resolves the innermost active (log, band) for this thread and
    /// appends the interval.
    pub(crate) fn record_write_impl(slice: Option<&[f32]>, span: Option<(usize, usize)>) {
        ACTIVE.with(|a| {
            let Some(&(log_addr, band)) = a.borrow().last() else {
                return;
            };
            // SAFETY: the (log, band) pair was pushed by a live BandGuard
            // on this thread, and the guard's scope is strictly inside
            // the submitter's launch call, which keeps the AccessLog
            // alive on its stack until every band task has finished.
            let log = unsafe { &*(log_addr as *const AccessLog) };
            if let Some(s) = slice {
                log.record_band(band, s);
            }
            if let Some((start_float, len_floats)) = span {
                log.record(band, start_float * 4, (start_float + len_floats) * 4);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_order_is_deterministic_and_permutes() {
        let a = band_order(42, 8);
        let b = band_order(42, 8);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert_eq!(band_order(0, 5), vec![0, 1, 2, 3, 4]);
        // Different seeds give different orders for reasonable sizes.
        assert_ne!(band_order(1, 16), band_order(2, 16));
    }

    #[test]
    fn stall_slots_zero_without_seed() {
        for band in 0..16 {
            assert_eq!(stall_slots(0, band), 0);
        }
    }

    #[test]
    fn violation_messages_carry_the_panic_prefix() {
        let v = RaceViolation::Overlap {
            op: "sdd",
            first_band: 0,
            second_band: 3,
            start: 96,
            end: 128,
        };
        assert!(v.to_string().starts_with(RACE_PANIC_PREFIX));
        let c = RaceViolation::ClaimMismatch {
            op: "sdd",
            band: 2,
            claimed: (0, 64),
            recorded: (0, 96),
        };
        assert!(c.to_string().starts_with(RACE_PANIC_PREFIX));
    }

    #[cfg(feature = "sanitize")]
    mod active {
        use super::super::active::AccessLog;
        use super::super::RaceViolation;

        #[test]
        fn clean_log_passes() {
            let data = vec![0.0f32; 8];
            let log = AccessLog::new("t", &data, vec![(0, 16), (16, 32)]);
            log.record_band(0, &data[0..4]);
            log.record_band(1, &data[4..8]);
            assert!(log.check().is_ok());
        }

        #[test]
        fn overlap_is_reported_with_both_bands() {
            let data = vec![0.0f32; 8];
            let log = AccessLog::new("t", &data, vec![(0, 16), (16, 32)]);
            log.record_band(0, &data[0..4]);
            log.record_band(1, &data[2..8]); // overlaps floats 2..4
            match log.check() {
                Err(RaceViolation::Overlap {
                    first_band,
                    second_band,
                    start,
                    end,
                    ..
                }) => {
                    assert_eq!((first_band, second_band), (0, 1));
                    assert_eq!((start, end), (8, 16));
                }
                other => panic!("expected overlap, got {other:?}"),
            }
        }

        #[test]
        fn claim_escape_is_reported() {
            let data = vec![0.0f32; 8];
            let log = AccessLog::new("t", &data, vec![(0, 16), (16, 32)]);
            log.record_band(0, &data[0..6]); // escapes its 0..16 claim
            match log.check() {
                Err(RaceViolation::ClaimMismatch { band, .. }) => assert_eq!(band, 0),
                other => panic!("expected claim mismatch, got {other:?}"),
            }
        }

        #[test]
        fn foreign_slices_are_ignored() {
            let data = vec![0.0f32; 8];
            let scratch = [0.0f32; 8];
            let log = AccessLog::new("t", &data, vec![(0, 16), (16, 32)]);
            log.record_band(0, &scratch[0..8]);
            assert!(log.check().is_ok());
        }
    }
}

//! The band-stall watchdog.
//!
//! A launch whose band wedges — a deadlocked dependency, an injected
//! `exec.band_stall`, a pathological input — would block its submitter
//! forever: the pool's completion protocol (correctly) waits for every
//! band. The watchdog turns that hang into a bounded, structured
//! failure: each watched launch registers per-band start/finish
//! timestamps, a background scanner compares every in-flight band
//! against a stall threshold, and a band over threshold gets the
//! launch's [`CancelToken`] tripped with the deadline flavor — the
//! cooperative cancellation points then unwind the launch, which
//! reports [`crate::ExecError::DeadlineExceeded`].
//!
//! The threshold is median-based, mirroring the expert-parallel
//! straggler detector: `max(budget, STALL_FACTOR x median finished-band
//! time)`, so a uniformly slow launch (big inputs) is not punished for
//! honest work while one band lagging its siblings by an order of
//! magnitude is.
//!
//! Watching is opt-in per process ([`configure_stall_budget`] /
//! `MEGABLOCKS_STALL_MS`) or per plan
//! ([`crate::LaunchPlan::with_stall_budget`]); with no budget set, no
//! watchdog thread is ever spawned and launches pay nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use megablocks_resilience as resilience;
use megablocks_telemetry as telemetry;

use crate::cancel::CancelToken;

/// Multiplier over the median finished-band time before an in-flight
/// band counts as stalled (the EP straggler detector's factor).
const STALL_FACTOR: u64 = 8;

/// Stall budget requested via [`configure_stall_budget`] before first
/// use, stored as milliseconds + 1 (0 = unset).
static CONFIGURED: AtomicU64 = AtomicU64::new(0);

/// The resolved process-wide stall budget in milliseconds (0 = watchdog
/// disabled).
static BUDGET_MS: OnceLock<u64> = OnceLock::new();

/// Requests a process-wide stall budget, overriding `MEGABLOCKS_STALL_MS`.
/// `None` (or a zero duration) disables the watchdog for unwatched plans.
///
/// Returns `false` if the runtime already resolved its budget (the
/// original configuration is kept in that case).
pub fn configure_stall_budget(budget: Option<Duration>) -> bool {
    let ms = budget.map_or(0, |b| u64::try_from(b.as_millis()).unwrap_or(u64::MAX - 1));
    CONFIGURED.store(ms + 1, Relaxed);
    BUDGET_MS.get().is_none()
}

/// The resolved process-wide stall budget: explicit
/// [`configure_stall_budget`], then the `MEGABLOCKS_STALL_MS`
/// environment variable, then disabled.
pub fn stall_budget() -> Option<Duration> {
    let ms = *BUDGET_MS.get_or_init(|| {
        let configured = CONFIGURED.load(Relaxed);
        if configured > 0 {
            return configured - 1;
        }
        if let Ok(v) = std::env::var("MEGABLOCKS_STALL_MS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                return n;
            }
        }
        0
    });
    if ms == 0 {
        None
    } else {
        Some(Duration::from_millis(ms))
    }
}

/// Per-launch stall bookkeeping shared between the launch's band tasks
/// (writers) and the scanner thread (reader).
pub(crate) struct LaunchWatch {
    op: &'static str,
    token: CancelToken,
    budget: Duration,
    epoch: Instant,
    /// Band start offsets from `epoch`, in µs + 1 (0 = not started).
    started_us: Vec<AtomicU64>,
    /// Band finish offsets from `epoch`, in µs + 1 (0 = in flight).
    finished_us: Vec<AtomicU64>,
    fired: AtomicBool,
}

impl LaunchWatch {
    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX - 1)
    }

    /// Records band `b` entering its body on some worker.
    pub(crate) fn band_started(&self, b: usize) {
        if let Some(slot) = self.started_us.get(b) {
            slot.store(self.elapsed_us() + 1, Relaxed);
        }
    }

    /// Records band `b` finishing its body.
    pub(crate) fn band_finished(&self, b: usize) {
        if let Some(slot) = self.finished_us.get(b) {
            slot.store(self.elapsed_us() + 1, Relaxed);
        }
    }

    /// Scans the watch once; fires the cancel on the first stalled band.
    fn scan(&self) {
        if self.fired.load(Relaxed) {
            return;
        }
        let now_us = self.elapsed_us();
        let mut finished: Vec<u64> = self
            .started_us
            .iter()
            .zip(&self.finished_us)
            .filter_map(|(s, f)| {
                let (s, f) = (s.load(Relaxed), f.load(Relaxed));
                (s > 0 && f > 0).then(|| f.saturating_sub(s))
            })
            .collect();
        finished.sort_unstable();
        let budget_us = u64::try_from(self.budget.as_micros()).unwrap_or(u64::MAX);
        let threshold_us = match finished.get(finished.len() / 2) {
            Some(&median) => budget_us.max(median.saturating_mul(STALL_FACTOR)),
            None => budget_us,
        };
        for (s, f) in self.started_us.iter().zip(&self.finished_us) {
            let start = s.load(Relaxed);
            if start == 0 || f.load(Relaxed) > 0 {
                continue;
            }
            if now_us.saturating_sub(start - 1) > threshold_us {
                self.fired.store(true, Relaxed);
                self.token.cancel_deadline();
                resilience::record_detected(&resilience::sites::EXEC_BAND_STALL);
                telemetry::counter_with("exec.cancelled", "watchdog").inc();
                telemetry::trace_instant("exec.watchdog.stall");
                telemetry::counter_with("exec.watchdog.fired", self.op).inc();
                return;
            }
        }
    }
}

struct Registry {
    watches: Mutex<Vec<Arc<LaunchWatch>>>,
    wake: Condvar,
}

/// The process-wide registry; the scanner thread is spawned alongside it
/// on the first watched launch.
fn registry() -> &'static Arc<Registry> {
    static REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let registry = Arc::new(Registry {
            watches: Mutex::new(Vec::new()),
            wake: Condvar::new(),
        });
        let scanner = Arc::clone(&registry);
        let spawned = std::thread::Builder::new()
            .name("megablocks-watchdog".to_string())
            .spawn(move || scanner_loop(&scanner));
        // A failed spawn degrades stall detection but not correctness:
        // watched launches simply run unwatched.
        drop(spawned);
        registry
    })
}

/// Registers a launch with the watchdog. The returned [`Unwatch`] guard
/// must live for the duration of the launch; dropping it (normally or
/// during an unwind) retires the watch.
pub(crate) fn register(
    op: &'static str,
    token: CancelToken,
    bands: usize,
    budget: Duration,
) -> Unwatch {
    let watch = Arc::new(LaunchWatch {
        op,
        token,
        budget,
        epoch: Instant::now(),
        started_us: (0..bands).map(|_| AtomicU64::new(0)).collect(),
        finished_us: (0..bands).map(|_| AtomicU64::new(0)).collect(),
        fired: AtomicBool::new(false),
    });
    let registry = registry();
    registry
        .watches
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&watch));
    registry.wake.notify_all();
    Unwatch(watch)
}

/// RAII registration guard for one watched launch; retires the watch on
/// drop (even when the launch unwinds through a band panic).
pub(crate) struct Unwatch(Arc<LaunchWatch>);

impl Unwatch {
    pub(crate) fn watch(&self) -> &LaunchWatch {
        &self.0
    }
}

impl Drop for Unwatch {
    fn drop(&mut self) {
        let mut watches = registry().watches.lock().unwrap_or_else(|e| e.into_inner());
        watches.retain(|w| !Arc::ptr_eq(w, &self.0));
    }
}

/// Scanner main loop: sleep while no launches are watched, otherwise
/// poll every watch at a fraction of the smallest active budget.
fn scanner_loop(registry: &Registry) {
    let mut watches = registry.watches.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if watches.is_empty() {
            watches = registry
                .wake
                .wait(watches)
                .unwrap_or_else(|e| e.into_inner());
            continue;
        }
        let interval = watches
            .iter()
            .map(|w| w.budget / 4)
            .min()
            .unwrap_or(Duration::from_millis(10))
            .clamp(Duration::from_millis(1), Duration::from_millis(50));
        let (guard, _timeout) = registry
            .wake
            .wait_timeout(watches, interval)
            .unwrap_or_else(|e| e.into_inner());
        watches = guard;
        for watch in watches.iter() {
            watch.scan();
        }
    }
}

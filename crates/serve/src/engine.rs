//! The micro-batching engine: bounded admission queue, dual-trigger
//! batch formation, deadline-aware execution, per-request responses.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use megablocks_core::DroplessMoe;
use megablocks_exec::{CancelKind, CancelToken, Ctx, Deadline};
use megablocks_sparse::SparseError;
use megablocks_telemetry as telemetry;
use megablocks_tensor::Matrix;

/// Tuning knobs for the serving engine.
///
/// [`ServeConfig::from_env`] reads the `MEGABLOCKS_SERVE_*` environment
/// variables; the builder methods override them programmatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests per micro-batch (`MEGABLOCKS_SERVE_BATCH`,
    /// default 8). A batch closes as soon as this many requests wait.
    pub max_batch: usize,
    /// Maximum time the oldest request waits for co-riders before the
    /// batch closes anyway (`MEGABLOCKS_SERVE_MAX_WAIT_US`,
    /// default 2000 µs). Also the slack threshold: a request whose
    /// deadline is closer than this stops the wait immediately.
    pub max_wait: Duration,
    /// Admission-queue bound (`MEGABLOCKS_SERVE_QUEUE_CAP`, default 64).
    /// Submissions past this shed with [`ServeError::Overloaded`].
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(2000),
            queue_cap: 64,
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl ServeConfig {
    /// The default config with any `MEGABLOCKS_SERVE_*` environment
    /// overrides applied (invalid values fall back to the defaults).
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        ServeConfig {
            max_batch: env_usize("MEGABLOCKS_SERVE_BATCH")
                .filter(|&n| n > 0)
                .unwrap_or(d.max_batch),
            max_wait: env_usize("MEGABLOCKS_SERVE_MAX_WAIT_US")
                .map(|us| Duration::from_micros(us as u64))
                .unwrap_or(d.max_wait),
            queue_cap: env_usize("MEGABLOCKS_SERVE_QUEUE_CAP")
                .filter(|&n| n > 0)
                .unwrap_or(d.queue_cap),
        }
    }

    /// Overrides the per-batch request cap (must be nonzero).
    pub fn with_max_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "max_batch must be nonzero");
        self.max_batch = n;
        self
    }

    /// Overrides the batching wait / slack threshold.
    pub fn with_max_wait(mut self, d: Duration) -> Self {
        self.max_wait = d;
        self
    }

    /// Overrides the admission-queue bound (must be nonzero).
    pub fn with_queue_cap(mut self, n: usize) -> Self {
        assert!(n > 0, "queue_cap must be nonzero");
        self.queue_cap = n;
        self
    }
}

/// Why a request did not produce an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was at [`ServeConfig::queue_cap`]; the
    /// request was shed without being enqueued. Carries the queue
    /// depth observed at rejection.
    Overloaded {
        /// Queue depth at the moment of rejection.
        depth: usize,
    },
    /// The request's deadline passed before its batch was formed (or
    /// before its batch finished computing).
    Expired,
    /// The batch this request rode in was cancelled mid-flight
    /// (engine shutdown, or a composite-context trip).
    Cancelled(CancelKind),
    /// A kernel rejected the batch (corrupt topology metadata or a
    /// sanitizer failure) — not load-related.
    Kernel(String),
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "serve queue overloaded (depth {depth})")
            }
            ServeError::Expired => write!(f, "request deadline expired before completion"),
            ServeError::Cancelled(kind) => write!(f, "batch cancelled: {kind:?}"),
            ServeError::Kernel(msg) => write!(f, "kernel error: {msg}"),
            ServeError::ShuttingDown => write!(f, "serving engine is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A completed request: the layer output plus latency accounting.
#[derive(Debug, Clone)]
pub struct Response {
    /// Layer output for this request's tokens (`rows x hidden_size`).
    pub output: Matrix,
    /// Time spent queued before the batch closed.
    pub queue_wait: Duration,
    /// End-to-end latency from submit to resolution.
    pub latency: Duration,
    /// Number of requests in the batch this one rode in.
    pub batch_size: usize,
}

/// One request's resolution slot, shared between the submitting thread
/// and the batcher.
#[derive(Debug, Default)]
struct Slot {
    state: Mutex<Option<Result<Response, ServeError>>>,
    cv: Condvar,
}

impl Slot {
    fn resolve(&self, result: Result<Response, ServeError>) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *state = Some(result);
        self.cv.notify_all();
    }
}

/// A handle to a submitted request; redeem it with
/// [`ResponseHandle::wait`].
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<Slot>,
}

impl ResponseHandle {
    /// Blocks until the request resolves.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut state = self.slot.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            state = self.slot.cv.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// The resolution, if the request already resolved (non-blocking).
    pub fn try_take(&self) -> Option<Result<Response, ServeError>> {
        self.slot
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
    }
}

/// A queued request awaiting batch formation.
struct Pending {
    tokens: Matrix,
    deadline: Option<Deadline>,
    submitted: Instant,
    slot: Arc<Slot>,
}

impl Pending {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| d.expired())
    }
}

/// Monotonic counters describing an engine's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests resolved with an output.
    pub completed: u64,
    /// Requests shed at admission ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Requests dropped for a passed deadline (pre-batch or
    /// post-compute).
    pub expired: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest queue depth observed at any admission.
    pub max_queue_depth: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    expired: AtomicU64,
    batches: AtomicU64,
    max_queue_depth: AtomicUsize,
}

impl Counters {
    fn observe_depth(&self, depth: usize) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EngineStats {
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed) as u64,
        }
    }
}

struct State {
    queue: VecDeque<Pending>,
    running: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    cfg: ServeConfig,
    root: CancelToken,
    counters: Counters,
    layer: DroplessMoe,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The batched inference serving engine.
///
/// Owns a dMoE layer and one batcher thread. Submitting threads hand
/// token batches to [`Engine::submit`] and block on the returned
/// [`ResponseHandle`]; the batcher forms micro-batches, runs them
/// through [`DroplessMoe::infer_ctx`], and resolves each member. The
/// engine shuts down (cancelling in-flight batches mid-kernel) on
/// [`Engine::shutdown`] or drop.
pub struct Engine {
    shared: Arc<Shared>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cfg", &self.shared.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Engine {
    /// Starts an engine serving `layer` under `cfg`.
    pub fn new(layer: DroplessMoe, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch > 0, "max_batch must be nonzero");
        assert!(cfg.queue_cap > 0, "queue_cap must be nonzero");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                running: true,
            }),
            cv: Condvar::new(),
            cfg,
            root: CancelToken::new(),
            counters: Counters::default(),
            layer,
        });
        let worker = Arc::clone(&shared);
        // The batcher is a control-plane thread (it blocks on a condvar
        // waiting for requests), not a compute worker; all kernel work
        // it triggers still launches through the exec pool.
        // audit: allow(raw-parallelism) -- batcher control thread blocks on the admission condvar; compute still goes through the exec pool
        let batcher = std::thread::Builder::new()
            .name("mb-serve-batcher".into())
            .spawn(move || batcher_loop(&worker))
            .expect("spawn serve batcher");
        Engine {
            shared,
            batcher: Some(batcher),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// The layer being served.
    pub fn layer(&self) -> &DroplessMoe {
        &self.shared.layer
    }

    /// Lifetime counters.
    pub fn stats(&self) -> EngineStats {
        self.shared.counters.snapshot()
    }

    /// Submits `tokens` (`rows x hidden_size`) with an optional
    /// deadline; returns a handle resolving to the layer output for
    /// exactly those rows.
    ///
    /// # Errors
    ///
    /// * [`ServeError::Overloaded`] — queue at capacity; request shed.
    /// * [`ServeError::Expired`] — the deadline had already passed.
    /// * [`ServeError::ShuttingDown`] — the engine stopped.
    ///
    /// # Panics
    ///
    /// Panics if `tokens.cols()` does not match the layer's hidden
    /// size, or if `tokens` has zero rows.
    pub fn submit(
        &self,
        tokens: Matrix,
        deadline: Option<Deadline>,
    ) -> Result<ResponseHandle, ServeError> {
        assert_eq!(
            tokens.cols(),
            self.shared.layer.config().hidden_size,
            "request feature size mismatch"
        );
        assert!(tokens.rows() > 0, "empty request");
        if deadline.is_some_and(|d| d.expired()) {
            self.shared.counters.expired.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("serve.expired").inc();
            return Err(ServeError::Expired);
        }
        let mut state = self.shared.lock();
        if !state.running {
            return Err(ServeError::ShuttingDown);
        }
        let depth = state.queue.len();
        if depth >= self.shared.cfg.queue_cap {
            drop(state);
            self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("serve.shed").inc();
            telemetry::trace_instant("serve.shed");
            return Err(ServeError::Overloaded { depth });
        }
        let slot = Arc::new(Slot::default());
        state.queue.push_back(Pending {
            tokens,
            deadline,
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
        });
        let depth = state.queue.len();
        drop(state);
        self.shared.counters.observe_depth(depth);
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        telemetry::counter("serve.submitted").inc();
        telemetry::gauge("serve.queue_depth").set(depth as f64);
        telemetry::trace_counter_event("serve.queue_depth", depth as f64);
        self.shared.cv.notify_one();
        Ok(ResponseHandle { slot })
    }

    /// Stops the engine: no further admissions, in-flight batches are
    /// cancelled mid-kernel through the root token, queued requests
    /// resolve [`ServeError::ShuttingDown`], and the batcher thread is
    /// joined. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.lock();
            state.running = false;
        }
        self.shared.root.cancel();
        self.shared.cv.notify_all();
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Walks the queue and resolves every already-expired request with
/// [`ServeError::Expired`] — called before each batch formation so dead
/// requests never occupy a batch slot.
fn drop_expired(state: &mut State, counters: &Counters) {
    let before = state.queue.len();
    if before == 0 {
        return;
    }
    let mut kept = VecDeque::with_capacity(before);
    for pending in state.queue.drain(..) {
        if pending.expired() {
            // Count before resolving: a waiter woken by the resolve must
            // already see this request in the stats.
            counters.expired.fetch_add(1, Ordering::Relaxed);
            telemetry::counter("serve.expired").inc();
            telemetry::trace_instant("serve.expired");
            pending.slot.resolve(Err(ServeError::Expired));
        } else {
            kept.push_back(pending);
        }
    }
    state.queue = kept;
}

/// How long the batcher may keep waiting for co-riders, given the
/// oldest queued request: `None` means a trigger already fired.
fn wait_budget(oldest: &Pending, max_wait: Duration) -> Option<Duration> {
    let waited = oldest.submitted.elapsed();
    if waited >= max_wait {
        return None;
    }
    let mut budget = max_wait - waited;
    if let Some(deadline) = oldest.deadline {
        let slack = deadline.remaining();
        if slack <= max_wait {
            // Less than a batching window of slack left: waiting any
            // longer could not be recovered by batching efficiency.
            return None;
        }
        budget = budget.min(slack - max_wait);
    }
    Some(budget)
}

fn batcher_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut state = shared.lock();
            loop {
                if !state.running {
                    // Drain the queue so no submitter blocks forever.
                    for pending in state.queue.drain(..) {
                        pending.slot.resolve(Err(ServeError::ShuttingDown));
                    }
                    return;
                }
                drop_expired(&mut state, &shared.counters);
                if state.queue.is_empty() {
                    state = shared.cv.wait(state).unwrap_or_else(|p| p.into_inner());
                    continue;
                }
                if state.queue.len() >= shared.cfg.max_batch {
                    break;
                }
                let oldest = state.queue.front().expect("nonempty queue");
                match wait_budget(oldest, shared.cfg.max_wait) {
                    None => break,
                    Some(budget) => {
                        let (next, _timeout) = shared
                            .cv
                            .wait_timeout(state, budget)
                            .unwrap_or_else(|p| p.into_inner());
                        state = next;
                    }
                }
            }
            let take = state.queue.len().min(shared.cfg.max_batch);
            state.queue.drain(..take).collect::<Vec<_>>()
        };
        if !batch.is_empty() {
            run_batch(shared, batch);
        }
    }
}

/// Concatenates the batch's token rows, runs the inference pass under a
/// composite context, and resolves every member.
fn run_batch(shared: &Shared, batch: Vec<Pending>) {
    let _span = telemetry::span("serve.batch");
    let hidden = shared.layer.config().hidden_size;
    let total_rows: usize = batch.iter().map(|p| p.tokens.rows()).sum();
    let batch_size = batch.len();
    let formed = Instant::now();

    let mut input = Matrix::pooled_zeros(total_rows, hidden);
    {
        let data = input.as_mut_slice();
        let mut row0 = 0;
        for pending in &batch {
            let rows = pending.tokens.rows();
            data[row0 * hidden..(row0 + rows) * hidden].copy_from_slice(pending.tokens.as_slice());
            row0 += rows;
        }
    }

    // Composite context: cancellable by shutdown, bounded by the
    // *latest* member deadline (the batch is still worth finishing
    // while any member can meet its own deadline; members that
    // individually expired mid-compute are filtered on resolution).
    // A member without a deadline leaves the batch unbounded.
    let mut ctx = Ctx::none().with_token(&shared.root.child());
    if batch.iter().all(|p| p.deadline.is_some()) {
        let latest = batch
            .iter()
            .filter_map(|p| p.deadline)
            .max_by_key(Deadline::remaining);
        if let Some(deadline) = latest {
            ctx = ctx.with_deadline(deadline);
        }
    }

    telemetry::histogram("serve.batch_size").record(batch_size as u64);
    telemetry::counter("serve.batches").inc();
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);

    match shared.layer.infer_ctx(&input, &ctx) {
        Ok(output) => {
            let mut row0 = 0;
            for pending in batch {
                let rows = pending.tokens.rows();
                let slice = output.rows_range(row0, row0 + rows);
                row0 += rows;
                if pending.expired() {
                    // Finished compute, but past this member's own
                    // deadline: the caller's budget is blown either way.
                    slice.recycle();
                    shared.counters.expired.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("serve.expired").inc();
                    pending.slot.resolve(Err(ServeError::Expired));
                    continue;
                }
                let queue_wait = formed.duration_since(pending.submitted);
                let latency = pending.submitted.elapsed();
                telemetry::histogram("serve.queue_wait_us").record(queue_wait.as_micros() as u64);
                telemetry::histogram("serve.latency_us").record(latency.as_micros() as u64);
                // Count before resolving so a waiter woken by its own
                // resolution already sees itself in the stats.
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                telemetry::counter("serve.completed").inc();
                pending.slot.resolve(Ok(Response {
                    output: slice,
                    queue_wait,
                    latency,
                    batch_size,
                }));
            }
            output.recycle();
        }
        Err(SparseError::Cancelled { kind, .. }) => {
            telemetry::counter("serve.batch_cancelled").inc();
            telemetry::trace_instant("serve.batch_cancelled");
            let error = match kind {
                CancelKind::DeadlineExceeded => ServeError::Expired,
                other => ServeError::Cancelled(other),
            };
            for pending in batch {
                if matches!(error, ServeError::Expired) {
                    shared.counters.expired.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter("serve.expired").inc();
                }
                pending.slot.resolve(Err(error.clone()));
            }
        }
        Err(other) => {
            let message = other.to_string();
            for pending in batch {
                pending
                    .slot
                    .resolve(Err(ServeError::Kernel(message.clone())));
            }
        }
    }
    input.recycle();
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_core::MoeConfig;
    use megablocks_tensor::init::{normal, seeded_rng};

    fn small_engine(cfg: ServeConfig) -> (Engine, rand::rngs::StdRng) {
        let moe = MoeConfig::new(6, 8, 3).with_block_size(4);
        let mut rng = seeded_rng(11);
        let layer = DroplessMoe::new(moe, &mut rng);
        (Engine::new(layer, cfg), rng)
    }

    #[test]
    fn batched_output_is_bit_identical_to_sequential() {
        let (engine, mut rng) = small_engine(
            ServeConfig::default()
                .with_max_batch(4)
                .with_max_wait(Duration::from_millis(20)),
        );
        let requests: Vec<Matrix> = (0..4).map(|_| normal(3, 6, 1.0, &mut rng)).collect();
        let handles: Vec<_> = requests
            .iter()
            .map(|r| engine.submit(r.clone(), None).expect("admitted"))
            .collect();
        for (request, handle) in requests.iter().zip(handles) {
            let response = handle.wait().expect("served");
            let sequential = engine.layer().infer(request).unwrap();
            assert_eq!(
                response.output.as_slice(),
                sequential.as_slice(),
                "batched result diverged from sequential"
            );
            assert!(response.batch_size >= 1 && response.batch_size <= 4);
        }
        assert_eq!(engine.stats().completed, 4);
    }

    #[test]
    fn max_batch_trigger_groups_requests() {
        // A long max_wait means only the size trigger can close the
        // batch; submitting exactly max_batch requests must form one
        // batch of that size.
        let (engine, mut rng) = small_engine(
            ServeConfig::default()
                .with_max_batch(3)
                .with_max_wait(Duration::from_secs(5)),
        );
        let handles: Vec<_> = (0..3)
            .map(|_| {
                engine
                    .submit(normal(2, 6, 1.0, &mut rng), None)
                    .expect("admitted")
            })
            .collect();
        for handle in handles {
            let response = handle.wait().expect("served");
            assert_eq!(response.batch_size, 3, "size trigger should batch all 3");
        }
        assert_eq!(engine.stats().batches, 1);
    }

    #[test]
    fn max_wait_trigger_fires_for_a_lone_request() {
        let (engine, mut rng) = small_engine(
            ServeConfig::default()
                .with_max_batch(64)
                .with_max_wait(Duration::from_millis(2)),
        );
        let handle = engine
            .submit(normal(2, 6, 1.0, &mut rng), None)
            .expect("admitted");
        let response = handle.wait().expect("served before max_batch fills");
        assert_eq!(response.batch_size, 1);
        assert!(response.queue_wait >= Duration::from_millis(1));
    }

    #[test]
    fn overload_sheds_at_the_queue_cap() {
        // Choke the batcher with a huge max_wait so the queue fills.
        let (engine, mut rng) = small_engine(
            ServeConfig::default()
                .with_max_batch(64)
                .with_queue_cap(2)
                .with_max_wait(Duration::from_secs(30)),
        );
        let a = engine.submit(normal(1, 6, 1.0, &mut rng), None);
        let b = engine.submit(normal(1, 6, 1.0, &mut rng), None);
        assert!(a.is_ok() && b.is_ok());
        match engine.submit(normal(1, 6, 1.0, &mut rng), None) {
            Err(ServeError::Overloaded { depth }) => assert!(depth >= 2),
            other => panic!("expected shed, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.shed, 1);
        assert!(stats.max_queue_depth <= 2, "queue depth exceeded the cap");
    }

    #[test]
    fn expired_requests_drop_before_batch_formation() {
        let (engine, mut rng) = small_engine(
            ServeConfig::default()
                .with_max_batch(8)
                .with_max_wait(Duration::from_millis(30)),
        );
        // Already-expired deadline: rejected at submit.
        let dead = engine.submit(
            normal(1, 6, 1.0, &mut rng),
            Some(Deadline::after(Duration::ZERO)),
        );
        assert_eq!(dead.err(), Some(ServeError::Expired));

        // A deadline that expires while queued behind an unhurried
        // request: the batcher waits out the oldest request's budget,
        // and by the time the batch forms the doomed co-rider has
        // expired — it must be dropped *before* formation, so the
        // healthy request rides alone.
        let healthy = engine
            .submit(normal(1, 6, 1.0, &mut rng), None)
            .expect("admitted");
        let doomed = engine
            .submit(
                normal(1, 6, 1.0, &mut rng),
                Some(Deadline::after(Duration::from_millis(1))),
            )
            .expect("admitted with slack");
        assert_eq!(doomed.wait().err(), Some(ServeError::Expired));
        let response = healthy.wait().expect("healthy request served");
        assert_eq!(response.batch_size, 1, "expired request rode in no batch");
        assert!(engine.stats().expired >= 2);
    }

    #[test]
    fn shutdown_resolves_queued_requests() {
        let (mut engine, mut rng) = small_engine(
            ServeConfig::default()
                .with_max_batch(64)
                .with_max_wait(Duration::from_secs(30)),
        );
        let handle = engine
            .submit(normal(1, 6, 1.0, &mut rng), None)
            .expect("admitted");
        engine.shutdown();
        match handle.wait() {
            Err(ServeError::ShuttingDown) | Err(ServeError::Cancelled(_)) | Ok(_) => {}
            other => panic!("unexpected shutdown resolution: {other:?}"),
        }
        let refused = engine.submit(normal(1, 6, 1.0, &mut rng), None);
        assert_eq!(refused.err(), Some(ServeError::ShuttingDown));
    }

    #[test]
    fn flood_keeps_queue_depth_bounded() {
        // Open-loop flood at a tiny queue cap: everything either
        // resolves or sheds, and the observed depth never exceeds the
        // cap.
        let cap = 4;
        let (engine, mut rng) = small_engine(
            ServeConfig::default()
                .with_max_batch(2)
                .with_queue_cap(cap)
                .with_max_wait(Duration::from_micros(100)),
        );
        let mut handles = Vec::new();
        let mut shed = 0u64;
        for _ in 0..200 {
            match engine.submit(normal(1, 6, 1.0, &mut rng), None) {
                Ok(h) => handles.push(h),
                Err(ServeError::Overloaded { depth }) => {
                    assert!(depth <= cap, "shed at depth {depth} past cap {cap}");
                    shed += 1;
                }
                Err(other) => panic!("unexpected flood error: {other:?}"),
            }
        }
        let served = handles.len() as u64;
        for handle in handles {
            handle.wait().expect("admitted flood request served");
        }
        let stats = engine.stats();
        assert!(
            stats.max_queue_depth <= cap as u64,
            "queue depth {} exceeded cap {cap}",
            stats.max_queue_depth
        );
        assert_eq!(stats.submitted, served);
        assert_eq!(stats.shed, shed);
    }

    #[test]
    fn from_env_falls_back_to_defaults() {
        // The test environment does not set MEGABLOCKS_SERVE_*.
        assert_eq!(ServeConfig::from_env(), ServeConfig::default());
    }
}

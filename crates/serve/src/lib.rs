//! Batched inference serving for MegaBlocks-RS.
//!
//! Training amortizes kernel-launch and routing overhead over large
//! batches for free; inference does not — requests arrive one at a
//! time, each carrying its own latency budget. This crate closes that
//! gap with a deadline-aware micro-batching engine over the dMoE
//! inference path ([`megablocks_core::DroplessMoe::infer_ctx`]):
//!
//! * **Bounded admission** — [`Engine::submit`] enqueues a
//!   `(tokens, deadline)` request into a bounded queue and sheds with
//!   [`ServeError::Overloaded`] once the queue is at
//!   [`ServeConfig::queue_cap`], mirroring the worker pool's own
//!   admission control (`exec::configure_queue_cap`): under flood the
//!   queue depth stays bounded and excess load fails fast instead of
//!   growing an unbounded backlog nobody will ever meet a deadline
//!   through.
//! * **Dual-trigger batch formation** — the batcher closes a
//!   micro-batch when it reaches [`ServeConfig::max_batch`] requests,
//!   or when the oldest waiting request has either waited
//!   [`ServeConfig::max_wait`] or has only `max_wait` of deadline
//!   slack left (waiting any longer could not be recovered by batching
//!   efficiency).
//! * **Pre-batch expiry** — requests whose deadline has already passed
//!   are dropped *before* batch formation and resolved with
//!   [`ServeError::Expired`]; they never occupy a slot in a batch the
//!   kernels then compute for nothing.
//! * **Deadline-aware execution** — each batch runs under an
//!   `exec::Ctx` combining a child of the engine's root cancel token
//!   with the latest member deadline, so shutdown and deadline overrun
//!   unwind mid-kernel through the existing band-boundary checks
//!   rather than running the batch to completion.
//!
//! The batched path is *bit-identical* to sequential evaluation:
//! per-token outputs do not depend on which batch a token rode in
//! (one-accumulator-per-element contract), so batching is purely a
//! throughput optimization — verified in this crate's tests and
//! enforced as a perf floor by `mb gate` against `BENCH_serve.json`.
//!
//! Latency (queue wait and end-to-end), batch sizes, queue depth and
//! shed/expired counts are recorded under `serve.*` telemetry metrics
//! and mirrored onto the timeline trace.

#![deny(missing_docs)]

mod engine;

pub use engine::{Engine, EngineStats, Response, ResponseHandle, ServeConfig, ServeError};

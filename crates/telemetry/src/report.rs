//! Snapshot data model, sinks, and renderers — plain data with no
//! atomics, compiled in both feature modes so downstream code that
//! consumes snapshots type-checks identically whether recording is
//! enabled or not.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::value::{json_escape, Value};

/// Point-in-time copy of one counter.
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Family name.
    pub name: String,
    /// Optional label within the family.
    pub label: Option<String>,
    /// Counter value.
    pub value: u64,
}

/// Point-in-time copy of one gauge.
#[derive(Debug, Clone)]
pub struct GaugeRow {
    /// Family name.
    pub name: String,
    /// Gauge value.
    pub value: f64,
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Family name.
    pub name: String,
    /// Optional label within the family.
    pub label: Option<String>,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

/// Point-in-time summary of one span family.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub calls: u64,
    /// Total inclusive nanoseconds across calls.
    pub total_ns: u64,
    /// Total exclusive nanoseconds (inclusive minus child spans).
    pub self_ns: u64,
    /// Median inclusive duration estimate (ns).
    pub p50_ns: u64,
    /// 99th-percentile inclusive duration estimate (ns).
    pub p99_ns: u64,
    /// Largest inclusive duration (ns).
    pub max_ns: u64,
}

/// A point-in-time copy of the whole registry, consumed by [`Sink`]s.
/// Empty when recording is disabled.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, sorted by (name, label).
    pub counters: Vec<CounterRow>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeRow>,
    /// All histograms, sorted by (name, label).
    pub histograms: Vec<HistogramRow>,
    /// All span families, sorted by descending total time.
    pub spans: Vec<SpanRow>,
    /// Event log lines, each already rendered as a JSON object.
    pub events: Vec<String>,
}

/// An exporter consuming [`Snapshot`]s.
pub trait Sink {
    /// Exports one snapshot.
    fn export(&self, snapshot: &Snapshot) -> io::Result<()>;
}

/// Sink writing one JSON object per line — one per metric, plus every
/// event — suitable for `results/*.jsonl`.
pub struct JsonlSink {
    path: PathBuf,
}

impl JsonlSink {
    /// Creates a sink writing to `path` (parent directories are created).
    pub fn new(path: impl AsRef<Path>) -> Self {
        JsonlSink {
            path: path.as_ref().to_path_buf(),
        }
    }
}

impl Sink for JsonlSink {
    fn export(&self, snapshot: &Snapshot) -> io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(&self.path, render_jsonl(snapshot))
    }
}

fn label_json(label: &Option<String>) -> String {
    match label {
        Some(l) => format!(",\"label\":{}", json_escape(l)),
        None => String::new(),
    }
}

/// Renders a snapshot in the JSONL format [`JsonlSink`] writes.
pub fn render_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":{}{},\"value\":{}}}",
            json_escape(&c.name),
            label_json(&c.label),
            c.value
        );
    }
    for g in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
            json_escape(&g.name),
            Value::F64(g.value).to_json()
        );
    }
    for h in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":{}{},\"count\":{},\"sum\":{},\
             \"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_escape(&h.name),
            label_json(&h.label),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.p50,
            h.p90,
            h.p99
        );
    }
    for s in &snapshot.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":{},\"calls\":{},\"total_ns\":{},\
             \"self_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            json_escape(&s.name),
            s.calls,
            s.total_ns,
            s.self_ns,
            s.p50_ns,
            s.p99_ns,
            s.max_ns
        );
    }
    for e in &snapshot.events {
        let _ = writeln!(out, "{e}");
    }
    out
}

/// Sink printing the human-readable summary table to stdout.
#[derive(Debug, Default)]
pub struct SummarySink;

impl Sink for SummarySink {
    fn export(&self, snapshot: &Snapshot) -> io::Result<()> {
        print!("{}", render_summary(snapshot));
        Ok(())
    }
}

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Renders the human-readable summary table for a snapshot.
pub fn render_summary(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "================ telemetry summary ================");
    if !snapshot.spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "span", "calls", "total", "self", "p50", "p99"
        );
        for s in &snapshot.spans {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
                s.name,
                s.calls,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns),
                fmt_ns(s.p50_ns),
                fmt_ns(s.p99_ns)
            );
        }
    }
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "{:<44} {:>16}", "counter", "value");
        for c in &snapshot.counters {
            let name = match &c.label {
                Some(l) => format!("{}{{{}}}", c.name, l),
                None => c.name.clone(),
            };
            let _ = writeln!(out, "{:<44} {:>16}", name, c.value);
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "{:<44} {:>16}", "gauge", "value");
        for g in &snapshot.gauges {
            let _ = writeln!(out, "{:<44} {:>16.6}", g.name, g.value);
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "histogram", "count", "min", "p50", "p90", "p99", "max"
        );
        for h in &snapshot.histograms {
            let name = match &h.label {
                Some(l) => format!("{}{{{}}}", h.name, l),
                None => h.name.clone(),
            };
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                name, h.count, h.min, h.p50, h.p90, h.p99, h.max
            );
        }
    }
    if !snapshot.events.is_empty() {
        let _ = writeln!(out, "events: {}", snapshot.events.len());
    }
    let _ = writeln!(out, "===================================================");
    out
}

//! A minimal JSON value parser, compiled in both feature modes.
//!
//! The workspace deliberately carries no serde dependency, but three
//! consumers need to *read* JSON we ourselves wrote: the trace
//! round-trip tests ([`crate::trace::parse_chrome_trace`]), the bench
//! regression gate (committed `BENCH_*.json` baselines), and the health
//! report CLI. This is a strict-enough recursive-descent parser for
//! that closed world: objects, arrays, strings with the standard
//! escapes, `f64` numbers, booleans and null. It is not a general
//! validating parser — surrogate-pair escapes degrade to U+FFFD and
//! number syntax is delegated to `f64::from_str` — but it rejects
//! trailing garbage and mismatched brackets, which is what the tests
//! and the gate need to trust their inputs.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys kept as-is.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `src` as a single JSON document (trailing whitespace
    /// allowed, trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or
                    // escape in one step: validating per character would
                    // re-scan the remaining input each time and turn
                    // large documents quadratic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let num = text
            .parse::<f64>()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        // `f64::from_str` accepts overflowing literals like `1e999` and
        // returns infinity; JSON has no non-finite numbers, so a literal
        // that does not fit a finite f64 is a malformed document, not an
        // infinity smuggled past the strict parser.
        if !num.is_finite() {
            return Err(format!(
                "number {text:?} at byte {start} overflows to a non-finite value"
            ));
        }
        Ok(Json::Num(num))
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"s": "hi\n\"there\"", "t": true, "n": null}}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-300.0));
        let b = v.get("b").unwrap();
        assert_eq!(b.get("s").unwrap().as_str(), Some("hi\n\"there\""));
        assert_eq!(b.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(b.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{\"a\": 1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn rejects_nonfinite_number_literals() {
        // `f64::from_str` would happily return inf for these; the strict
        // parser must not let an overflowing literal round-trip as Inf.
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        assert!(Json::parse("[1, 1e999]").is_err());
        assert!(Json::parse("{\"v\": -1e400}").is_err());
        // The largest finite f64 still parses.
        let max = format!("{:e}", f64::MAX);
        assert_eq!(Json::parse(&max).unwrap().as_f64(), Some(f64::MAX));
    }

    #[test]
    fn unicode_escapes_round() {
        let v = Json::parse(r#""é中""#).unwrap();
        assert_eq!(v.as_str(), Some("é中"));
    }
}

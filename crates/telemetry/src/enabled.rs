//! The real recording implementation, compiled when the `enabled`
//! feature is on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Display;
use std::fmt::Write as _;
use std::io;
use std::marker::PhantomData;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::report::{CounterRow, GaugeRow, HistogramRow, JsonlSink, Sink, Snapshot, SpanRow};
use crate::value::{json_escape, Value};

const BUCKETS: usize = 65;

/// Lock-free log₂ histogram core: bucket `i` holds values whose bit
/// length is `i` (bucket 0 is exactly zero), alongside exact
/// count/sum/min/max.
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Upper bound of bucket `i`: the largest value with bit length `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Approximate quantile `q in [0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q * count)`-th smallest sample, clamped to the
    /// observed `[min, max]`. Monotone in `q` by construction.
    fn percentile(&self, q: f64) -> u64 {
        let count = self.count.load(Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.buckets[i].load(Relaxed);
            if cum >= target {
                return Self::bucket_upper(i).clamp(self.min.load(Relaxed), self.max.load(Relaxed));
            }
        }
        self.max.load(Relaxed)
    }
}

/// Inclusive-duration histogram plus accumulated exclusive ("self") time
/// for one span family.
struct SpanCore {
    durations: HistogramCore,
    self_ns: AtomicU64,
}

enum Entry {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
    Span(Arc<SpanCore>),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
            Entry::Span(_) => "span",
        }
    }
}

type Key = (&'static str, Option<String>);

/// The global metric registry: named (optionally labelled) metric
/// families plus the structured event log. Accessed through the
/// free functions ([`counter`], [`histogram`], [`span`], [`event`], ...);
/// the type itself is opaque.
pub struct Registry {
    metrics: Mutex<HashMap<Key, Entry>>,
    events: Mutex<Vec<String>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        metrics: Mutex::new(HashMap::new()),
        events: Mutex::new(Vec::new()),
    })
}

impl Registry {
    fn with_entry<T>(
        &self,
        name: &'static str,
        label: Option<String>,
        make: impl FnOnce() -> Entry,
        get: impl FnOnce(&Entry) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        let entry = metrics.entry((name, label)).or_insert_with(make);
        match get(entry) {
            Some(handle) => handle,
            None => panic!("metric {name:?} already registered as a {}", entry.kind()),
        }
    }
}

/// A monotonically increasing atomic counter handle. Cloning is cheap;
/// fetch once per kernel call and `add` accumulated totals.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// A last-value metric handle storing an `f64`.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

/// A log₂-bucketed histogram handle.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.core.record(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.core.count.load(Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Relaxed)
    }

    /// Approximate quantile `q in [0, 1]`; monotone in `q`.
    pub fn percentile(&self, q: f64) -> u64 {
        self.core.percentile(q)
    }
}

/// Returns the counter named `name` (no label), registering it on first
/// use.
pub fn counter(name: &'static str) -> Counter {
    counter_entry(name, None)
}

/// Returns the counter `name{label}` — e.g. per-expert token counts use
/// the expert index as the label.
pub fn counter_with(name: &'static str, label: impl Display) -> Counter {
    counter_entry(name, Some(label.to_string()))
}

fn counter_entry(name: &'static str, label: Option<String>) -> Counter {
    registry().with_entry(
        name,
        label,
        || Entry::Counter(Arc::new(AtomicU64::new(0))),
        |e| match e {
            Entry::Counter(c) => Some(Counter { cell: c.clone() }),
            _ => None,
        },
    )
}

/// Returns the gauge named `name`, registering it on first use.
pub fn gauge(name: &'static str) -> Gauge {
    registry().with_entry(
        name,
        None,
        || Entry::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        |e| match e {
            Entry::Gauge(g) => Some(Gauge { bits: g.clone() }),
            _ => None,
        },
    )
}

/// Returns the histogram named `name` (no label), registering it on
/// first use.
pub fn histogram(name: &'static str) -> Histogram {
    histogram_entry(name, None)
}

/// Returns the histogram `name{label}`.
pub fn histogram_with(name: &'static str, label: impl Display) -> Histogram {
    histogram_entry(name, Some(label.to_string()))
}

fn histogram_entry(name: &'static str, label: Option<String>) -> Histogram {
    registry().with_entry(
        name,
        label,
        || Entry::Histogram(Arc::new(HistogramCore::new())),
        |e| match e {
            Entry::Histogram(h) => Some(Histogram { core: h.clone() }),
            _ => None,
        },
    )
}

fn span_core(name: &'static str) -> Arc<SpanCore> {
    registry().with_entry(
        name,
        None,
        || {
            Entry::Span(Arc::new(SpanCore {
                durations: HistogramCore::new(),
                self_ns: AtomicU64::new(0),
            }))
        },
        |e| match e {
            Entry::Span(s) => Some(s.clone()),
            _ => None,
        },
    )
}

struct Frame {
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; records on drop. Guards must be dropped
/// in LIFO order on the thread that opened them (the natural result of
/// holding them in local scopes).
pub struct SpanGuard {
    name: &'static str,
    // Spans time a single thread's stack; keep the guard on it.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name`, timed until the returned guard drops.
/// While open, any spans opened on the same thread are its children:
/// their time counts toward this span's inclusive time but not its
/// exclusive ("self") time.
#[must_use = "a span records when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    SPAN_STACK.with(|s| {
        s.borrow_mut().push(Frame {
            start: Instant::now(),
            child_ns: 0,
        })
    });
    SpanGuard {
        name,
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (total_ns, child_ns) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop().expect("span guard dropped out of order");
            let total = frame.start.elapsed().as_nanos() as u64;
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += total;
            }
            (total, frame.child_ns)
        });
        let core = span_core(self.name);
        core.durations.record(total_ns);
        core.self_ns
            .fetch_add(total_ns.saturating_sub(child_ns), Relaxed);
        // Mirror the span onto the timeline so every instrumented stage
        // shows up as an interval in the exported Chrome trace.
        crate::record_span_complete(self.name, total_ns);
    }
}

/// Appends a structured event (e.g. one per trainer step) to the event
/// log; exported as its own JSONL line.
pub fn event(name: &str, fields: &[(&str, Value)]) {
    let mut line = format!("{{\"type\":\"event\",\"name\":{}", json_escape(name));
    for (key, value) in fields {
        let _ = write!(line, ",{}:{}", json_escape(key), value.to_json());
    }
    line.push('}');
    registry()
        .events
        .lock()
        .expect("event log poisoned")
        .push(line);
}

/// Clears every metric and event. Handles fetched before the reset keep
/// recording into detached metrics that no longer export; fetch fresh
/// handles afterwards.
pub fn reset() {
    let reg = registry();
    reg.metrics.lock().expect("registry poisoned").clear();
    reg.events.lock().expect("event log poisoned").clear();
}

/// Captures the current state of the global registry.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    let mut snap = Snapshot::default();
    {
        let metrics = reg.metrics.lock().expect("registry poisoned");
        for ((name, label), entry) in metrics.iter() {
            match entry {
                Entry::Counter(c) => snap.counters.push(CounterRow {
                    name: name.to_string(),
                    label: label.clone(),
                    value: c.load(Relaxed),
                }),
                Entry::Gauge(g) => snap.gauges.push(GaugeRow {
                    name: name.to_string(),
                    value: f64::from_bits(g.load(Relaxed)),
                }),
                Entry::Histogram(h) => {
                    snap.histograms.push(histogram_row(name, label.clone(), h));
                }
                Entry::Span(s) => {
                    let h = &s.durations;
                    snap.spans.push(SpanRow {
                        name: name.to_string(),
                        calls: h.count.load(Relaxed),
                        total_ns: h.sum.load(Relaxed),
                        self_ns: s.self_ns.load(Relaxed),
                        p50_ns: h.percentile(0.5),
                        p99_ns: h.percentile(0.99),
                        max_ns: h.max.load(Relaxed),
                    });
                }
            }
        }
    }
    snap.events = reg.events.lock().expect("event log poisoned").clone();
    snap.counters
        .sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms
        .sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
    snap.spans
        .sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    snap
}

fn histogram_row(name: &str, label: Option<String>, h: &HistogramCore) -> HistogramRow {
    let count = h.count.load(Relaxed);
    let min = h.min.load(Relaxed);
    HistogramRow {
        name: name.to_string(),
        label,
        count,
        sum: h.sum.load(Relaxed),
        min: if count == 0 { 0 } else { min },
        max: h.max.load(Relaxed),
        p50: h.percentile(0.5),
        p90: h.percentile(0.9),
        p99: h.percentile(0.99),
    }
}

/// Exports the current registry state as JSONL to `path`.
pub fn export_jsonl(path: impl AsRef<Path>) -> io::Result<()> {
    JsonlSink::new(path).export(&snapshot())
}

/// Returns the current summary table as a string.
pub fn summary_string() -> String {
    crate::report::render_summary(&snapshot())
}

/// Prints the current summary table to stdout.
pub fn print_summary() {
    print!("{}", summary_string());
}

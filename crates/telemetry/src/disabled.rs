//! The no-op implementation, compiled when the `enabled` feature is
//! off. Every type is zero-sized and every function inlines to nothing,
//! so instrumented call sites vanish from release builds — benchmark
//! numbers measure the kernels, not the bookkeeping.

use std::fmt::Display;
use std::io;
use std::path::Path;

use crate::report::Snapshot;
use crate::value::Value;

// The whole point of this module: instrumentation carries no state when
// disabled. Checked at compile time.
const _: () = {
    assert!(std::mem::size_of::<Counter>() == 0);
    assert!(std::mem::size_of::<Gauge>() == 0);
    assert!(std::mem::size_of::<Histogram>() == 0);
    assert!(std::mem::size_of::<SpanGuard>() == 0);
    assert!(std::mem::size_of::<Registry>() == 0);
};

/// No-op stand-in for the global metric registry.
pub struct Registry;

/// No-op counter handle.
#[derive(Clone)]
pub struct Counter;

impl Counter {
    /// Does nothing (recording disabled).
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Does nothing (recording disabled).
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero (recording disabled).
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge handle.
#[derive(Clone)]
pub struct Gauge;

impl Gauge {
    /// Does nothing (recording disabled).
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always zero (recording disabled).
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram handle.
#[derive(Clone)]
pub struct Histogram;

impl Histogram {
    /// Does nothing (recording disabled).
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Always zero (recording disabled).
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }

    /// Always zero (recording disabled).
    #[inline(always)]
    pub fn sum(&self) -> u64 {
        0
    }

    /// Always zero (recording disabled).
    #[inline(always)]
    pub fn percentile(&self, _q: f64) -> u64 {
        0
    }
}

/// Returns a no-op counter handle.
#[inline(always)]
pub fn counter(_name: &'static str) -> Counter {
    Counter
}

/// Returns a no-op counter handle.
#[inline(always)]
pub fn counter_with(_name: &'static str, _label: impl Display) -> Counter {
    Counter
}

/// Returns a no-op gauge handle.
#[inline(always)]
pub fn gauge(_name: &'static str) -> Gauge {
    Gauge
}

/// Returns a no-op histogram handle.
#[inline(always)]
pub fn histogram(_name: &'static str) -> Histogram {
    Histogram
}

/// Returns a no-op histogram handle.
#[inline(always)]
pub fn histogram_with(_name: &'static str, _label: impl Display) -> Histogram {
    Histogram
}

/// Zero-sized span guard; opening and dropping it does nothing.
pub struct SpanGuard;

/// Returns a zero-sized guard; no time is recorded.
#[inline(always)]
#[must_use = "a span records when the guard drops"]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn event(_name: &str, _fields: &[(&str, Value)]) {}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn reset() {}

/// Returns an empty snapshot (recording disabled).
#[inline(always)]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Does nothing; reports success (recording disabled, no file written).
#[inline(always)]
pub fn export_jsonl(_path: impl AsRef<Path>) -> io::Result<()> {
    Ok(())
}

/// Returns a fixed note that recording is disabled.
pub fn summary_string() -> String {
    "telemetry disabled (build with the `telemetry` feature)\n".to_string()
}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn print_summary() {}

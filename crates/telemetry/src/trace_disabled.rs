//! The no-op timeline recorder, compiled when the `enabled` feature is
//! off. Mirrors the public API of `trace_enabled` exactly (checked by
//! audit lint rule 4) so call sites compile identically; every function
//! inlines to nothing and no file is ever written.

use std::io;
use std::path::Path;

use crate::trace::{render_chrome_trace, TraceSnapshot};

/// Default per-lane ring capacity (events retained per thread).
pub const TRACE_DEFAULT_CAPACITY: usize = 1 << 16;

/// Does nothing (recording disabled).
#[inline(always)]
pub fn trace_set_enabled(_on: bool) {}

/// Always false (recording disabled).
#[inline(always)]
pub fn trace_is_on() -> bool {
    false
}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn trace_set_capacity(_capacity: usize) {}

/// Always zero (recording disabled — no clock is read).
#[inline(always)]
pub fn trace_now_us() -> u64 {
    0
}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn trace_complete(_name: &'static str, _ts_us: u64, _dur_us: u64) {}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn trace_instant(_name: &'static str) {}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn trace_counter_event(_name: &'static str, _value: f64) {}

/// Returns an empty snapshot (recording disabled).
#[inline(always)]
pub fn trace_snapshot() -> TraceSnapshot {
    TraceSnapshot::default()
}

/// Does nothing (recording disabled).
#[inline(always)]
pub fn trace_reset() {}

/// Renders an empty-but-valid Chrome trace (recording disabled).
pub fn trace_json_string() -> String {
    render_chrome_trace(&TraceSnapshot::default())
}

/// Does nothing; reports success (recording disabled, no file written).
#[inline(always)]
pub fn export_trace(_path: impl AsRef<Path>) -> io::Result<()> {
    Ok(())
}

//! Trace data model and Chrome `trace_event` rendering — plain data,
//! compiled in both feature modes, so code that consumes
//! [`TraceSnapshot`]s type-checks identically whether recording is on
//! or not.
//!
//! The exported file is the Chrome JSON-object trace format understood
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of `"X"` (complete), `"i"` (instant), `"C"`
//! (counter) and `"M"` (metadata) events with microsecond timestamps.
//! Each recording thread gets its own `tid` lane named via a
//! `thread_name` metadata event, so exec-pool workers show up as
//! parallel swimlanes.

use crate::json::Json;
use crate::value::json_escape;
use std::fmt::Write as _;

/// One recording thread's identity: its lane id and human name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLane {
    /// Lane id, used as the Chrome `tid`.
    pub tid: u32,
    /// Thread name shown on the lane (e.g. `megablocks-exec-3`).
    pub name: String,
}

/// What kind of timeline mark a [`TraceEventRow`] is.
#[derive(Debug, Clone, PartialEq)]
pub enum TracePhase {
    /// A closed interval (`ph:"X"`), `dur_us` long.
    Complete {
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time mark (`ph:"i"`, thread scope).
    Instant,
    /// A sampled counter track value (`ph:"C"`).
    Counter {
        /// Counter value at `ts_us`.
        value: f64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEventRow {
    /// Event name (span/op name, instant label, or counter track).
    pub name: String,
    /// Start timestamp in microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Lane (thread) the event was recorded on.
    pub tid: u32,
    /// Event kind plus kind-specific payload.
    pub phase: TracePhase,
}

/// A point-in-time copy of the trace recorder: every lane and every
/// retained event. Empty when recording is disabled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// All lanes, sorted by `tid`.
    pub lanes: Vec<TraceLane>,
    /// All events, sorted by (`ts_us`, `tid`).
    pub events: Vec<TraceEventRow>,
    /// Events discarded because a lane's ring buffer wrapped.
    pub dropped_events: u64,
}

impl TraceSnapshot {
    /// Normalizes ordering: lanes by tid, events by (ts, tid, name).
    /// Rendering and parsing both preserve this order, which is what
    /// makes the JSON round-trip exact.
    pub fn normalize(&mut self) {
        self.lanes.sort_by_key(|l| l.tid);
        self.events.sort_by(|a, b| {
            (a.ts_us, a.tid, &a.name)
                .cmp(&(b.ts_us, b.tid, &b.name))
                .then_with(|| phase_rank(&a.phase).cmp(&phase_rank(&b.phase)))
        });
    }
}

fn phase_rank(p: &TracePhase) -> u8 {
    match p {
        TracePhase::Complete { .. } => 0,
        TracePhase::Instant => 1,
        TracePhase::Counter { .. } => 2,
    }
}

/// The `pid` stamped on every event; the recorder is single-process.
pub const TRACE_PID: u32 = 1;

/// Renders a snapshot as Chrome `trace_event` JSON (object format with
/// a `traceEvents` array), loadable in `chrome://tracing` and Perfetto.
pub fn render_chrome_trace(snapshot: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(64 + snapshot.events.len() * 96);
    out.push_str("{\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{");
    let _ = write!(
        out,
        "\"recorder\":\"megablocks-trace\",\"dropped_events\":{}",
        snapshot.dropped_events
    );
    out.push_str("},\n\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for lane in &snapshot.lanes {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                lane.tid,
                json_escape(&lane.name)
            ),
            &mut first,
        );
    }
    for ev in &snapshot.events {
        let line = match &ev.phase {
            TracePhase::Complete { dur_us } => format!(
                "{{\"ph\":\"X\",\"pid\":{TRACE_PID},\"tid\":{},\"ts\":{},\"dur\":{},\
                 \"cat\":\"span\",\"name\":{}}}",
                ev.tid,
                ev.ts_us,
                dur_us,
                json_escape(&ev.name)
            ),
            TracePhase::Instant => format!(
                "{{\"ph\":\"i\",\"pid\":{TRACE_PID},\"tid\":{},\"ts\":{},\"s\":\"t\",\
                 \"cat\":\"instant\",\"name\":{}}}",
                ev.tid,
                ev.ts_us,
                json_escape(&ev.name)
            ),
            TracePhase::Counter { value } => {
                // JSON has no NaN/Inf: a non-finite counter sample is
                // exported as `null` so the document stays parseable,
                // and the strict round-trip rejects it rather than
                // resurrecting a fabricated number.
                let v = if value.is_finite() {
                    value.to_string()
                } else {
                    "null".to_string()
                };
                format!(
                    "{{\"ph\":\"C\",\"pid\":{TRACE_PID},\"tid\":{},\"ts\":{},\
                     \"cat\":\"counter\",\"name\":{},\"args\":{{\"value\":{v}}}}}",
                    ev.tid,
                    ev.ts_us,
                    json_escape(&ev.name)
                )
            }
        };
        emit(line, &mut first);
    }
    out.push_str("\n]}\n");
    out
}

/// Parses Chrome `trace_event` JSON produced by [`render_chrome_trace`]
/// back into a [`TraceSnapshot`] (the round-trip half the tests and the
/// trace CLI use). Unknown phases are rejected so format drift fails
/// loudly instead of silently dropping events.
pub fn parse_chrome_trace(src: &str) -> Result<TraceSnapshot, String> {
    let doc = Json::parse(src)?;
    let mut snap = TraceSnapshot {
        dropped_events: doc
            .get("otherData")
            .and_then(|o| o.get("dropped_events"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        ..TraceSnapshot::default()
    };
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| format!("event {i}: missing {key:?}"))
        };
        let ph = field("ph")?.as_str().ok_or(format!("event {i}: bad ph"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or(format!("event {i}: bad tid"))? as u32;
        if ph == "M" {
            let name = ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .ok_or(format!("event {i}: metadata without args.name"))?;
            snap.lanes.push(TraceLane {
                tid,
                name: name.to_string(),
            });
            continue;
        }
        let name = field("name")?
            .as_str()
            .ok_or(format!("event {i}: bad name"))?
            .to_string();
        let ts_us = field("ts")?.as_u64().ok_or(format!("event {i}: bad ts"))?;
        let phase = match ph {
            "X" => TracePhase::Complete {
                dur_us: field("dur")?
                    .as_u64()
                    .ok_or(format!("event {i}: bad dur"))?,
            },
            "i" => TracePhase::Instant,
            "C" => TracePhase::Counter {
                // A `null` value is how the renderer exports a
                // non-finite sample; the round-trip rejects it loudly
                // instead of inventing a finite stand-in. (Overflowing
                // literals like `1e999` are already rejected by the
                // number parser itself.)
                value: ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .ok_or(format!(
                        "event {i}: counter without a finite args.value \
                         (non-finite samples export as null and do not round-trip)"
                    ))?,
            },
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        };
        snap.events.push(TraceEventRow {
            name,
            ts_us,
            tid,
            phase,
        });
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSnapshot {
        let mut snap = TraceSnapshot {
            lanes: vec![
                TraceLane {
                    tid: 2,
                    name: "megablocks-exec-1".to_string(),
                },
                TraceLane {
                    tid: 1,
                    name: "main".to_string(),
                },
            ],
            events: vec![
                TraceEventRow {
                    name: "sparse.sdd".to_string(),
                    ts_us: 10,
                    tid: 2,
                    phase: TracePhase::Complete { dur_us: 42 },
                },
                TraceEventRow {
                    name: "exec.workspace.miss".to_string(),
                    ts_us: 5,
                    tid: 1,
                    phase: TracePhase::Instant,
                },
                TraceEventRow {
                    name: "exec.pool.busy".to_string(),
                    ts_us: 5,
                    tid: 1,
                    phase: TracePhase::Counter { value: 3.0 },
                },
            ],
            dropped_events: 7,
        };
        snap.normalize();
        snap
    }

    #[test]
    fn chrome_trace_round_trips() {
        let snap = sample();
        let json = render_chrome_trace(&snap);
        let back = parse_chrome_trace(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rendered_trace_is_valid_json_with_expected_shape() {
        let json = render_chrome_trace(&sample());
        let doc = Json::parse(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 thread_name metadata events + 3 payload events.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("M"));
        assert!(events
            .iter()
            .all(|e| e.get("pid").unwrap().as_u64() == Some(TRACE_PID as u64)));
    }

    #[test]
    fn parse_rejects_unknown_phase() {
        let bad = r#"{"traceEvents":[{"ph":"Q","pid":1,"tid":1,"ts":0,"name":"x"}]}"#;
        assert!(parse_chrome_trace(bad).is_err());
    }

    #[test]
    fn nonfinite_counter_values_export_as_null_and_do_not_round_trip() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let snap = TraceSnapshot {
                lanes: vec![TraceLane {
                    tid: 1,
                    name: "main".to_string(),
                }],
                events: vec![TraceEventRow {
                    name: "exec.pool.busy".to_string(),
                    ts_us: 1,
                    tid: 1,
                    phase: TracePhase::Counter { value: bad },
                }],
                dropped_events: 0,
            };
            let json = render_chrome_trace(&snap);
            // The export must stay valid JSON (no bare NaN/inf tokens)...
            let doc = Json::parse(&json).unwrap_or_else(|e| panic!("invalid JSON for {bad}: {e}"));
            let value = doc.get("traceEvents").unwrap().as_arr().unwrap()[1]
                .get("args")
                .unwrap()
                .get("value")
                .unwrap();
            assert_eq!(value, &Json::Null, "non-finite {bad} must export as null");
            // ...and the strict round-trip must reject the snapshot
            // instead of silently substituting a finite value.
            let err = parse_chrome_trace(&json).unwrap_err();
            assert!(err.contains("finite"), "unexpected error: {err}");
        }
    }

    #[test]
    fn parse_rejects_overflowing_counter_literal() {
        // Hand-written trace with a literal that overflows f64: the
        // number parser refuses it before phase decoding even runs.
        let bad = r#"{"traceEvents":[
            {"ph":"C","pid":1,"tid":1,"ts":0,"name":"x","args":{"value":1e999}}
        ]}"#;
        let err = parse_chrome_trace(bad).unwrap_err();
        assert!(err.contains("non-finite"), "unexpected error: {err}");
    }
}

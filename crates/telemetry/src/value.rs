//! Field values for structured events, shared by the enabled and
//! disabled builds so call sites are identical in both.

/// A field value in a structured [`event`](crate::event).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer field.
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field (non-finite values export as `null`).
    F64(f64),
    /// Text field.
    Text(String),
}

impl Value {
    /// Renders the value as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "null".to_string(),
            Value::Text(s) => json_escape(s),
        }
    }
}

/// Escapes a string into a quoted JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

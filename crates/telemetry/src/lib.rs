//! Observability substrate for MegaBlocks-RS.
//!
//! The paper's claims are all *measured* claims — kernel times, padding
//! overhead, expert load, throughput — so every crate in the workspace
//! records into this one through four primitives:
//!
//! * **Spans** ([`span`]): hierarchical RAII wall-clock timers. Nesting is
//!   tracked per thread, so each span family reports both *inclusive*
//!   time (span plus children) and *exclusive* ("self") time.
//! * **Counters** ([`counter`], [`counter_with`]): monotonically
//!   increasing atomic `u64`s, cheap enough for per-kernel-call totals.
//! * **Histograms** ([`histogram`], [`histogram_with`]): lock-free
//!   log₂-bucketed distributions with exact `count`/`sum`/`min`/`max` and
//!   monotone percentile queries.
//! * **Gauges** ([`gauge`]) and **events** ([`event`]): last-value
//!   metrics and structured per-step records (loss, lr, throughput).
//!
//! Handles are fetched from the global [`Registry`] by name (plus an
//! optional label for families such as per-expert counts); hot loops
//! fetch a handle once per kernel invocation, accumulate locally, and
//! record once, so nothing in a worker loop takes a lock.
//!
//! Snapshots feed pluggable [`Sink`]s: [`JsonlSink`] writes one JSON
//! object per metric (for `results/`), and [`SummarySink`] renders a
//! human-readable table. [`SummaryOnDrop`] prints that table when it goes
//! out of scope.
//!
//! Everything is gated behind the `enabled` cargo feature. When the
//! feature is off, every type is zero-sized and every call inlines to
//! nothing — verified by a compile-time assertion — so instrumented hot
//! loops cost nothing in benchmark builds.

#![deny(missing_docs)]

pub mod json;
mod report;
pub mod trace;
mod value;
pub use report::{
    render_jsonl, render_summary, CounterRow, GaugeRow, HistogramRow, JsonlSink, Sink, Snapshot,
    SpanRow, SummarySink,
};
pub use trace::{
    parse_chrome_trace, render_chrome_trace, TraceEventRow, TraceLane, TracePhase, TraceSnapshot,
};
pub use value::Value;

#[cfg(feature = "enabled")]
mod enabled;
#[cfg(feature = "enabled")]
pub use enabled::*;

#[cfg(not(feature = "enabled"))]
mod disabled;
#[cfg(not(feature = "enabled"))]
pub use disabled::*;

#[cfg(feature = "enabled")]
mod trace_enabled;
#[cfg(feature = "enabled")]
pub use trace_enabled::*;

#[cfg(not(feature = "enabled"))]
mod trace_disabled;
#[cfg(not(feature = "enabled"))]
pub use trace_disabled::*;

/// Whether metric recording is compiled in (`enabled` cargo feature).
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Prints the summary table for the current process when dropped —
/// the "summary on drop" sink. Create one at the top of `main`.
#[derive(Debug, Default)]
pub struct SummaryOnDrop;

impl SummaryOnDrop {
    /// Creates the guard.
    pub fn new() -> Self {
        SummaryOnDrop
    }
}

impl Drop for SummaryOnDrop {
    fn drop(&mut self) {
        print_summary();
    }
}

/// Flushes telemetry sinks when dropped — including during a panic
/// unwind, so chaos-run traces and metrics aren't silently truncated
/// when a step aborts. Create one near the top of `main` (or hold one
/// in a long-lived runner such as `ResilientTrainer`); configure which
/// sinks to flush with the builder methods. Flushing is best-effort:
/// I/O errors are reported on stderr, never panicked, because this
/// runs inside `Drop`.
#[derive(Debug, Default)]
pub struct FlushOnDrop {
    jsonl: Option<std::path::PathBuf>,
    trace: Option<std::path::PathBuf>,
    summary: bool,
}

impl FlushOnDrop {
    /// Creates a guard that flushes nothing until configured.
    pub fn new() -> Self {
        FlushOnDrop::default()
    }

    /// Also export the metric registry as JSONL to `path` on drop.
    pub fn jsonl(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.jsonl = Some(path.into());
        self
    }

    /// Also export the timeline as Chrome-trace JSON to `path` on drop.
    pub fn trace(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace = Some(path.into());
        self
    }

    /// Also print the human-readable summary table on drop.
    pub fn with_summary(mut self, on: bool) -> Self {
        self.summary = on;
        self
    }

    /// Flushes the configured sinks now (also called from `drop`).
    /// No-ops when recording is compiled out.
    pub fn flush(&self) {
        if !is_enabled() {
            return;
        }
        if let Some(path) = &self.jsonl {
            match export_jsonl(path) {
                Ok(()) => eprintln!("telemetry: wrote {}", path.display()),
                Err(e) => eprintln!("telemetry: failed to write {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.trace {
            match export_trace(path) {
                Ok(()) => eprintln!("telemetry: wrote {}", path.display()),
                Err(e) => eprintln!("telemetry: failed to write {}: {e}", path.display()),
            }
        }
        if self.summary {
            print_summary();
        }
    }
}

impl Drop for FlushOnDrop {
    fn drop(&mut self) {
        self.flush();
    }
}

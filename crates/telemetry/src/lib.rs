//! Observability substrate for MegaBlocks-RS.
//!
//! The paper's claims are all *measured* claims — kernel times, padding
//! overhead, expert load, throughput — so every crate in the workspace
//! records into this one through four primitives:
//!
//! * **Spans** ([`span`]): hierarchical RAII wall-clock timers. Nesting is
//!   tracked per thread, so each span family reports both *inclusive*
//!   time (span plus children) and *exclusive* ("self") time.
//! * **Counters** ([`counter`], [`counter_with`]): monotonically
//!   increasing atomic `u64`s, cheap enough for per-kernel-call totals.
//! * **Histograms** ([`histogram`], [`histogram_with`]): lock-free
//!   log₂-bucketed distributions with exact `count`/`sum`/`min`/`max` and
//!   monotone percentile queries.
//! * **Gauges** ([`gauge`]) and **events** ([`event`]): last-value
//!   metrics and structured per-step records (loss, lr, throughput).
//!
//! Handles are fetched from the global [`Registry`] by name (plus an
//! optional label for families such as per-expert counts); hot loops
//! fetch a handle once per kernel invocation, accumulate locally, and
//! record once, so nothing in a worker loop takes a lock.
//!
//! Snapshots feed pluggable [`Sink`]s: [`JsonlSink`] writes one JSON
//! object per metric (for `results/`), and [`SummarySink`] renders a
//! human-readable table. [`SummaryOnDrop`] prints that table when it goes
//! out of scope.
//!
//! Everything is gated behind the `enabled` cargo feature. When the
//! feature is off, every type is zero-sized and every call inlines to
//! nothing — verified by a compile-time assertion — so instrumented hot
//! loops cost nothing in benchmark builds.

#![deny(missing_docs)]

mod report;
mod value;
pub use report::{
    render_jsonl, render_summary, CounterRow, GaugeRow, HistogramRow, JsonlSink, Sink, Snapshot,
    SpanRow, SummarySink,
};
pub use value::Value;

#[cfg(feature = "enabled")]
mod enabled;
#[cfg(feature = "enabled")]
pub use enabled::*;

#[cfg(not(feature = "enabled"))]
mod disabled;
#[cfg(not(feature = "enabled"))]
pub use disabled::*;

/// Whether metric recording is compiled in (`enabled` cargo feature).
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Prints the summary table for the current process when dropped —
/// the "summary on drop" sink. Create one at the top of `main`.
#[derive(Debug, Default)]
pub struct SummaryOnDrop;

impl SummaryOnDrop {
    /// Creates the guard.
    pub fn new() -> Self {
        SummaryOnDrop
    }
}

impl Drop for SummaryOnDrop {
    fn drop(&mut self) {
        print_summary();
    }
}

//! The real timeline recorder, compiled when the `enabled` feature is
//! on.
//!
//! Design: recording must be cheap enough to sit inside the exec pool's
//! per-band path, so there is no global event lock. Each thread owns a
//! ring buffer ([`Lane`]) registered once in a global list; recording
//! locks only the recorder's *own* ring (uncontended except while a
//! snapshot is being taken), timestamps come from one shared monotonic
//! epoch, and the on/off switch is a relaxed atomic load. When a ring
//! wraps, the oldest event is dropped and counted — a trace is a
//! window, not an archive.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::trace::{TraceEventRow, TraceLane, TracePhase, TraceSnapshot};

/// Default per-lane ring capacity (events retained per thread).
pub const TRACE_DEFAULT_CAPACITY: usize = 1 << 16;

struct Lane {
    tid: u32,
    name: String,
    ring: Mutex<VecDeque<TraceEventRow>>,
}

struct Recorder {
    lanes: Mutex<Vec<Arc<Lane>>>,
    next_tid: AtomicU32,
    on: AtomicBool,
    capacity: AtomicUsize,
    dropped: AtomicU64,
    epoch: Instant,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        lanes: Mutex::new(Vec::new()),
        next_tid: AtomicU32::new(1),
        on: AtomicBool::new(true),
        capacity: AtomicUsize::new(TRACE_DEFAULT_CAPACITY),
        dropped: AtomicU64::new(0),
        epoch: Instant::now(),
    })
}

thread_local! {
    static LANE: RefCell<Option<Arc<Lane>>> = const { RefCell::new(None) };
}

fn with_lane(f: impl FnOnce(&Lane)) {
    LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let lane = slot.get_or_insert_with(|| {
            let rec = recorder();
            let tid = rec.next_tid.fetch_add(1, Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let lane = Arc::new(Lane {
                tid,
                name,
                ring: Mutex::new(VecDeque::new()),
            });
            rec.lanes
                .lock()
                .expect("trace lanes poisoned")
                .push(lane.clone());
            lane
        });
        f(lane);
    });
}

fn push(name: &'static str, ts_us: u64, phase: TracePhase) {
    with_lane(|lane| {
        let rec = recorder();
        let cap = rec.capacity.load(Relaxed).max(1);
        let mut ring = lane.ring.lock().expect("trace ring poisoned");
        if ring.len() >= cap {
            ring.pop_front();
            rec.dropped.fetch_add(1, Relaxed);
        }
        ring.push_back(TraceEventRow {
            name: name.to_string(),
            ts_us,
            tid: lane.tid,
            phase,
        });
    });
}

/// Turns timeline recording on or off at runtime. Recording starts on;
/// benchmarks toggle this to measure tracing overhead in one binary.
pub fn trace_set_enabled(on: bool) {
    recorder().on.store(on, Relaxed);
}

/// Whether the runtime switch is currently on (the compile-time gate is
/// [`crate::is_enabled`]).
pub fn trace_is_on() -> bool {
    recorder().on.load(Relaxed)
}

/// Sets the per-lane ring capacity for events recorded from now on.
pub fn trace_set_capacity(capacity: usize) {
    recorder().capacity.store(capacity.max(1), Relaxed);
}

/// Microseconds since the recorder epoch (first telemetry touch in this
/// process). Pair with [`trace_complete`] to time an interval.
pub fn trace_now_us() -> u64 {
    recorder().epoch.elapsed().as_micros() as u64
}

/// Records a closed interval `[ts_us, ts_us + dur_us]` on the calling
/// thread's lane.
#[inline]
pub fn trace_complete(name: &'static str, ts_us: u64, dur_us: u64) {
    if !trace_is_on() {
        return;
    }
    push(name, ts_us, TracePhase::Complete { dur_us });
}

/// Records a point-in-time mark on the calling thread's lane.
#[inline]
pub fn trace_instant(name: &'static str) {
    if !trace_is_on() {
        return;
    }
    push(name, trace_now_us(), TracePhase::Instant);
}

/// Records a counter-track sample (rendered as a value graph in
/// Perfetto) on the calling thread's lane.
#[inline]
pub fn trace_counter_event(name: &'static str, value: f64) {
    if !trace_is_on() {
        return;
    }
    push(name, trace_now_us(), TracePhase::Counter { value });
}

/// Called from `SpanGuard::drop`: mirrors every scalar-telemetry span
/// onto the timeline as a complete event ending now.
pub(crate) fn record_span_complete(name: &'static str, dur_ns: u64) {
    if !trace_is_on() {
        return;
    }
    let dur_us = dur_ns / 1_000;
    let end = trace_now_us();
    push(
        name,
        end.saturating_sub(dur_us),
        TracePhase::Complete { dur_us },
    );
}

/// Copies out every lane and retained event, normalized (lanes by tid,
/// events by timestamp).
pub fn trace_snapshot() -> TraceSnapshot {
    let rec = recorder();
    let lanes: Vec<Arc<Lane>> = rec.lanes.lock().expect("trace lanes poisoned").clone();
    let mut snap = TraceSnapshot {
        dropped_events: rec.dropped.load(Relaxed),
        ..TraceSnapshot::default()
    };
    for lane in lanes {
        snap.lanes.push(TraceLane {
            tid: lane.tid,
            name: lane.name.clone(),
        });
        let ring = lane.ring.lock().expect("trace ring poisoned");
        snap.events.extend(ring.iter().cloned());
    }
    snap.normalize();
    snap
}

/// Clears every retained event and the dropped-event count. Lanes stay
/// registered (threads keep their tids); the epoch is unchanged.
pub fn trace_reset() {
    let rec = recorder();
    let lanes: Vec<Arc<Lane>> = rec.lanes.lock().expect("trace lanes poisoned").clone();
    for lane in lanes {
        lane.ring.lock().expect("trace ring poisoned").clear();
    }
    rec.dropped.store(0, Relaxed);
}

/// Renders the current timeline as Chrome `trace_event` JSON.
pub fn trace_json_string() -> String {
    crate::trace::render_chrome_trace(&trace_snapshot())
}

/// Exports the current timeline as Chrome `trace_event` JSON to `path`
/// (parent directories are created). Open it in `chrome://tracing` or
/// <https://ui.perfetto.dev>.
pub fn export_trace(path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, trace_json_string())
}

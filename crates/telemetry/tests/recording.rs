//! Behavioural tests for the enabled telemetry path: exact concurrent
//! counting, monotone percentiles, nested span accounting, and the JSONL
//! sink format.

#![cfg(feature = "enabled")]

use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use megablocks_telemetry as telemetry;

/// Tests that read whole-registry snapshots (or reset the registry)
/// serialize on this lock so parallel test threads don't interleave.
static SNAPSHOT_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_counter_increments_land_exactly() {
    let threads = 8;
    let per_thread = 10_000u64;
    thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // One handle fetch per "kernel call", then hot increments.
                let c = telemetry::counter("test.concurrent_adds");
                for _ in 0..per_thread {
                    c.inc();
                }
                let h = telemetry::histogram("test.concurrent_hist");
                for v in 0..per_thread {
                    h.record(v % 97);
                }
            });
        }
    });
    assert_eq!(
        telemetry::counter("test.concurrent_adds").get(),
        threads * per_thread
    );
    assert_eq!(
        telemetry::histogram("test.concurrent_hist").count(),
        threads * per_thread
    );
    let expected_sum: u64 = (0..per_thread).map(|v| v % 97).sum::<u64>() * threads;
    assert_eq!(
        telemetry::histogram("test.concurrent_hist").sum(),
        expected_sum
    );
}

#[test]
fn histogram_percentiles_are_monotone_and_bounded() {
    let h = telemetry::histogram("test.percentiles");
    // A deliberately skewed distribution across many buckets.
    for i in 0..1000u64 {
        h.record(i * i % 50_000);
    }
    let max = (0..1000u64).map(|i| i * i % 50_000).max().unwrap();
    let qs = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
    let mut prev = 0;
    for q in qs {
        let p = h.percentile(q);
        assert!(p >= prev, "percentile({q}) = {p} < previous {prev}");
        prev = p;
    }
    // Tails are exact: p0 is the min, p100 the max.
    assert_eq!(h.percentile(0.0), 0);
    assert_eq!(h.percentile(1.0), max);
    // Every quantile lies within the observed range.
    for q in qs {
        assert!(h.percentile(q) <= max);
    }
}

#[test]
fn percentile_of_constant_distribution_is_that_constant() {
    let h = telemetry::histogram("test.constant");
    for _ in 0..100 {
        h.record(42);
    }
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.percentile(q), 42);
    }
}

#[test]
fn labelled_families_are_distinct() {
    for e in 0..4u64 {
        telemetry::counter_with("test.expert_tokens", e).add(10 * (e + 1));
    }
    for e in 0..4u64 {
        assert_eq!(
            telemetry::counter_with("test.expert_tokens", e).get(),
            10 * (e + 1)
        );
    }
}

#[test]
fn nested_spans_report_inclusive_vs_exclusive_time() {
    let _guard = SNAPSHOT_LOCK.lock().unwrap();
    {
        let _outer = telemetry::span("test.outer");
        thread::sleep(Duration::from_millis(15));
        {
            let _inner = telemetry::span("test.inner");
            thread::sleep(Duration::from_millis(15));
        }
        thread::sleep(Duration::from_millis(5));
    }
    let snap = telemetry::snapshot();
    let row = |name: &str| {
        snap.spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} not recorded"))
            .clone()
    };
    let outer = row("test.outer");
    let inner = row("test.inner");
    assert_eq!(outer.calls, 1);
    assert_eq!(inner.calls, 1);
    // Inclusive: the outer span covers the inner span plus its own work.
    assert!(outer.total_ns >= inner.total_ns + 15_000_000);
    // Leaf spans: exclusive == inclusive.
    assert_eq!(inner.self_ns, inner.total_ns);
    // The parent's exclusive time excludes the child entirely.
    assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    // And it still accounts for the parent's own sleeps (~20ms).
    assert!(outer.self_ns >= 15_000_000);
}

#[test]
fn sibling_spans_both_count_toward_parent() {
    let _guard = SNAPSHOT_LOCK.lock().unwrap();
    {
        let _p = telemetry::span("test.parent2");
        for _ in 0..2 {
            let _c = telemetry::span("test.child2");
            thread::sleep(Duration::from_millis(4));
        }
    }
    let snap = telemetry::snapshot();
    let parent = snap
        .spans
        .iter()
        .find(|s| s.name == "test.parent2")
        .unwrap();
    let child = snap.spans.iter().find(|s| s.name == "test.child2").unwrap();
    assert_eq!(child.calls, 2);
    assert!(parent.total_ns >= child.total_ns);
    assert_eq!(parent.self_ns, parent.total_ns - child.total_ns);
}

#[test]
fn jsonl_export_contains_every_metric_kind() {
    let _guard = SNAPSHOT_LOCK.lock().unwrap();
    telemetry::counter("test.export_counter").add(3);
    telemetry::gauge("test.export_gauge").set(1.5);
    telemetry::histogram_with("test.export_hist", "e0").record(7);
    {
        let _s = telemetry::span("test.export_span");
    }
    telemetry::event(
        "test.export_event",
        &[("step", 1u64.into()), ("loss", 0.25f32.into())],
    );

    let path = std::env::temp_dir().join(format!(
        "megablocks_telemetry_test_{}.jsonl",
        std::process::id()
    ));
    telemetry::export_jsonl(&path).expect("export");
    let contents = std::fs::read_to_string(&path).expect("read back");
    std::fs::remove_file(&path).ok();

    for needle in [
        r#""type":"counter","name":"test.export_counter","value":3"#,
        r#""type":"gauge","name":"test.export_gauge","value":1.5"#,
        r#""name":"test.export_hist","label":"e0","count":1"#,
        r#""type":"span","name":"test.export_span","calls":1"#,
        r#""type":"event","name":"test.export_event","step":1,"loss":0.25"#,
    ] {
        assert!(
            contents.contains(needle),
            "JSONL missing {needle}\n--- got:\n{contents}"
        );
    }
    // Every line must be a braced object.
    for line in contents.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad line {line}"
        );
    }

    // The human-readable summary mentions the same metrics.
    let summary = telemetry::summary_string();
    assert!(summary.contains("test.export_counter"));
    assert!(summary.contains("test.export_span"));
}

#[test]
fn reset_clears_the_registry() {
    let _guard = SNAPSHOT_LOCK.lock().unwrap();
    telemetry::counter("test.reset_me").add(5);
    telemetry::reset();
    let snap = telemetry::snapshot();
    assert!(snap.counters.iter().all(|c| c.name != "test.reset_me"));
}

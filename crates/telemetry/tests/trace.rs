//! Behavioural tests for the enabled timeline recorder: multi-thread
//! lanes, ring-buffer wrap accounting, span mirroring, the Chrome-trace
//! JSON round trip, and the panic-safe flush guard.

#![cfg(feature = "enabled")]

use std::sync::Mutex;
use std::thread;
use std::time::Duration;

use megablocks_telemetry as telemetry;
use megablocks_telemetry::TracePhase;

/// Tests that snapshot or reset the global trace recorder serialize on
/// this lock so parallel test threads don't interleave.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn events_land_on_named_per_thread_lanes() {
    let _guard = TRACE_LOCK.lock().unwrap();
    telemetry::trace_reset();
    telemetry::trace_instant("lane.main");
    thread::Builder::new()
        .name("trace-worker-a".to_string())
        .spawn(|| telemetry::trace_instant("lane.worker"))
        .unwrap()
        .join()
        .unwrap();
    let snap = telemetry::trace_snapshot();
    let worker_lane = snap
        .lanes
        .iter()
        .find(|l| l.name == "trace-worker-a")
        .expect("worker thread registered a named lane");
    let worker_events: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.tid == worker_lane.tid)
        .collect();
    assert_eq!(worker_events.len(), 1);
    assert_eq!(worker_events[0].name, "lane.worker");
    assert!(snap
        .events
        .iter()
        .any(|e| e.name == "lane.main" && e.tid != worker_lane.tid));
}

#[test]
fn ring_buffer_drops_oldest_and_counts() {
    let _guard = TRACE_LOCK.lock().unwrap();
    telemetry::trace_reset();
    telemetry::trace_set_capacity(4);
    for i in 0..10u64 {
        telemetry::trace_complete("ring.event", i, 1);
    }
    let snap = telemetry::trace_snapshot();
    telemetry::trace_set_capacity(telemetry::TRACE_DEFAULT_CAPACITY);
    let mine: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.name == "ring.event")
        .collect();
    assert_eq!(
        mine.len(),
        4,
        "ring keeps only the newest `capacity` events"
    );
    assert!(snap.dropped_events >= 6, "wrapped events are counted");
    // The survivors are the newest ones (highest timestamps).
    assert!(mine.iter().all(|e| e.ts_us >= 6));
}

#[test]
fn spans_are_mirrored_onto_the_timeline() {
    let _guard = TRACE_LOCK.lock().unwrap();
    telemetry::trace_reset();
    {
        let _span = telemetry::span("trace.mirrored_span");
        thread::sleep(Duration::from_millis(2));
    }
    let snap = telemetry::trace_snapshot();
    let ev = snap
        .events
        .iter()
        .find(|e| e.name == "trace.mirrored_span")
        .expect("span emitted a timeline event");
    match ev.phase {
        TracePhase::Complete { dur_us } => {
            assert!(dur_us >= 1_000, "2ms sleep shows up: {dur_us}µs")
        }
        ref other => panic!("span mirrored as {other:?}, expected Complete"),
    }
}

#[test]
fn runtime_switch_suppresses_recording() {
    let _guard = TRACE_LOCK.lock().unwrap();
    telemetry::trace_reset();
    telemetry::trace_set_enabled(false);
    telemetry::trace_instant("switched.off");
    telemetry::trace_set_enabled(true);
    telemetry::trace_instant("switched.on");
    let snap = telemetry::trace_snapshot();
    assert!(!snap.events.iter().any(|e| e.name == "switched.off"));
    assert!(snap.events.iter().any(|e| e.name == "switched.on"));
}

#[test]
fn exported_trace_round_trips_and_is_chrome_shaped() {
    let _guard = TRACE_LOCK.lock().unwrap();
    telemetry::trace_reset();
    telemetry::trace_complete("rt.span", 10, 32);
    telemetry::trace_instant("rt.mark");
    telemetry::trace_counter_event("rt.counter", 2.5);
    let snap = telemetry::trace_snapshot();
    let json = telemetry::trace_json_string();
    let back = telemetry::parse_chrome_trace(&json).expect("rendered trace parses");
    assert_eq!(back, snap, "render → parse is the identity");

    // Structural spot-checks on the raw document.
    let doc = telemetry::json::Json::parse(&json).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M")));
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X") && e.get("dur").is_some()));
}

#[test]
fn export_trace_writes_a_parseable_file() {
    let _guard = TRACE_LOCK.lock().unwrap();
    telemetry::trace_reset();
    telemetry::trace_instant("file.mark");
    let path =
        std::env::temp_dir().join(format!("megablocks_trace_test_{}.json", std::process::id()));
    telemetry::export_trace(&path).expect("export succeeds");
    let src = std::fs::read_to_string(&path).expect("file exists");
    let snap = telemetry::parse_chrome_trace(&src).expect("file parses");
    assert!(snap.events.iter().any(|e| e.name == "file.mark"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn flush_guard_exports_even_when_a_panic_unwinds() {
    let _guard = TRACE_LOCK.lock().unwrap();
    telemetry::trace_reset();
    let base = std::env::temp_dir().join(format!("megablocks_flush_test_{}", std::process::id()));
    let jsonl = base.with_extension("jsonl");
    let trace = base.with_extension("trace.json");
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&trace).ok();
    let result = std::panic::catch_unwind(|| {
        let _flush = telemetry::FlushOnDrop::new().jsonl(&jsonl).trace(&trace);
        telemetry::counter("flush.before_panic").inc();
        telemetry::trace_instant("flush.before_panic");
        panic!("step exploded");
    });
    assert!(result.is_err(), "the panic propagates");
    let metrics = std::fs::read_to_string(&jsonl).expect("jsonl flushed during unwind");
    assert!(metrics.contains("flush.before_panic"));
    let snap = telemetry::parse_chrome_trace(
        &std::fs::read_to_string(&trace).expect("trace flushed during unwind"),
    )
    .expect("flushed trace parses");
    assert!(snap.events.iter().any(|e| e.name == "flush.before_panic"));
    std::fs::remove_file(&jsonl).ok();
    std::fs::remove_file(&trace).ok();
}

//! Compile-time and behavioural checks for the feature-off build: run
//! with `cargo test -p megablocks-telemetry --no-default-features`.
//! Every call site must compile to a no-op on zero-sized types so
//! instrumented hot loops cost nothing in benchmark builds.

#![cfg(not(feature = "enabled"))]

use megablocks_telemetry as telemetry;

// The contract, checked at compile time: handles and guards carry no
// state whatsoever.
const _: () = {
    assert!(std::mem::size_of::<telemetry::Counter>() == 0);
    assert!(std::mem::size_of::<telemetry::Gauge>() == 0);
    assert!(std::mem::size_of::<telemetry::Histogram>() == 0);
    assert!(std::mem::size_of::<telemetry::SpanGuard>() == 0);
};

#[test]
fn every_call_site_is_a_no_op() {
    assert!(!telemetry::is_enabled());

    let c = telemetry::counter("noop.counter");
    c.add(100);
    c.inc();
    assert_eq!(c.get(), 0);

    telemetry::counter_with("noop.family", 3).add(7);

    let g = telemetry::gauge("noop.gauge");
    g.set(2.5);
    assert_eq!(g.get(), 0.0);

    let h = telemetry::histogram("noop.hist");
    h.record(5);
    assert_eq!(h.count(), 0);
    assert_eq!(h.percentile(0.99), 0);
    telemetry::histogram_with("noop.hist_family", "e1").record(9);

    {
        let _span = telemetry::span("noop.span");
        let _child = telemetry::span("noop.child");
    }

    telemetry::event("noop.event", &[("k", 1u64.into())]);

    let snap = telemetry::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.spans.is_empty());
    assert!(snap.events.is_empty());

    telemetry::reset();
}

#[test]
fn export_writes_nothing_and_succeeds() {
    let path = std::env::temp_dir().join(format!(
        "megablocks_telemetry_noop_{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    telemetry::export_jsonl(&path).expect("no-op export succeeds");
    assert!(!path.exists(), "disabled build must not write artifacts");
    assert!(telemetry::summary_string().contains("disabled"));
    telemetry::print_summary();
    drop(telemetry::SummaryOnDrop::new());
}

//! Compile-time and behavioural checks for the feature-off build: run
//! with `cargo test -p megablocks-telemetry --no-default-features`.
//! Every call site must compile to a no-op on zero-sized types so
//! instrumented hot loops cost nothing in benchmark builds.

#![cfg(not(feature = "enabled"))]

use megablocks_telemetry as telemetry;

// The contract, checked at compile time: handles and guards carry no
// state whatsoever.
const _: () = {
    assert!(std::mem::size_of::<telemetry::Counter>() == 0);
    assert!(std::mem::size_of::<telemetry::Gauge>() == 0);
    assert!(std::mem::size_of::<telemetry::Histogram>() == 0);
    assert!(std::mem::size_of::<telemetry::SpanGuard>() == 0);
};

#[test]
fn every_call_site_is_a_no_op() {
    assert!(!telemetry::is_enabled());

    let c = telemetry::counter("noop.counter");
    c.add(100);
    c.inc();
    assert_eq!(c.get(), 0);

    telemetry::counter_with("noop.family", 3).add(7);

    let g = telemetry::gauge("noop.gauge");
    g.set(2.5);
    assert_eq!(g.get(), 0.0);

    let h = telemetry::histogram("noop.hist");
    h.record(5);
    assert_eq!(h.count(), 0);
    assert_eq!(h.percentile(0.99), 0);
    telemetry::histogram_with("noop.hist_family", "e1").record(9);

    {
        let _span = telemetry::span("noop.span");
        let _child = telemetry::span("noop.child");
    }

    telemetry::event("noop.event", &[("k", 1u64.into())]);

    let snap = telemetry::snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.spans.is_empty());
    assert!(snap.events.is_empty());

    telemetry::reset();
}

#[test]
fn every_trace_call_site_is_a_no_op() {
    assert!(!telemetry::trace_is_on());
    telemetry::trace_set_enabled(true);
    assert!(!telemetry::trace_is_on(), "runtime switch has no effect");
    telemetry::trace_set_capacity(8);
    assert_eq!(telemetry::trace_now_us(), 0, "no clock is read");
    telemetry::trace_complete("noop.span", 0, 10);
    telemetry::trace_instant("noop.instant");
    telemetry::trace_counter_event("noop.counter", 1.0);
    let snap = telemetry::trace_snapshot();
    assert!(snap.lanes.is_empty());
    assert!(snap.events.is_empty());
    telemetry::trace_reset();
    // The rendered empty trace is still valid, loadable JSON.
    let parsed =
        telemetry::parse_chrome_trace(&telemetry::trace_json_string()).expect("empty trace parses");
    assert!(parsed.events.is_empty());
}

#[test]
fn trace_export_writes_nothing_and_succeeds() {
    let path = std::env::temp_dir().join(format!(
        "megablocks_telemetry_noop_trace_{}.json",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    telemetry::export_trace(&path).expect("no-op export succeeds");
    assert!(!path.exists(), "disabled build must not write artifacts");
    drop(telemetry::FlushOnDrop::new().jsonl(&path).trace(&path));
    assert!(!path.exists(), "disabled flush guard must not write");
}

#[test]
fn export_writes_nothing_and_succeeds() {
    let path = std::env::temp_dir().join(format!(
        "megablocks_telemetry_noop_{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    telemetry::export_jsonl(&path).expect("no-op export succeeds");
    assert!(!path.exists(), "disabled build must not write artifacts");
    assert!(telemetry::summary_string().contains("disabled"));
    telemetry::print_summary();
    drop(telemetry::SummaryOnDrop::new());
}

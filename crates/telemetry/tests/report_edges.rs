//! Edge-case coverage for the report layer: histogram/percentile
//! behaviour at the log₂ bucket boundaries, empty and single-sample
//! distributions, and well-formedness of the rendered JSONL/summary
//! output. The pure-data tests run in both feature modes; tests that
//! drive the live registry are gated on `enabled`.

use megablocks_telemetry as telemetry;
use megablocks_telemetry::json::Json;
use megablocks_telemetry::{render_jsonl, render_summary, CounterRow, HistogramRow, Snapshot};

#[test]
fn empty_snapshot_renders_to_nothing_but_a_frame() {
    let snap = Snapshot::default();
    assert_eq!(render_jsonl(&snap), "");
    let summary = render_summary(&snap);
    assert!(summary.contains("telemetry summary"));
    // No metric sections appear for an empty registry.
    assert!(!summary.contains("histogram"));
    assert!(!summary.contains("counter"));
}

#[test]
fn jsonl_rows_are_valid_json_objects() {
    let snap = Snapshot {
        counters: vec![CounterRow {
            name: "edge.counter \"quoted\"".to_string(),
            label: Some("e\\0".to_string()),
            value: u64::MAX,
        }],
        histograms: vec![HistogramRow {
            name: "edge.hist".to_string(),
            label: None,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p90: 0,
            p99: 0,
        }],
        ..Snapshot::default()
    };
    for line in render_jsonl(&snap).lines() {
        let obj =
            Json::parse(line).unwrap_or_else(|e| panic!("unparseable JSONL line {line:?}: {e}"));
        assert!(obj.get("type").is_some(), "row missing type: {line}");
        assert!(obj.get("name").is_some(), "row missing name: {line}");
    }
    // Escaping round-trips through the parser.
    let first = Json::parse(render_jsonl(&snap).lines().next().unwrap()).unwrap();
    assert_eq!(
        first.get("name").and_then(|n| n.as_str()),
        Some("edge.counter \"quoted\"")
    );
    assert_eq!(first.get("label").and_then(|l| l.as_str()), Some("e\\0"));
    // u64::MAX survives the u64 rendering path (not f64-rounded).
    assert_eq!(first.get("value").and_then(|v| v.as_u64()), Some(u64::MAX));
}

#[cfg(feature = "enabled")]
mod live {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = telemetry::histogram("edge.empty");
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 0, "empty percentile({q})");
        }
        let snap = telemetry::snapshot();
        let row = snap
            .histograms
            .iter()
            .find(|r| r.name == "edge.empty")
            .expect("registered family appears in the snapshot");
        assert_eq!((row.count, row.min, row.max), (0, 0, 0));
        assert_eq!((row.p50, row.p90, row.p99), (0, 0, 0));
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        // 100 lands in bucket [64, 127]; the bucket upper bound (127)
        // must clamp back to the observed range [100, 100].
        let h = telemetry::histogram("edge.single");
        h.record(100);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 100, "single-sample percentile({q})");
        }
        let snap = telemetry::snapshot();
        let row = snap
            .histograms
            .iter()
            .find(|r| r.name == "edge.single")
            .unwrap();
        assert_eq!((row.min, row.p50, row.p99, row.max), (100, 100, 100, 100));
    }

    #[test]
    fn zero_occupies_its_own_bucket() {
        let h = telemetry::histogram("edge.zero");
        h.record(0);
        h.record(0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.percentile(q), 0);
        }
        assert_eq!(h.sum(), 0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn log2_bucket_boundaries_separate_adjacent_powers() {
        // 7 (bit length 3) and 8 (bit length 4) land in different
        // buckets, so the estimator can tell them apart exactly at the
        // boundary: the low quantile reports 7's bucket upper bound (7)
        // and the high quantile reports 8 (bucket upper 15 clamped to
        // the observed max).
        let h = telemetry::histogram("edge.boundary");
        h.record(7);
        h.record(8);
        assert_eq!(h.percentile(0.0), 7);
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(1.0), 8);
    }

    #[test]
    fn powers_of_two_stay_monotone_across_all_buckets() {
        let h = telemetry::histogram("edge.powers");
        for k in 0..63u32 {
            h.record(1u64 << k);
            h.record((1u64 << k).saturating_sub(1));
        }
        let mut prev = 0;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= prev, "percentile({i}%) = {p} < previous {prev}");
            prev = p;
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(1.0), 1u64 << 62);
    }

    #[test]
    fn huge_samples_clamp_to_the_observed_max() {
        // Bit length 64: the bucket upper bound is u64::MAX, which must
        // clamp down to the largest sample actually seen. Both samples
        // share the top bucket, so every quantile resolves to its upper
        // bound — clamped into the observed range, never past it.
        let h = telemetry::histogram("edge.huge");
        h.record(1u64 << 63);
        h.record((1u64 << 63) + 12345);
        for q in [0.0, 0.5, 1.0] {
            let p = h.percentile(q);
            assert!(
                (1u64 << 63..=(1u64 << 63) + 12345).contains(&p),
                "percentile({q}) = {p} escaped the observed range"
            );
        }
        assert_eq!(h.percentile(1.0), (1u64 << 63) + 12345);
    }

    #[test]
    fn live_jsonl_lines_parse_back() {
        telemetry::histogram_with("edge.labelled", "expert-0").record(3);
        for line in render_jsonl(&telemetry::snapshot()).lines() {
            Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        }
    }
}

//! Sequence batching over a token stream.

use rand::rngs::StdRng;
use rand::Rng;

/// A batch of next-token-prediction training sequences.
///
/// `inputs` and `targets` are flattened `(batch * seq_len)` slices in
/// sequence-major order; `targets[i]` is the token following `inputs[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Input token ids, `batch_size * seq_len` entries.
    pub inputs: Vec<usize>,
    /// Next-token targets aligned with `inputs`.
    pub targets: Vec<usize>,
    /// Number of sequences in the batch.
    pub batch_size: usize,
    /// Tokens per sequence.
    pub seq_len: usize,
}

/// A token stream with known vocabulary, sliceable into training batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenDataset {
    tokens: Vec<u32>,
    vocab_size: usize,
}

impl TokenDataset {
    /// Wraps a token stream.
    ///
    /// # Panics
    ///
    /// Panics if any token id is outside the vocabulary.
    pub fn new(tokens: Vec<u32>, vocab_size: usize) -> Self {
        assert!(
            tokens.iter().all(|&t| (t as usize) < vocab_size),
            "token id out of vocabulary"
        );
        Self { tokens, vocab_size }
    }

    /// Number of tokens in the stream.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// The underlying tokens.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// Samples `batch_size` random windows of `seq_len` tokens (plus one
    /// for the shifted targets) — the training iterator.
    ///
    /// # Panics
    ///
    /// Panics if the stream is shorter than `seq_len + 1`.
    pub fn sample_batch(&self, batch_size: usize, seq_len: usize, rng: &mut StdRng) -> Batch {
        assert!(
            self.tokens.len() > seq_len,
            "stream of {} tokens too short for seq_len {seq_len}",
            self.tokens.len()
        );
        let mut inputs = Vec::with_capacity(batch_size * seq_len);
        let mut targets = Vec::with_capacity(batch_size * seq_len);
        for _ in 0..batch_size {
            let start = rng.gen_range(0..self.tokens.len() - seq_len);
            self.push_window(start, seq_len, &mut inputs, &mut targets);
        }
        Batch {
            inputs,
            targets,
            batch_size,
            seq_len,
        }
    }

    /// Iterates sequential non-overlapping evaluation batches covering the
    /// stream (last partial window dropped).
    pub fn sequential_batches(&self, batch_size: usize, seq_len: usize) -> Vec<Batch> {
        let mut batches = Vec::new();
        let stride = seq_len;
        let mut starts: Vec<usize> = Vec::new();
        let mut s = 0;
        while s + seq_len < self.tokens.len() {
            starts.push(s);
            s += stride;
        }
        for chunk in starts.chunks(batch_size) {
            if chunk.len() < batch_size {
                break;
            }
            let mut inputs = Vec::with_capacity(batch_size * seq_len);
            let mut targets = Vec::with_capacity(batch_size * seq_len);
            for &start in chunk {
                self.push_window(start, seq_len, &mut inputs, &mut targets);
            }
            batches.push(Batch {
                inputs,
                targets,
                batch_size,
                seq_len,
            });
        }
        batches
    }

    fn push_window(
        &self,
        start: usize,
        seq_len: usize,
        inputs: &mut Vec<usize>,
        targets: &mut Vec<usize>,
    ) {
        for i in 0..seq_len {
            inputs.push(self.tokens[start + i] as usize);
            targets.push(self.tokens[start + i + 1] as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn dataset(n: usize) -> TokenDataset {
        TokenDataset::new((0..n as u32).map(|i| i % 50).collect(), 50)
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let ds = dataset(200);
        let mut rng = seeded_rng(1);
        let b = ds.sample_batch(3, 8, &mut rng);
        assert_eq!(b.inputs.len(), 24);
        for s in 0..3 {
            for i in 0..7 {
                // within a sequence, target[i] == input[i+1]
                assert_eq!(b.targets[s * 8 + i], b.inputs[s * 8 + i + 1]);
            }
        }
    }

    #[test]
    fn sequential_batches_cover_stream_without_overlap() {
        let ds = dataset(101);
        let batches = ds.sequential_batches(2, 10);
        // starts: 0,10,...,90 -> 10 windows -> 5 full batches of 2
        assert_eq!(batches.len(), 5);
        let first = &batches[0];
        assert_eq!(first.inputs[0..10], (0..10).collect::<Vec<_>>()[..]);
        assert_eq!(first.inputs[10..20], (10..20).collect::<Vec<_>>()[..]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn vocabulary_is_validated() {
        let _ = TokenDataset::new(vec![100], 50);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_stream_panics() {
        let ds = dataset(5);
        let mut rng = seeded_rng(2);
        let _ = ds.sample_batch(1, 10, &mut rng);
    }
}

//! Cluster-mixture Markov corpus generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::TokenDataset;

/// Configuration for [`SyntheticPile::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct PileConfig {
    /// Vocabulary size (the paper's experiments use 51200; scaled-down
    /// experiments use less).
    pub vocab_size: usize,
    /// Number of latent document clusters (think: Pile subsets — code, web
    /// text, papers, ...). Experts can specialize per cluster.
    pub num_clusters: usize,
    /// Total number of tokens to generate.
    pub num_tokens: usize,
    /// Mean document length in tokens; documents are separated by the
    /// end-of-document token `0`.
    pub mean_doc_len: usize,
    /// Branching factor of the Markov dynamics: from each (cluster, token)
    /// state the next token is drawn from this many candidates with
    /// Zipfian weights. Smaller = more predictable text = lower achievable
    /// loss.
    pub branching: usize,
    /// Probability of an i.i.d. "noise" token (drawn Zipfian from the whole
    /// vocabulary) instead of a Markov transition. This bounds the best
    /// achievable loss away from zero, like natural text entropy.
    pub noise: f64,
}

impl PileConfig {
    /// A laptop-scale configuration used by tests and examples.
    pub fn tiny() -> Self {
        Self {
            vocab_size: 256,
            num_clusters: 8,
            num_tokens: 20_000,
            mean_doc_len: 64,
            branching: 4,
            noise: 0.1,
        }
    }

    /// The configuration used by the scaled-down paper-reproduction runs:
    /// more clusters than experts so routing stays non-trivial.
    pub fn repro() -> Self {
        Self {
            vocab_size: 512,
            num_clusters: 16,
            num_tokens: 200_000,
            mean_doc_len: 128,
            branching: 6,
            noise: 0.15,
        }
    }
}

/// A generated synthetic corpus plus its provenance.
#[derive(Debug, Clone)]
pub struct SyntheticPile {
    config: PileConfig,
    tokens: Vec<u32>,
    cluster_of_token: Vec<u16>,
}

impl SyntheticPile {
    /// Generates a corpus deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config has a zero vocab, zero clusters or zero
    /// branching.
    pub fn generate(config: &PileConfig, seed: u64) -> Self {
        assert!(
            config.vocab_size >= 2,
            "vocab must include EOD + content tokens"
        );
        assert!(config.num_clusters >= 1, "need at least one cluster");
        assert!(config.branching >= 1, "need at least one branch");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tokens = Vec::with_capacity(config.num_tokens);
        let mut cluster_of_token = Vec::with_capacity(config.num_tokens);

        while tokens.len() < config.num_tokens {
            let cluster = rng.gen_range(0..config.num_clusters);
            // Geometric-ish document length around the mean.
            let len = 1 + rng.gen_range(config.mean_doc_len / 2..=config.mean_doc_len * 3 / 2);
            let mut cur: u32 = Self::cluster_start(cluster, config.vocab_size);
            tokens.push(0); // end-of-document separator starts each doc
            cluster_of_token.push(cluster as u16);
            for _ in 0..len {
                if tokens.len() >= config.num_tokens {
                    break;
                }
                let next = if rng.gen_bool(config.noise) {
                    Self::zipf_token(&mut rng, config.vocab_size)
                } else {
                    let slot = Self::zipf_slot(&mut rng, config.branching);
                    Self::transition(cluster, cur, slot, config.vocab_size)
                };
                tokens.push(next);
                cluster_of_token.push(cluster as u16);
                cur = next;
            }
        }
        tokens.truncate(config.num_tokens);
        cluster_of_token.truncate(config.num_tokens);
        Self {
            config: config.clone(),
            tokens,
            cluster_of_token,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &PileConfig {
        &self.config
    }

    /// The raw token stream.
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The latent cluster of each token (ground truth, used by routing
    /// diagnostics — a real corpus would not expose this).
    pub fn cluster_of_token(&self) -> &[u16] {
        &self.cluster_of_token
    }

    /// Splits into train/validation [`TokenDataset`]s at `fraction` of the
    /// stream.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1)`.
    pub fn split(&self, fraction: f64) -> (TokenDataset, TokenDataset) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1)"
        );
        let cut = ((self.tokens.len() as f64) * fraction) as usize;
        (
            TokenDataset::new(self.tokens[..cut].to_vec(), self.config.vocab_size),
            TokenDataset::new(self.tokens[cut..].to_vec(), self.config.vocab_size),
        )
    }

    /// Deterministic per-cluster start token.
    fn cluster_start(cluster: usize, vocab: usize) -> u32 {
        (1 + mix(cluster as u64, 0, 0) as usize % (vocab - 1)) as u32
    }

    /// Deterministic Markov transition table, evaluated lazily by hashing —
    /// equivalent to a `num_clusters x vocab x branching` lookup table
    /// without materializing it.
    fn transition(cluster: usize, cur: u32, slot: usize, vocab: usize) -> u32 {
        (1 + mix(cluster as u64, u64::from(cur), slot as u64) as usize % (vocab - 1)) as u32
    }

    /// Zipfian slot choice among the branching candidates (slot 0 most
    /// likely).
    fn zipf_slot(rng: &mut StdRng, branching: usize) -> usize {
        let weights: Vec<f64> = (1..=branching).map(|r| 1.0 / r as f64).collect();
        weighted_choice(rng, &weights)
    }

    /// Zipfian token over the whole vocabulary (token 1 most likely).
    fn zipf_token(rng: &mut StdRng, vocab: usize) -> u32 {
        // Inverse-CDF sampling of P(r) ∝ 1/r via the approximation
        // r = exp(u * ln(V)) which gives a discrete log-uniform (Zipf s≈1).
        let u: f64 = rng.gen();
        let r = ((vocab - 1) as f64).powf(u).floor() as usize;
        (1 + r.min(vocab - 2)) as u32
    }
}

/// SplitMix64-style mixing of three words into one.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(c.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(0x2545F4914F6CDD1D);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58476D1CE4E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn weighted_choice(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = PileConfig::tiny();
        let a = SyntheticPile::generate(&cfg, 1);
        let b = SyntheticPile::generate(&cfg, 1);
        assert_eq!(a.tokens(), b.tokens());
        let c = SyntheticPile::generate(&cfg, 2);
        assert_ne!(a.tokens(), c.tokens());
    }

    #[test]
    fn tokens_are_in_vocab() {
        let cfg = PileConfig::tiny();
        let pile = SyntheticPile::generate(&cfg, 3);
        assert_eq!(pile.tokens().len(), cfg.num_tokens);
        assert!(pile.tokens().iter().all(|&t| (t as usize) < cfg.vocab_size));
    }

    #[test]
    fn stream_contains_document_separators() {
        let pile = SyntheticPile::generate(&PileConfig::tiny(), 4);
        let eods = pile.tokens().iter().filter(|&&t| t == 0).count();
        // ~ num_tokens / mean_doc_len documents
        assert!(eods > 100, "only {eods} documents");
    }

    #[test]
    fn clusters_have_distinct_statistics() {
        // The per-cluster unigram distributions should differ: measure the
        // most frequent content token per cluster and require diversity.
        let cfg = PileConfig::tiny();
        let pile = SyntheticPile::generate(&cfg, 5);
        let mut top_token = Vec::new();
        for cl in 0..cfg.num_clusters {
            let mut hist = vec![0usize; cfg.vocab_size];
            for (&t, &c) in pile.tokens().iter().zip(pile.cluster_of_token()) {
                if c as usize == cl && t != 0 {
                    hist[t as usize] += 1;
                }
            }
            top_token.push(hist.iter().enumerate().max_by_key(|(_, &n)| n).unwrap().0);
        }
        top_token.sort_unstable();
        top_token.dedup();
        assert!(
            top_token.len() >= cfg.num_clusters / 2,
            "cluster statistics collapsed: {top_token:?}"
        );
    }

    #[test]
    fn markov_structure_is_predictable() {
        // Transitions must repeat: P(next | cluster, cur) concentrated on
        // `branching` candidates. Check that the empirical number of
        // distinct successors of a frequent state is near the branching
        // factor (plus noise).
        let cfg = PileConfig {
            noise: 0.0,
            ..PileConfig::tiny()
        };
        let pile = SyntheticPile::generate(&cfg, 6);
        use std::collections::{HashMap, HashSet};
        let mut successors: HashMap<(u16, u32), HashSet<u32>> = HashMap::new();
        let toks = pile.tokens();
        let clus = pile.cluster_of_token();
        for i in 0..toks.len() - 1 {
            if toks[i] == 0 || toks[i + 1] == 0 || clus[i] != clus[i + 1] {
                continue;
            }
            successors
                .entry((clus[i], toks[i]))
                .or_default()
                .insert(toks[i + 1]);
        }
        let max_succ = successors.values().map(|s| s.len()).max().unwrap();
        assert!(
            max_succ <= cfg.branching,
            "state had {max_succ} successors, branching is {}",
            cfg.branching
        );
    }

    #[test]
    fn split_partitions_stream() {
        let pile = SyntheticPile::generate(&PileConfig::tiny(), 7);
        let (train, valid) = pile.split(0.9);
        assert_eq!(train.len() + valid.len(), pile.tokens().len());
        assert!(train.len() > valid.len());
    }
}

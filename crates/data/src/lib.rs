//! Synthetic Pile-like corpus for MegaBlocks-RS.
//!
//! The paper trains on The Pile (Gao et al. 2020), 800 GB of diverse text.
//! That corpus is unavailable here, so this crate generates a synthetic
//! stand-in that preserves the two properties the MoE experiments depend
//! on:
//!
//! 1. **Cluster structure** — documents come from distinct latent clusters
//!    with different token statistics, so a router can learn to specialize
//!    experts to parts of the data distribution (the mechanism behind MoE
//!    quality gains, §2).
//! 2. **Predictable sequential structure** — tokens follow per-cluster
//!    Markov dynamics with Zipfian marginals, so a language model's loss
//!    decreases with capacity and *dropping tokens measurably hurts*.
//!
//! See DESIGN.md ("Hardware / data substitutions") for the full rationale.
//!
//! # Example
//!
//! ```
//! use megablocks_data::{PileConfig, SyntheticPile};
//!
//! let pile = SyntheticPile::generate(&PileConfig::tiny(), 42);
//! let (train, valid) = pile.split(0.9);
//! let batch = train.sample_batch(4, 16, &mut megablocks_data::seeded_rng(0));
//! assert_eq!(batch.inputs.len(), 4 * 16);
//! ```

#![deny(missing_docs)]

mod batch;
mod pile;

pub use batch::{Batch, TokenDataset};
pub use pile::{PileConfig, SyntheticPile};

/// Creates a seeded RNG (re-exported convenience so callers don't need
/// `rand` traits in scope).
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

//! Statistical and structural properties of the synthetic Pile that the
//! MoE experiments rely on (see DESIGN.md's substitution table).

use megablocks_data::{seeded_rng, PileConfig, SyntheticPile, TokenDataset};
use proptest::prelude::*;
use std::collections::HashMap;

fn small_cfg(seed_dependent_tokens: usize) -> PileConfig {
    PileConfig {
        vocab_size: 128,
        num_clusters: 4,
        num_tokens: seed_dependent_tokens,
        mean_doc_len: 32,
        branching: 3,
        noise: 0.1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generation_respects_config(seed in 0u64..500, tokens in 500usize..5000) {
        let cfg = small_cfg(tokens);
        let pile = SyntheticPile::generate(&cfg, seed);
        prop_assert_eq!(pile.tokens().len(), tokens);
        prop_assert_eq!(pile.cluster_of_token().len(), tokens);
        prop_assert!(pile.tokens().iter().all(|&t| (t as usize) < cfg.vocab_size));
        prop_assert!(pile
            .cluster_of_token()
            .iter()
            .all(|&c| (c as usize) < cfg.num_clusters));
    }

    #[test]
    fn split_fraction_is_respected(frac in 0.05f64..0.95) {
        let pile = SyntheticPile::generate(&small_cfg(2000), 9);
        let (train, valid) = pile.split(frac);
        prop_assert_eq!(train.len() + valid.len(), 2000);
        let got = train.len() as f64 / 2000.0;
        prop_assert!((got - frac).abs() < 0.01);
    }

    #[test]
    fn sampled_batches_are_within_vocab(seed in 0u64..100) {
        let pile = SyntheticPile::generate(&small_cfg(3000), seed);
        let (train, _) = pile.split(0.9);
        let mut rng = seeded_rng(seed + 1);
        let b = train.sample_batch(3, 17, &mut rng);
        prop_assert_eq!(b.inputs.len(), 51);
        prop_assert!(b.inputs.iter().chain(&b.targets).all(|&t| t < 128));
    }
}

#[test]
fn bigram_structure_is_far_from_iid() {
    // The Markov dynamics must make next-token entropy conditioned on the
    // current token substantially lower than the unigram entropy —
    // otherwise an LM could not improve on unigram statistics and the
    // training figures would be flat.
    let cfg = PileConfig {
        vocab_size: 128,
        num_clusters: 4,
        num_tokens: 60_000,
        mean_doc_len: 64,
        branching: 3,
        noise: 0.05,
    };
    let pile = SyntheticPile::generate(&cfg, 1);
    let toks = pile.tokens();

    let mut unigram: HashMap<u32, usize> = HashMap::new();
    let mut bigram: HashMap<(u32, u32), usize> = HashMap::new();
    let mut context: HashMap<u32, usize> = HashMap::new();
    for w in toks.windows(2) {
        unigram.entry(w[0]).and_modify(|c| *c += 1).or_insert(1);
        bigram
            .entry((w[0], w[1]))
            .and_modify(|c| *c += 1)
            .or_insert(1);
        context.entry(w[0]).and_modify(|c| *c += 1).or_insert(1);
    }
    let n = (toks.len() - 1) as f64;
    let h_unigram: f64 = unigram
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();
    let h_cond: f64 = bigram
        .iter()
        .map(|(&(a, _), &c)| {
            let p_joint = c as f64 / n;
            let p_cond = c as f64 / context[&a] as f64;
            -p_joint * p_cond.ln()
        })
        .sum();
    assert!(
        h_cond < h_unigram - 1.0,
        "conditional entropy {h_cond:.3} should be far below unigram {h_unigram:.3}"
    );
}

#[test]
fn clusters_make_routing_learnable() {
    // Cluster identity must carry information about the next token beyond
    // the current token alone — that is what experts can exploit.
    let cfg = PileConfig {
        vocab_size: 64,
        num_clusters: 4,
        num_tokens: 80_000,
        mean_doc_len: 64,
        branching: 2,
        noise: 0.0,
    };
    let pile = SyntheticPile::generate(&cfg, 2);
    let toks = pile.tokens();
    let clus = pile.cluster_of_token();
    // For a frequent current-token value, the successor distribution must
    // differ across clusters.
    let mut by_cluster: HashMap<(u16, u32), HashMap<u32, usize>> = HashMap::new();
    for i in 0..toks.len() - 1 {
        if toks[i] == 0 || toks[i + 1] == 0 || clus[i] != clus[i + 1] {
            continue;
        }
        by_cluster
            .entry((clus[i], toks[i]))
            .or_default()
            .entry(toks[i + 1])
            .and_modify(|c| *c += 1)
            .or_insert(1);
    }
    // Find a token observed in at least 2 clusters with enough counts and
    // check their top successors differ for at least one such token.
    let mut checked = 0;
    let mut differed = 0;
    for tok in 1..64u32 {
        let mut tops = Vec::new();
        for cl in 0..4u16 {
            if let Some(succ) = by_cluster.get(&(cl, tok)) {
                if succ.values().sum::<usize>() >= 20 {
                    let top = succ.iter().max_by_key(|(_, &c)| c).map(|(&t, _)| t);
                    tops.push(top);
                }
            }
        }
        if tops.len() >= 2 {
            checked += 1;
            if tops.windows(2).any(|w| w[0] != w[1]) {
                differed += 1;
            }
        }
    }
    assert!(
        checked >= 10,
        "not enough overlapping tokens to compare ({checked})"
    );
    assert!(
        differed * 2 >= checked,
        "cluster-conditional transitions should usually differ: {differed}/{checked}"
    );
}

#[test]
fn sequential_batches_do_not_overlap_or_cross_split() {
    let pile = SyntheticPile::generate(&small_cfg(4000), 3);
    let (train, valid) = pile.split(0.8);
    let batches = valid.sequential_batches(2, 25);
    let mut seen = std::collections::HashSet::new();
    for b in &batches {
        for (i, &tok) in b.inputs.iter().enumerate() {
            let _ = tok;
            let _ = i;
        }
    }
    // Starts are strided by seq_len: reconstruct and verify.
    let mut covered = 0usize;
    for b in &batches {
        covered += b.inputs.len();
        for s in 0..b.batch_size {
            let window = &b.inputs[s * b.seq_len..(s + 1) * b.seq_len];
            let key = window.to_vec();
            assert!(seen.insert(key), "window duplicated across batches");
        }
    }
    assert!(covered <= valid.len());
    let _ = train;
}

#[test]
fn dataset_accessors_are_consistent() {
    let ds = TokenDataset::new(vec![1, 2, 3, 4, 5], 10);
    assert_eq!(ds.len(), 5);
    assert!(!ds.is_empty());
    assert_eq!(ds.vocab_size(), 10);
    assert_eq!(ds.tokens(), &[1, 2, 3, 4, 5]);
}

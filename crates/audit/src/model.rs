//! Item-level source model built on the token stream.
//!
//! [`SourceFile::parse`] lexes a file and walks its module structure,
//! producing a flat list of [`Item`]s — functions, structs, enums, mods,
//! impls, consts — each annotated with:
//!
//! * **visibility** (`pub` / `pub(crate)`-style scoped / private),
//! * **cfg attribution**: the full stack of `#[cfg(test)]` /
//!   `#[cfg(feature = "…")]` / `#[cfg(not(feature = "…"))]` gates on the
//!   item itself *and* inherited from enclosing modules, so a rule can ask
//!   "is this token test-only?" or "which feature branch does this item
//!   live in?" structurally instead of by line heuristics,
//! * a **normalized signature** for functions (whitespace-collapsed,
//!   comment-free, `_`-prefix on parameter names stripped), the basis of
//!   the API-parity rules,
//! * **enum variants** with declaration lines (for exhaustiveness rules),
//! * the item's **byte span** including attributes and body.
//!
//! Function bodies are deliberately *not* descended into: statement-level
//! `cfg` and local items are invisible, which keeps the model small and
//! the feature-parity rule focused on API surface. Brace matching works on
//! the token stream, so braces inside strings, comments or char literals
//! can never desynchronize the walk — the failure mode that motivated
//! replacing the old line-stripping engine.

use crate::lexer::{lex, LexError, Token, TokenKind};

/// Item visibility, as spelled at the declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub`.
    Private,
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Scoped,
}

impl Vis {
    /// Whether the item is visible outside its own module.
    pub fn is_public(self) -> bool {
        !matches!(self, Vis::Private)
    }
}

/// One `#[cfg(…)]`-style gate attached to (or inherited by) an item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// `#[cfg(test)]` or `#[test]`.
    Test,
    /// `#[cfg(feature = "name")]` (`not: false`) or
    /// `#[cfg(not(feature = "name"))]` (`not: true`).
    Feature {
        /// The feature name.
        name: String,
        /// Whether the gate is negated.
        not: bool,
    },
    /// Any other `cfg` predicate (platform, `all(…)`, …) — opaque.
    Other,
}

/// What kind of item an [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free or inside an impl — see [`Item::owner`]).
    Fn,
    /// `struct` / `union`.
    Struct,
    /// `enum` (variants captured in [`Item::variants`]).
    Enum,
    /// Inline `mod name { … }`.
    Mod,
    /// Out-of-line `mod name;`.
    ModDecl,
    /// Inherent `impl Type { … }`.
    Impl,
    /// `impl Trait for Type { … }`.
    TraitImpl,
    /// `const` / `static`.
    Const,
    /// `use …;`.
    Use,
    /// `type Name = …;`.
    TypeAlias,
    /// `trait Name { … }`.
    Trait,
    /// `macro_rules! name { … }`.
    Macro,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item classification.
    pub kind: ItemKind,
    /// Declared name (for impls: the self type's head identifier).
    pub name: String,
    /// Declared visibility.
    pub vis: Vis,
    /// Gates on the item itself (not inherited).
    pub own_gates: Vec<Gate>,
    /// Full gate stack: enclosing modules' gates (outermost first), then
    /// the item's own.
    pub gates: Vec<Gate>,
    /// 1-based line of the declaring keyword.
    pub line: usize,
    /// Normalized signature for `fn` items (`pub fn f(a: T) -> U`).
    pub signature: Option<String>,
    /// For fns declared inside an inherent impl: the impl's self type.
    pub owner: Option<String>,
    /// For trait impls: the implemented trait's head identifier.
    pub trait_name: Option<String>,
    /// Names of the enclosing inline modules, outermost first.
    pub mod_path: Vec<String>,
    /// Byte span from the first attribute to the end of the body (or
    /// terminating `;`).
    pub span: (usize, usize),
    /// For enums: `(variant name, 1-based line)` per variant.
    pub variants: Vec<(String, usize)>,
}

impl Item {
    /// Whether any gate (own or inherited) marks the item test-only.
    pub fn is_test_gated(&self) -> bool {
        self.gates.contains(&Gate::Test)
    }

    /// The item's feature gate on `feature`, if any (own or inherited):
    /// `Some(false)` for the positive branch, `Some(true)` for `not(…)`.
    pub fn feature_gate(&self, feature: &str) -> Option<bool> {
        self.gates.iter().find_map(|g| match g {
            Gate::Feature { name, not } if name == feature => Some(*not),
            _ => None,
        })
    }
}

/// A lexed and item-parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// The full lossless token stream.
    pub tokens: Vec<Token>,
    /// All items, in declaration order, with inherited gate stacks.
    pub items: Vec<Item>,
}

impl SourceFile {
    /// Lexes and parses `src`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`LexError`] when the file cannot be
    /// faithfully tokenized.
    pub fn parse(src: &str) -> Result<SourceFile, LexError> {
        let tokens = lex(src)?;
        let mut items = Vec::new();
        let code: Vec<usize> = (0..tokens.len()).filter(|&i| tokens[i].is_code()).collect();
        let mut walker = Walker {
            src,
            tokens: &tokens,
            code: &code,
            items: &mut items,
        };
        walker.walk_scope(0, code.len(), &[], &[], None);
        Ok(SourceFile { tokens, items })
    }

    /// Whether byte `offset` falls inside a test-gated item.
    pub fn in_test_item(&self, offset: usize) -> bool {
        self.items
            .iter()
            .any(|it| it.is_test_gated() && it.span.0 <= offset && offset < it.span.1)
    }

    /// The innermost item whose span contains byte `offset`, if any.
    pub fn item_at(&self, offset: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.span.0 <= offset && offset < it.span.1)
            .min_by_key(|it| it.span.1 - it.span.0)
    }
}

/// Whether a code-token slice position holds a `::` path separator ending
/// at code index `i` (i.e. tokens `i-1`, `i` are `:` `:` and adjacent).
fn is_path_sep(tokens: &[Token], code: &[usize], src: &str, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let a = tokens[code[i - 1]];
    let b = tokens[code[i]];
    a.kind == TokenKind::Punct
        && b.kind == TokenKind::Punct
        && a.text(src) == ":"
        && b.text(src) == ":"
        && a.end == b.start
}

/// Module-structure walker over the code-token index list.
struct Walker<'a> {
    src: &'a str,
    tokens: &'a [Token],
    /// Indices into `tokens` of code tokens only.
    code: &'a [usize],
    items: &'a mut Vec<Item>,
}

impl Walker<'_> {
    fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    fn text(&self, ci: usize) -> &str {
        self.tok(ci).text(self.src)
    }

    fn is_punct(&self, ci: usize, p: &str) -> bool {
        ci < self.code.len() && self.tok(ci).kind == TokenKind::Punct && self.text(ci) == p
    }

    fn is_ident(&self, ci: usize, w: &str) -> bool {
        ci < self.code.len() && self.tok(ci).kind == TokenKind::Ident && self.text(ci) == w
    }

    /// Skips a balanced `{…}` / `(…)` / `[…]` group starting at `ci`
    /// (which must be the opener); returns the index one past the closer.
    fn skip_group(&self, mut ci: usize, open: &str, close: &str) -> usize {
        debug_assert!(self.is_punct(ci, open));
        let mut depth = 0usize;
        while ci < self.code.len() {
            if self.is_punct(ci, open) {
                depth += 1;
            } else if self.is_punct(ci, close) {
                depth -= 1;
                if depth == 0 {
                    return ci + 1;
                }
            }
            ci += 1;
        }
        self.code.len()
    }

    /// Parses one `#[…]` or `#![…]` attribute starting at `ci` (the `#`);
    /// returns (gate-if-cfg, index past the closing `]`).
    fn parse_attr(&self, ci: usize) -> (Option<Gate>, usize) {
        let mut i = ci + 1; // past '#'
        if self.is_punct(i, "!") {
            i += 1;
        }
        if !self.is_punct(i, "[") {
            return (None, ci + 1);
        }
        let end = self.skip_group(i, "[", "]");
        let inner: Vec<usize> = ((i + 1)..(end - 1)).collect();
        let gate = self.attr_gate(&inner);
        (gate, end)
    }

    /// Interprets the code tokens between an attribute's brackets.
    fn attr_gate(&self, inner: &[usize]) -> Option<Gate> {
        let first = *inner.first()?;
        if self.is_ident(first, "test") {
            return Some(Gate::Test);
        }
        if !self.is_ident(first, "cfg") {
            return None;
        }
        // cfg ( … )
        let words: Vec<&str> = inner.iter().map(|&ci| self.text(ci)).collect();
        match words.as_slice() {
            ["cfg", "(", "test", ")"] => Some(Gate::Test),
            ["cfg", "(", "feature", "=", s, ")"] => Some(Gate::Feature {
                name: unquote(s),
                not: false,
            }),
            ["cfg", "(", "not", "(", "feature", "=", s, ")", ")"] => Some(Gate::Feature {
                name: unquote(s),
                not: true,
            }),
            _ => Some(Gate::Other),
        }
    }

    /// Parses the items of one scope: `[start, end)` in code-token
    /// indices. `inherited` is the enclosing gate stack; `mod_path` the
    /// enclosing module names; `owner` the inherent-impl self type when
    /// walking an impl body.
    fn walk_scope(
        &mut self,
        mut ci: usize,
        end: usize,
        inherited: &[Gate],
        mod_path: &[String],
        owner: Option<&str>,
    ) {
        while ci < end {
            // Attributes.
            let attr_start = self.tok(ci).start;
            let mut own_gates = Vec::new();
            while self.is_punct(ci, "#") {
                let (gate, next) = self.parse_attr(ci);
                own_gates.extend(gate);
                ci = next;
                if ci >= end {
                    return;
                }
            }
            // Visibility.
            let sig_start = ci;
            let mut vis = Vis::Private;
            if self.is_ident(ci, "pub") {
                vis = Vis::Pub;
                ci += 1;
                if self.is_punct(ci, "(") {
                    vis = Vis::Scoped;
                    ci = self.skip_group(ci, "(", ")");
                }
            }
            if ci >= end {
                return;
            }
            // Leading qualifiers before `fn`.
            let mut qual = ci;
            loop {
                if self.is_ident(qual, "const") && self.is_ident(qual + 1, "fn") {
                    qual += 1;
                } else if self.is_ident(qual, "async")
                    || self.is_ident(qual, "unsafe")
                    || self.is_ident(qual, "extern")
                {
                    qual += 1;
                    if self.tok(qual.min(end - 1)).kind == TokenKind::Str {
                        qual += 1; // extern "C"
                    }
                } else {
                    break;
                }
                if qual >= end {
                    return;
                }
            }
            let kw = if qual < end { self.text(qual) } else { "" };
            let line = self.tok(ci).line;
            let mut gates = inherited.to_vec();
            gates.extend(own_gates.iter().cloned());
            match kw {
                "fn" => {
                    let name = self.ident_after(qual + 1).unwrap_or_default();
                    let (body_open, terminated) = self.find_body_or_semi(qual, end);
                    let sig = self.normalized_signature(sig_start, body_open);
                    let span_end = if terminated {
                        self.span_end_of_group_or_semi(body_open, end)
                    } else {
                        self.tok(body_open.min(end - 1)).end
                    };
                    self.items.push(Item {
                        kind: ItemKind::Fn,
                        name,
                        vis,
                        own_gates,
                        gates,
                        line,
                        signature: Some(sig),
                        owner: owner.map(str::to_string),
                        trait_name: None,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants: Vec::new(),
                    });
                    ci = self.skip_past_group_or_semi(body_open, end);
                }
                "struct" | "union" | "enum" => {
                    let name = self.ident_after(qual + 1).unwrap_or_default();
                    let (body_open, _) = self.find_body_or_semi(qual, end);
                    let kind = if kw == "enum" {
                        ItemKind::Enum
                    } else {
                        ItemKind::Struct
                    };
                    let variants = if kind == ItemKind::Enum && self.is_punct(body_open, "{") {
                        self.enum_variants(body_open)
                    } else {
                        Vec::new()
                    };
                    let span_end = self.span_end_of_group_or_semi(body_open, end);
                    // Tuple structs close with `);`.
                    let after = self.skip_past_group_or_semi(body_open, end);
                    self.items.push(Item {
                        kind,
                        name,
                        vis,
                        own_gates,
                        gates,
                        line,
                        signature: None,
                        owner: None,
                        trait_name: None,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants,
                    });
                    ci = after;
                }
                "mod" => {
                    let name = self.ident_after(qual + 1).unwrap_or_default();
                    if self.is_punct(qual + 2, "{") {
                        let body_open = qual + 2;
                        let after = self.skip_group(body_open, "{", "}");
                        let span_end = self.tok(after - 1).end;
                        self.items.push(Item {
                            kind: ItemKind::Mod,
                            name: name.clone(),
                            vis,
                            own_gates,
                            gates: gates.clone(),
                            line,
                            signature: None,
                            owner: None,
                            trait_name: None,
                            mod_path: mod_path.to_vec(),
                            span: (attr_start, span_end),
                            variants: Vec::new(),
                        });
                        let mut child_path = mod_path.to_vec();
                        child_path.push(name);
                        self.walk_scope(body_open + 1, after - 1, &gates, &child_path, None);
                        ci = after;
                    } else {
                        let span_end = self.span_end_of_semi(qual, end);
                        self.items.push(Item {
                            kind: ItemKind::ModDecl,
                            name,
                            vis,
                            own_gates,
                            gates,
                            line,
                            signature: None,
                            owner: None,
                            trait_name: None,
                            mod_path: mod_path.to_vec(),
                            span: (attr_start, span_end),
                            variants: Vec::new(),
                        });
                        ci = self.skip_past_semi(qual, end);
                    }
                }
                "impl" => {
                    // Header runs to the body `{`; `for` at angle depth 0
                    // marks a trait impl.
                    let (body_open, _) = self.find_body_or_semi(qual, end);
                    let mut trait_name = None;
                    let mut self_ty = String::new();
                    let mut saw_for = false;
                    let mut head_idents: Vec<String> = Vec::new();
                    for i in (qual + 1)..body_open.min(end) {
                        if self.is_ident(i, "for") {
                            saw_for = true;
                            trait_name = head_idents.last().cloned();
                            head_idents.clear();
                        } else if self.tok(i).kind == TokenKind::Ident && !self.is_ident(i, "where")
                        {
                            head_idents.push(self.text(i).to_string());
                        } else if self.is_ident(i, "where") {
                            break;
                        }
                    }
                    if let Some(first) = head_idents.first() {
                        self_ty = first.clone();
                    }
                    let after = self.skip_past_group_or_semi(body_open, end);
                    let span_end = self.span_end_of_group_or_semi(body_open, end);
                    let kind = if saw_for {
                        ItemKind::TraitImpl
                    } else {
                        ItemKind::Impl
                    };
                    self.items.push(Item {
                        kind,
                        name: self_ty.clone(),
                        vis,
                        own_gates,
                        gates: gates.clone(),
                        line,
                        signature: None,
                        owner: None,
                        trait_name,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants: Vec::new(),
                    });
                    if self.is_punct(body_open, "{") {
                        let inner_owner = (!saw_for).then_some(self_ty.as_str());
                        self.walk_scope(body_open + 1, after - 1, &gates, mod_path, inner_owner);
                    }
                    ci = after;
                }
                "trait" => {
                    let name = self.ident_after(qual + 1).unwrap_or_default();
                    let (body_open, _) = self.find_body_or_semi(qual, end);
                    let span_end = self.span_end_of_group_or_semi(body_open, end);
                    self.items.push(Item {
                        kind: ItemKind::Trait,
                        name,
                        vis,
                        own_gates,
                        gates,
                        line,
                        signature: None,
                        owner: None,
                        trait_name: None,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants: Vec::new(),
                    });
                    ci = self.skip_past_group_or_semi(body_open, end);
                }
                "const" | "static" => {
                    let mut ni = qual + 1;
                    if self.is_ident(ni, "mut") {
                        ni += 1;
                    }
                    let name = self.ident_after(ni).unwrap_or_default();
                    let span_end = self.span_end_of_semi(qual, end);
                    self.items.push(Item {
                        kind: ItemKind::Const,
                        name,
                        vis,
                        own_gates,
                        gates,
                        line,
                        signature: None,
                        owner: None,
                        trait_name: None,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants: Vec::new(),
                    });
                    ci = self.skip_past_semi(qual, end);
                }
                "use" => {
                    let span_end = self.span_end_of_semi(qual, end);
                    let mut path = String::new();
                    let mut i = qual + 1;
                    while i < end && !self.is_punct(i, ";") {
                        path.push_str(self.text(i));
                        i += 1;
                    }
                    self.items.push(Item {
                        kind: ItemKind::Use,
                        name: path,
                        vis,
                        own_gates,
                        gates,
                        line,
                        signature: None,
                        owner: None,
                        trait_name: None,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants: Vec::new(),
                    });
                    ci = self.skip_past_semi(qual, end);
                }
                "type" => {
                    let name = self.ident_after(qual + 1).unwrap_or_default();
                    let span_end = self.span_end_of_semi(qual, end);
                    self.items.push(Item {
                        kind: ItemKind::TypeAlias,
                        name,
                        vis,
                        own_gates,
                        gates,
                        line,
                        signature: None,
                        owner: None,
                        trait_name: None,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants: Vec::new(),
                    });
                    ci = self.skip_past_semi(qual, end);
                }
                "macro_rules" => {
                    // macro_rules ! name { … }
                    let name = self.ident_after(qual + 2).unwrap_or_default();
                    let mut open = qual + 3;
                    while open < end && !self.is_punct(open, "{") {
                        open += 1;
                    }
                    let after = if open < end {
                        self.skip_group(open, "{", "}")
                    } else {
                        end
                    };
                    let span_end = self.tok((after.max(1) - 1).min(self.code.len() - 1)).end;
                    self.items.push(Item {
                        kind: ItemKind::Macro,
                        name,
                        vis,
                        own_gates,
                        gates,
                        line,
                        signature: None,
                        owner: None,
                        trait_name: None,
                        mod_path: mod_path.to_vec(),
                        span: (attr_start, span_end),
                        variants: Vec::new(),
                    });
                    ci = after;
                }
                _ => {
                    // Unknown construct: advance one token to stay total.
                    ci += 1;
                }
            }
        }
    }

    /// The identifier text at code index `ci`, if it is an identifier.
    fn ident_after(&self, ci: usize) -> Option<String> {
        (ci < self.code.len() && self.tok(ci).kind == TokenKind::Ident)
            .then(|| self.text(ci).to_string())
    }

    /// Finds the item's body `{` or terminating `;` starting the scan at
    /// `from`, tracking paren/bracket groups (so `;` inside `[u8; 2]` or a
    /// default expression never terminates early). Returns
    /// `(index, found)`.
    fn find_body_or_semi(&self, mut ci: usize, end: usize) -> (usize, bool) {
        let mut depth = 0usize;
        while ci < end {
            if self.is_punct(ci, "(") || self.is_punct(ci, "[") {
                depth += 1;
            } else if self.is_punct(ci, ")") || self.is_punct(ci, "]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && (self.is_punct(ci, "{") || self.is_punct(ci, ";")) {
                return (ci, true);
            }
            ci += 1;
        }
        (end, false)
    }

    /// Byte offset one past a `{…}` body (or the `;`) located via
    /// [`Walker::find_body_or_semi`] from `from`.
    fn span_end_of_group_or_semi(&self, body_open: usize, end: usize) -> usize {
        if body_open >= self.code.len() || body_open >= end {
            return self.tokens.last().map_or(0, |t| t.end);
        }
        if self.is_punct(body_open, "{") {
            let after = self.skip_group(body_open, "{", "}");
            self.tok(after.max(1) - 1).end
        } else {
            self.tok(body_open).end
        }
    }

    /// Code index one past a `{…}` body or `;` at `body_open`.
    fn skip_past_group_or_semi(&self, body_open: usize, end: usize) -> usize {
        if body_open >= end {
            return end;
        }
        if self.is_punct(body_open, "{") {
            let mut after = self.skip_group(body_open, "{", "}");
            // Tuple-struct `);` tail — consume a trailing semicolon.
            if after < end && self.is_punct(after, ";") {
                after += 1;
            }
            after
        } else {
            body_open + 1
        }
    }

    /// Byte offset one past the terminating `;` of a statement-like item
    /// starting at `from` (group-aware: `;` inside `(…)`/`[…]`/`{…}` does
    /// not terminate).
    fn span_end_of_semi(&self, from: usize, end: usize) -> usize {
        let semi = self.find_semi(from, end);
        if semi < end {
            self.tok(semi).end
        } else {
            self.tokens.last().map_or(0, |t| t.end)
        }
    }

    fn skip_past_semi(&self, from: usize, end: usize) -> usize {
        (self.find_semi(from, end) + 1).min(end)
    }

    /// Code index of the terminating top-level `;` of the item at `from`.
    fn find_semi(&self, mut ci: usize, end: usize) -> usize {
        let mut depth = 0usize;
        while ci < end {
            if self.is_punct(ci, "(") || self.is_punct(ci, "[") || self.is_punct(ci, "{") {
                depth += 1;
            } else if self.is_punct(ci, ")") || self.is_punct(ci, "]") || self.is_punct(ci, "}") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && self.is_punct(ci, ";") {
                return ci;
            }
            ci += 1;
        }
        end
    }

    /// Joins the code tokens of `[start, stop)` into a normalized
    /// signature: single spaces, no comments, `_`-prefixed parameter names
    /// de-prefixed so `(&self, _n: u64)` equals `(&self, n: u64)`.
    fn normalized_signature(&self, start: usize, stop: usize) -> String {
        let mut parts: Vec<String> = Vec::new();
        for i in start..stop.min(self.code.len()) {
            // Trailing commas (multi-line parameter lists) are style, not
            // signature.
            if self.is_punct(i, ",") && i + 1 < stop && self.is_punct(i + 1, ")") {
                continue;
            }
            let mut text = self.text(i).to_string();
            if self.tok(i).kind == TokenKind::Ident
                && text.starts_with('_')
                && text.len() > 1
                && i + 1 < stop
                && self.is_punct(i + 1, ":")
                && !is_path_sep(self.tokens, self.code, self.src, i + 2)
                && i > start
                && (self.is_punct(i - 1, "(") || self.is_punct(i - 1, ","))
            {
                text.remove(0);
            }
            parts.push(text);
        }
        normalize_sig_text(&parts.join(" "))
    }

    /// Collects enum variant names at depth 1 of the enum body opening at
    /// `body_open`.
    fn enum_variants(&self, body_open: usize) -> Vec<(String, usize)> {
        let close = self.skip_group(body_open, "{", "}") - 1;
        let mut out = Vec::new();
        let mut ci = body_open + 1;
        while ci < close {
            // Skip variant attributes.
            while self.is_punct(ci, "#") {
                let (_, next) = self.parse_attr(ci);
                ci = next;
            }
            if ci >= close {
                break;
            }
            if self.tok(ci).kind == TokenKind::Ident {
                out.push((self.text(ci).to_string(), self.tok(ci).line));
                ci += 1;
                // Skip payload and discriminant to the separating comma.
                let mut depth = 0usize;
                while ci < close {
                    if self.is_punct(ci, "(") || self.is_punct(ci, "[") || self.is_punct(ci, "{") {
                        depth += 1;
                    } else if self.is_punct(ci, ")")
                        || self.is_punct(ci, "]")
                        || self.is_punct(ci, "}")
                    {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && self.is_punct(ci, ",") {
                        ci += 1;
                        break;
                    }
                    ci += 1;
                }
            } else {
                ci += 1;
            }
        }
        out
    }
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

/// Final cleanup of a joined signature: tighten the punctuation spacing
/// differences that pure token-joining introduces, so signatures built
/// from differently formatted sources compare equal.
fn normalize_sig_text(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(src).expect("parses")
    }

    #[test]
    fn finds_top_level_items_with_visibility() {
        let sf = parse(
            "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\npub struct S;\npub enum E { X, Y }\n",
        );
        let names: Vec<(&str, Vis)> = sf.items.iter().map(|i| (i.name.as_str(), i.vis)).collect();
        assert_eq!(
            names,
            vec![
                ("a", Vis::Pub),
                ("b", Vis::Private),
                ("c", Vis::Scoped),
                ("S", Vis::Pub),
                ("E", Vis::Pub),
            ]
        );
        let e = sf.items.iter().find(|i| i.name == "E").unwrap();
        assert_eq!(e.variants, vec![("X".to_string(), 5), ("Y".to_string(), 5)]);
    }

    #[test]
    fn cfg_gates_inherit_through_modules() {
        let src = "#[cfg(feature = \"sanitize\")]\nmod sanitize {\n    pub(super) fn hook() {}\n}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let sf = parse(src);
        let hook = sf.items.iter().find(|i| i.name == "hook").unwrap();
        assert_eq!(hook.feature_gate("sanitize"), Some(false));
        assert_eq!(hook.mod_path, vec!["sanitize".to_string()]);
        let t = sf.items.iter().find(|i| i.name == "t").unwrap();
        assert!(t.is_test_gated());
        assert!(sf.in_test_item(src.find("fn t").unwrap()));
        assert!(!sf.in_test_item(src.find("fn hook").unwrap()));
    }

    #[test]
    fn not_feature_gate_is_negated() {
        let sf = parse("#[cfg(not(feature = \"sanitize\"))]\nfn verify(_p: &u8) {}\n");
        assert_eq!(sf.items[0].feature_gate("sanitize"), Some(true));
    }

    #[test]
    fn impl_methods_carry_owner_and_signature() {
        let src = "pub struct Counter;\nimpl Counter {\n    pub fn add(&self, n: u64) -> u64 { n }\n}\nimpl std::fmt::Display for Counter {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n}\n";
        let sf = parse(src);
        let add = sf.items.iter().find(|i| i.name == "add").unwrap();
        assert_eq!(add.owner.as_deref(), Some("Counter"));
        assert!(add.signature.as_deref().unwrap().contains("pub fn add"));
        // Trait-impl methods carry no inherent owner.
        let fmt = sf.items.iter().find(|i| i.name == "fmt").unwrap();
        assert_eq!(fmt.owner, None);
        let ti = sf
            .items
            .iter()
            .find(|i| i.kind == ItemKind::TraitImpl)
            .unwrap();
        assert_eq!(ti.name, "Counter");
        assert_eq!(ti.trait_name.as_deref(), Some("Display"));
    }

    #[test]
    fn underscore_parameters_normalize_equal() {
        let a = parse("pub fn add(&self, n: u64) {}\n");
        let b = parse("pub fn add(&self, _n: u64) {}\n");
        assert_eq!(a.items[0].signature, b.items[0].signature);
    }

    #[test]
    fn multi_line_signatures_normalize() {
        let a = parse("pub fn f(\n    a: usize,\n    b: usize,\n) -> usize { a + b }\n");
        let b = parse("pub fn f(a: usize, b: usize) -> usize { a + b }\n");
        assert_eq!(a.items[0].signature, b.items[0].signature);
    }

    #[test]
    fn fn_bodies_are_not_descended_into() {
        let sf = parse(
            "fn outer() {\n    #[cfg(feature = \"x\")]\n    fn inner() {}\n    inner();\n}\n",
        );
        assert_eq!(sf.items.len(), 1);
        assert_eq!(sf.items[0].name, "outer");
    }

    #[test]
    fn const_with_braced_value_terminates_correctly() {
        let sf =
            parse("pub const A: [u8; 2] = [0; 2];\npub const B: u8 = { 1 + 1 };\nfn after() {}\n");
        let names: Vec<&str> = sf.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "after"]);
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let src = "pub enum E {\n    A,\n    B { x: usize, y: usize },\n    #[allow(dead_code)]\n    C(String),\n}\n";
        let sf = parse(src);
        let vars: Vec<&str> = sf.items[0]
            .variants
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(vars, vec!["A", "B", "C"]);
    }

    #[test]
    fn item_spans_include_bodies() {
        let src = "fn a() { let x = \"}\"; }\nfn b() {}\n";
        let sf = parse(src);
        assert_eq!(
            sf.items.len(),
            2,
            "brace inside string must not split items"
        );
        assert!(sf.items[0].span.1 <= sf.items[1].span.0);
    }
}

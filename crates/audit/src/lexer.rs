//! A dependency-free Rust lexer.
//!
//! The lint rules used to run over a line-oriented "stripped" view of the
//! source produced by a hand-rolled comment/string blanker. That pass had
//! structural blind spots — raw strings (`r#"…"#`), nested block comments
//! and byte literals were not understood, so a lint could match inside a
//! string or miss code hidden behind one. This lexer replaces it with a
//! real token stream:
//!
//! * **Lossless.** Tokens carry byte spans that tile the input exactly;
//!   concatenating `&src[t.start..t.end]` over all tokens reproduces the
//!   source byte-for-byte (the golden-corpus test holds this over every
//!   `.rs` file in the workspace).
//! * **Total over valid Rust.** Raw (and raw-byte) strings with any hash
//!   depth, nested block comments, escaped string/char literals, byte
//!   literals, lifetimes vs. char literals (`'a` vs `'a'`), raw
//!   identifiers (`r#type`) and numeric literals (including `1.0e-3f32`
//!   and `0..n` range punctuation) all tokenize correctly.
//! * **Structured failure.** Unterminated strings/comments return a
//!   [`LexError`] with the offending byte offset and line instead of a
//!   silently wrong token stream — the lint pass refuses to run on a file
//!   it cannot faithfully tokenize.
//!
//! The lexer works on `char` boundaries, so multi-byte UTF-8 content in
//! comments, strings and even stray code positions round-trips.

use std::fmt;

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
    /// `// …` through end of line (newline excluded), including `///` and
    /// `//!` doc comments.
    LineComment,
    /// `/* … */`, nested to arbitrary depth, including `/** … */` docs.
    BlockComment,
    /// `"…"` or `b"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##` — any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    CharLit,
    /// `'ident` (including `'static`, `'_`).
    Lifetime,
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct,
}

/// One lexed token: a kind plus the byte span it occupies in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether the token is neither whitespace nor a comment — i.e. it
    /// participates in the program.
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// A tokenization failure (unterminated string/comment/char literal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset where the unterminated construct starts.
    pub offset: usize,
    /// 1-based line of that offset.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Internal cursor over the source characters.
struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off)
    }

    /// Advances one char, tracking line numbers.
    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.pos) {
            if c == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn error(&self, start: usize, start_line: usize, message: &str) -> LexError {
        let _ = start;
        LexError {
            offset: start,
            line: start_line,
            message: message.to_string(),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `src` into a lossless token stream.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated block comments, string literals,
/// raw string literals or char literals. A successful result always tiles
/// the input: the concatenated token texts equal `src`.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let start = cur.offset();
        let line = cur.line;
        let kind = match c {
            c if c.is_whitespace() => {
                while cur.peek(0).is_some_and(char::is_whitespace) {
                    cur.bump();
                }
                TokenKind::Whitespace
            }
            '/' if cur.peek(1) == Some('/') => {
                while cur.peek(0).is_some_and(|c| c != '\n') {
                    cur.bump();
                }
                TokenKind::LineComment
            }
            '/' if cur.peek(1) == Some('*') => {
                lex_block_comment(&mut cur)?;
                TokenKind::BlockComment
            }
            '"' => {
                lex_string(&mut cur)?;
                TokenKind::Str
            }
            'b' if cur.peek(1) == Some('"') => {
                cur.bump(); // b
                lex_string(&mut cur)?;
                TokenKind::Str
            }
            'b' if cur.peek(1) == Some('\'') => {
                cur.bump(); // b
                lex_char(&mut cur)?;
                TokenKind::CharLit
            }
            'r' | 'b' if is_raw_string_start(&cur) => {
                lex_raw_string(&mut cur)?;
                TokenKind::RawStr
            }
            'r' if cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) => {
                // Raw identifier: r#type.
                cur.bump(); // r
                cur.bump(); // #
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokenKind::Ident
            }
            '\'' => lex_char_or_lifetime(&mut cur)?,
            c if is_ident_start(c) => {
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                lex_number(&mut cur);
                TokenKind::Number
            }
            _ => {
                cur.bump();
                TokenKind::Punct
            }
        };
        out.push(Token {
            kind,
            start,
            end: cur.offset(),
            line,
        });
    }
    Ok(out)
}

/// Whether the cursor sits on `r"`, `r#…#"`, `br"` or `br#…#"` — a raw (or
/// raw byte) string opener rather than a raw identifier or plain ident.
fn is_raw_string_start(cur: &Cursor<'_>) -> bool {
    let mut i = 1;
    if cur.peek(0) == Some('b') {
        if cur.peek(1) != Some('r') {
            return false;
        }
        i = 2;
    }
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    cur.peek(i) == Some('"')
}

/// Consumes a nested block comment (cursor on the opening `/`).
fn lex_block_comment(cur: &mut Cursor<'_>) -> Result<(), LexError> {
    let start = cur.offset();
    let line = cur.line;
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
            }
            (Some(_), _) => cur.bump(),
            (None, _) => {
                return Err(cur.error(start, line, "unterminated block comment"));
            }
        }
    }
    Ok(())
}

/// Consumes a `"…"` literal with escapes (cursor on the opening quote).
fn lex_string(cur: &mut Cursor<'_>) -> Result<(), LexError> {
    let start = cur.offset();
    let line = cur.line;
    cur.bump(); // "
    loop {
        match cur.peek(0) {
            Some('\\') => {
                cur.bump();
                cur.bump(); // the escaped char (any, including " and \)
            }
            Some('"') => {
                cur.bump();
                return Ok(());
            }
            Some(_) => cur.bump(),
            None => return Err(cur.error(start, line, "unterminated string literal")),
        }
    }
}

/// Consumes `r"…"` / `r#"…"#` / `br##"…"##` (cursor on `r` or `b`).
fn lex_raw_string(cur: &mut Cursor<'_>) -> Result<(), LexError> {
    let start = cur.offset();
    let line = cur.line;
    if cur.peek(0) == Some('b') {
        cur.bump();
    }
    cur.bump(); // r
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening "
    loop {
        match cur.peek(0) {
            Some('"') => {
                // Candidate close: `"` followed by `hashes` hash marks.
                let mut all = true;
                for i in 0..hashes {
                    if cur.peek(1 + i) != Some('#') {
                        all = false;
                        break;
                    }
                }
                cur.bump(); // "
                if all {
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return Ok(());
                }
            }
            Some(_) => cur.bump(),
            None => return Err(cur.error(start, line, "unterminated raw string literal")),
        }
    }
}

/// Consumes `'x'` / `'\n'` (cursor on the opening quote).
fn lex_char(cur: &mut Cursor<'_>) -> Result<(), LexError> {
    let start = cur.offset();
    let line = cur.line;
    cur.bump(); // '
    match cur.peek(0) {
        Some('\\') => {
            cur.bump(); // backslash
            cur.bump(); // escape head
                        // Multi-char escapes: \x7f, \u{…}.
            while cur.peek(0).is_some_and(|c| c != '\'') {
                cur.bump();
            }
        }
        Some(_) => cur.bump(),
        None => return Err(cur.error(start, line, "unterminated char literal")),
    }
    if cur.peek(0) == Some('\'') {
        cur.bump();
        Ok(())
    } else {
        Err(cur.error(start, line, "unterminated char literal"))
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime); cursor on the quote.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    match (cur.peek(1), cur.peek(2)) {
        // An escape is always a char literal.
        (Some('\\'), _) => {
            lex_char(cur)?;
            Ok(TokenKind::CharLit)
        }
        // 'x' — one char closed by a quote.
        (Some(_), Some('\'')) => {
            lex_char(cur)?;
            Ok(TokenKind::CharLit)
        }
        // 'ident — a lifetime (no closing quote).
        (Some(c), _) if is_ident_start(c) => {
            cur.bump(); // '
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            Ok(TokenKind::Lifetime)
        }
        _ => {
            let start = cur.offset();
            let line = cur.line;
            Err(cur.error(start, line, "unterminated char literal"))
        }
    }
}

/// Consumes a numeric literal (cursor on the first digit). Range
/// punctuation stays out: `0..n` lexes as `0`, `.`, `.`, `n`.
fn lex_number(cur: &mut Cursor<'_>) {
    // Radix prefixes take everything alphanumeric (0xDEAD_beef, 0b1010).
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        cur.bump();
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        cur.bump();
    }
    // Fractional part only when followed by a digit (so `1.max(2)` and
    // `0..n` keep their dots).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, digit) = (cur.peek(1), cur.peek(2));
        let has_exp = match sign {
            Some(c) if c.is_ascii_digit() => true,
            Some('+' | '-') => digit.is_some_and(|c| c.is_ascii_digit()),
            _ => false,
        };
        if has_exp {
            cur.bump(); // e
            if matches!(cur.peek(0), Some('+' | '-')) {
                cur.bump();
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
    }
    // Type suffix (f32, u64, usize…).
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
}

/// Reconstructs the source from a token stream — the round-trip identity
/// the golden-corpus test asserts.
pub fn round_trip(src: &str, tokens: &[Token]) -> String {
    let mut out = String::with_capacity(src.len());
    for t in tokens {
        out.push_str(t.text(src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn round_trips_basic_source() {
        let src = "fn main() {\n    let x = 1; // done\n}\n";
        let toks = lex(src).unwrap();
        assert_eq!(round_trip(src, &toks), src);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        for src in [
            "let s = r\"a\\b\";",
            "let s = r#\"quote \" inside\"#;",
            "let s = r##\"sharp \"# inside\"##;",
            "let s = br#\"bytes\"#;",
        ] {
            let toks = lex(src).unwrap();
            assert_eq!(round_trip(src, &toks), src, "{src}");
            assert!(
                toks.iter().any(|t| t.kind == TokenKind::RawStr),
                "{src} should contain a raw string token"
            );
        }
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let ks = kinds("let r#type = 1;");
        assert!(ks.contains(&(TokenKind::Ident, "r#type".to_string())));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still outer */ fn f() {}";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text(src), "/* outer /* inner */ still outer */");
        assert_eq!(round_trip(src, &toks), src);
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(lex("/* never closed").is_err());
        assert!(lex("let s = \"open").is_err());
        assert!(lex("let s = r#\"open\"").is_err());
        // `'x` at EOF is a valid lifetime token; an escape with no
        // closing quote is not.
        assert!(lex("let c = '\\n").is_err());
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) -> char { 'b' }");
        assert!(ks.contains(&(TokenKind::Lifetime, "'a".to_string())));
        assert!(ks.contains(&(TokenKind::CharLit, "'b'".to_string())));
        let ks = kinds("let n = '\\n'; let s: &'static str = \"\";");
        assert!(ks.contains(&(TokenKind::CharLit, "'\\n'".to_string())));
        assert!(ks.contains(&(TokenKind::Lifetime, "'static".to_string())));
    }

    #[test]
    fn byte_literals() {
        let ks = kinds("let b = b'x'; let s = b\"bytes\\n\";");
        assert!(ks.contains(&(TokenKind::CharLit, "b'x'".to_string())));
        assert!(ks.contains(&(TokenKind::Str, "b\"bytes\\n\"".to_string())));
    }

    #[test]
    fn numbers_and_ranges() {
        let ks = kinds("let x = 1.0e-3f32 + 0xFF; for i in 0..n {}");
        assert!(ks.contains(&(TokenKind::Number, "1.0e-3f32".to_string())));
        assert!(ks.contains(&(TokenKind::Number, "0xFF".to_string())));
        // `0..n` keeps its dots as punctuation.
        assert!(ks.contains(&(TokenKind::Number, "0".to_string())));
        let src = "0..n";
        let toks = lex(src).unwrap();
        assert_eq!(round_trip(src, &toks), src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Punct).count(),
            2
        );
    }

    #[test]
    fn method_call_on_number_keeps_dot() {
        let src = "let x = 1.max(2);";
        let toks = lex(src).unwrap();
        assert_eq!(round_trip(src, &toks), src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "max"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = \"line\nbreak\";\n/* b\nc */ unsafe {}\n";
        let toks = lex(src).unwrap();
        let unsafe_tok = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident && t.text(src) == "unsafe")
            .unwrap();
        assert_eq!(unsafe_tok.line, 4);
    }

    #[test]
    fn code_inside_strings_is_a_single_token() {
        let src = "let s = \"unsafe { thread::spawn }\";";
        let toks = lex(src).unwrap();
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text(src) == "spawn"));
    }

    #[test]
    fn multibyte_utf8_round_trips() {
        let src = "// ∂f/∂x ≈ 0\nlet π = \"π≈3.14\"; /* 日本語 */\n";
        let toks = lex(src).unwrap();
        assert_eq!(round_trip(src, &toks), src);
    }
}

//! The central rule registry.
//!
//! Every lint the workspace enforces is declared here exactly once, with
//! a stable numeric id, the slug used in findings and suppression
//! comments, a one-line doc string, and the PR that introduced it.
//! Nothing else in the crate refers to rules by ordinal — comments,
//! CHANGES entries and CI summaries all key on the slug, and
//! `megablocks-audit -- lint --list` renders this table.

/// One registered lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Stable numeric id (historical ordering; never reused).
    pub id: u8,
    /// The slug used in findings and `// audit: allow(<slug>)` comments.
    pub slug: &'static str,
    /// One-line description of what the rule enforces.
    pub doc: &'static str,
    /// The PR that introduced the rule.
    pub since: &'static str,
}

/// Every rule the workspace enforces, in id order.
pub const RULES: &[Rule] = &[
    Rule {
        id: 1,
        slug: "safety-comment",
        doc: "every `unsafe` block carries a `// SAFETY:` comment on the same \
              line or in the contiguous comment block above it",
        since: "PR 2",
    },
    Rule {
        id: 2,
        slug: "hot-path-panic",
        doc: "`.unwrap()` / `.expect(` are banned from the non-test portions \
              of the kernel hot-path files",
        since: "PR 2",
    },
    Rule {
        id: 3,
        slug: "try-twin",
        doc: "every panicking public sparse op in crates/sparse/src/ops.rs \
              has a fallible `try_*` twin",
        since: "PR 2",
    },
    Rule {
        id: 4,
        slug: "telemetry-parity",
        doc: "each telemetry enabled/disabled implementation pair exposes \
              identical public items, so flipping the feature never changes \
              what compiles",
        since: "PR 2",
    },
    Rule {
        id: 5,
        slug: "raw-parallelism",
        doc: "raw thread primitives (`thread::spawn` & co.) are banned \
              outside crates/exec; kernels launch through the worker pool",
        since: "PR 3",
    },
    Rule {
        id: 6,
        slug: "fault-site-telemetry",
        doc: "every registered fault-injection site declares scheme-conformant \
              lifecycle counters and is referenced outside the catalogue",
        since: "PR 4",
    },
    Rule {
        id: 7,
        slug: "feature-gate-parity",
        doc: "every `telemetry`/`sanitize`/`chaos`-gated item has a \
              same-signature counterpart in the opposite cfg branch",
        since: "PR 7",
    },
    Rule {
        id: 8,
        slug: "error-exhaustive",
        doc: "every `SparseError`/`AuditError`/`EpError` variant is \
              constructed somewhere outside tests",
        since: "PR 7",
    },
    Rule {
        id: 9,
        slug: "unsafe-safety-format",
        doc: "SAFETY comments state the invariant being relied on (at least \
              four words after the colon), not just that one exists",
        since: "PR 7",
    },
    Rule {
        id: 10,
        slug: "suppression-justification",
        doc: "`// audit: allow(<rule>)` suppressions name a registered rule \
              and carry a `-- <justification>` tail",
        since: "PR 7",
    },
    Rule {
        id: 11,
        slug: "kernel-dispatch",
        doc: "raw GEMM inner loops (`+=` of a product inside triple-nested \
              `for` loops) are banned in the tensor and sparse crates \
              outside crates/tensor/src/kernel — compute goes through \
              `block_gemm` so every path honors the backend registry",
        since: "PR 8",
    },
];

/// Looks a rule up by slug.
pub fn rule_by_slug(slug: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.slug == slug)
}

/// Renders the registry as the table shown by `lint --list`.
pub fn render_rule_list() -> String {
    let mut out = String::new();
    out.push_str("registered lint rules:\n");
    for r in RULES {
        out.push_str(&format!(
            "  {:>2}  {:<26} {:<6} {}\n",
            r.id,
            r.slug,
            r.since,
            r.doc.split_whitespace().collect::<Vec<_>>().join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_slugs_are_unique_and_ordered() {
        for w in RULES.windows(2) {
            assert!(w[0].id < w[1].id, "ids must be strictly increasing");
        }
        let mut slugs: Vec<&str> = RULES.iter().map(|r| r.slug).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), RULES.len(), "slugs must be unique");
    }

    #[test]
    fn lookup_by_slug() {
        assert_eq!(rule_by_slug("try-twin").unwrap().id, 3);
        assert!(rule_by_slug("no-such-rule").is_none());
    }

    #[test]
    fn list_mentions_every_slug() {
        let list = render_rule_list();
        for r in RULES {
            assert!(list.contains(r.slug), "missing {}", r.slug);
        }
    }
}

//! `megablocks-audit` CLI: run the workspace lint pass.
//!
//! ```text
//! cargo run -p megablocks-audit -- lint [--json] [ROOT]
//! cargo run -p megablocks-audit -- lint --list
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any lint fires, 2 on
//! usage or I/O errors. `--json` switches to the machine-readable report
//! (total, per-rule counts, findings) consumed by CI; `--list` prints the
//! rule registry and exits 0.

use std::path::PathBuf;
use std::process::ExitCode;

use megablocks_audit::{findings_to_json, render_rule_list, run_all_lints, workspace_root, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json = false;
            let mut list = false;
            let mut root: Option<PathBuf> = None;
            for arg in &args[1..] {
                match arg.as_str() {
                    "--json" => json = true,
                    "--list" => list = true,
                    other if other.starts_with('-') => {
                        eprintln!("unknown flag `{other}`\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                    path => root = Some(PathBuf::from(path)),
                }
            }
            if list {
                print!("{}", render_rule_list());
                return ExitCode::SUCCESS;
            }
            lint(root, json)
        }
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
megablocks-audit: static correctness checks for the MegaBlocks-RS workspace

USAGE:
    megablocks-audit lint [--json] [ROOT]   run all lints (ROOT defaults to the workspace)
    megablocks-audit lint --list            print the rule registry and exit

FLAGS:
    --json    machine-readable report: {total, counts per rule, findings}
    --list    render the central RULES registry (id, slug, since, doc)

Rules are registered centrally; see `lint --list` for the authoritative
table. Suppress a finding with a justified comment on (or directly above)
the offending line:

    // audit: allow(<rule-slug>) -- <justification>
";

fn lint(root: Option<PathBuf>, json: bool) -> ExitCode {
    let root = root.unwrap_or_else(workspace_root);
    match run_all_lints(&root) {
        Err(e) => {
            eprintln!(
                "megablocks-audit: cannot analyze workspace at {}: {e}",
                root.display()
            );
            ExitCode::from(2)
        }
        Ok(findings) => {
            if json {
                println!("{}", findings_to_json(&findings));
            } else if findings.is_empty() {
                println!("megablocks-audit: workspace clean ({} rules)", RULES.len());
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("megablocks-audit: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

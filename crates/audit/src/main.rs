//! `megablocks-audit` CLI: run the workspace lint pass.
//!
//! ```text
//! cargo run -p megablocks-audit -- lint [ROOT]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any lint fires, 2 on
//! usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use megablocks_audit::{run_all_lints, workspace_root, HOT_PATHS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.get(1).map(PathBuf::from)),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::from(if args.is_empty() { 2 } else { 0 })
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
megablocks-audit: static correctness checks for the MegaBlocks-RS workspace

USAGE:
    megablocks-audit lint [ROOT]    run all lints (ROOT defaults to the workspace)

RULES:
    safety-comment     every `unsafe` block carries a `// SAFETY:` justification
    hot-path-panic     no `.unwrap()` / `.expect(` in kernel hot paths
    try-twin           every public sparse op has a fallible `try_*` twin
    telemetry-parity   telemetry enabled/disabled expose identical public APIs
    raw-parallelism    no thread spawning outside crates/exec (the runtime owns it)
    fault-site-telemetry  every registered fault-injection site declares
                       resilience.{injected,detected,recovered}.<name> counters
                       and is wired somewhere outside the catalogue
";

fn lint(root: Option<PathBuf>) -> ExitCode {
    let root = root.unwrap_or_else(workspace_root);
    match run_all_lints(&root) {
        Err(e) => {
            eprintln!(
                "megablocks-audit: cannot read workspace at {}: {e}",
                root.display()
            );
            ExitCode::from(2)
        }
        Ok(findings) if findings.is_empty() => {
            println!(
                "megablocks-audit: workspace clean ({} hot-path files, 6 rules)",
                HOT_PATHS.len()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("megablocks-audit: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
    }
}

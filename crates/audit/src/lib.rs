//! Source-level lints for the MegaBlocks-RS workspace.
//!
//! This crate is the static half of the correctness tooling (the dynamic
//! half — the topology sanitizer and the launch-plan race sanitizer —
//! lives behind the `sanitize` feature in `megablocks_sparse::audit` and
//! `megablocks_exec`). All analysis runs on a real token model rather
//! than line regexes: [`lexer`] produces a lossless token stream (raw
//! strings, nested block comments, lifetimes vs. char literals) and
//! [`model`] parses it into items with visibility, normalized signatures
//! and per-item `cfg`/feature-gate attribution. Matches inside string
//! literals or comments are therefore structurally impossible, and
//! test-only code is recognized by its `#[cfg(test)]` gate rather than
//! by line position.
//!
//! The enforced rules live in the central [`rules::RULES`] registry —
//! run `cargo run -p megablocks-audit -- lint --list` for the table, and
//! see each rule's doc string there for what it checks. Briefly:
//! `safety-comment`, `hot-path-panic`, `try-twin`, `telemetry-parity`,
//! `raw-parallelism` and `fault-site-telemetry` port the original
//! line-based lints onto the token model; `feature-gate-parity`,
//! `error-exhaustive` and `unsafe-safety-format` are only expressible on
//! it; `suppression-justification` governs the
//! `// audit: allow(<rule>) -- <justification>` escape hatch.
//!
//! Run everything with `cargo run -p megablocks-audit -- lint`
//! (`--json` for machine-readable output).

#![deny(missing_docs)]

pub mod lexer;
pub mod model;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{Token, TokenKind};
use model::{Gate, Item, ItemKind, SourceFile};
pub use rules::{render_rule_list, rule_by_slug, Rule, RULES};

/// Kernel hot-path files where `.unwrap()` / `.expect(` are banned
/// (workspace-relative).
pub const HOT_PATHS: &[&str] = &[
    "crates/sparse/src/ops.rs",
    "crates/tensor/src/matmul.rs",
    "crates/tensor/src/kernel/mod.rs",
    "crates/tensor/src/kernel/scalar.rs",
    "crates/tensor/src/kernel/tiled.rs",
    "crates/core/src/permute.rs",
];

/// The file that must provide a `try_*` twin for every public sparse op.
pub const SPARSE_OPS: &str = "crates/sparse/src/ops.rs";

/// The feature-gated telemetry implementation pairs that must agree
/// (enabled variant first, its no-op twin second).
pub const TELEMETRY_PAIRS: &[(&str, &str)] = &[
    (
        "crates/telemetry/src/enabled.rs",
        "crates/telemetry/src/disabled.rs",
    ),
    (
        "crates/telemetry/src/trace_enabled.rs",
        "crates/telemetry/src/trace_disabled.rs",
    ),
];

/// The one directory allowed to use raw thread primitives: the execution
/// runtime owns every spawn in the workspace (workspace-relative prefix).
pub const EXEC_CRATE: &str = "crates/exec/";

/// The one directory allowed to hand-roll GEMM inner loops: the
/// microkernel module behind `block_gemm` (workspace-relative prefix).
/// The `kernel-dispatch` rule bans raw inner loops elsewhere in the
/// tensor and sparse crates.
pub const KERNEL_DIR: &str = "crates/tensor/src/kernel/";

/// The fault-injection site catalogue the `fault-site-telemetry` rule
/// parses and cross-references.
pub const FAULT_SITES: &str = "crates/resilience/src/sites.rs";

/// The cfg features whose gated items the `feature-gate-parity` rule
/// requires to have opposite-branch counterparts. (The telemetry crate's
/// internal `enabled` feature is covered by the dedicated
/// `telemetry-parity` file-pair rule instead.)
pub const GATED_FEATURES: &[&str] = &["telemetry", "sanitize", "chaos"];

/// The workspace error enums whose variants the `error-exhaustive` rule
/// requires to be constructed outside tests.
pub const AUDITED_ERROR_ENUMS: &[&str] = &["SparseError", "AuditError", "EpError"];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line, or 0 when the finding concerns the file as a whole.
    pub line: usize,
    /// The violated rule's slug (see [`rules::RULES`]).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// One workspace source file: its path, raw text, and parsed model.
#[derive(Debug)]
pub struct WorkspaceFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw source text.
    pub src: String,
    /// Lexed and item-parsed model of `src`.
    pub sf: SourceFile,
}

impl WorkspaceFile {
    /// Lexes and parses `src` under the given workspace-relative name.
    ///
    /// # Errors
    ///
    /// Returns the lexer's error when the source cannot be tokenized.
    pub fn new(
        rel: impl Into<String>,
        src: impl Into<String>,
    ) -> Result<WorkspaceFile, lexer::LexError> {
        let src = src.into();
        let sf = SourceFile::parse(&src)?;
        Ok(WorkspaceFile {
            rel: rel.into(),
            src,
            sf,
        })
    }

    /// Indices (into `sf.tokens`) of the code tokens, in order.
    fn code(&self) -> Vec<usize> {
        (0..self.sf.tokens.len())
            .filter(|&i| self.sf.tokens[i].is_code())
            .collect()
    }

    /// The file's code reconstructed without comments, strings or char
    /// literals (their token texts replaced by a placeholder), tokens
    /// separated by spaces. Used as the cross-reference corpus for the
    /// `fault-site-telemetry` rule.
    pub fn code_only(&self) -> String {
        let mut out = String::with_capacity(self.src.len());
        for t in &self.sf.tokens {
            match t.kind {
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment => {}
                TokenKind::Str | TokenKind::RawStr | TokenKind::CharLit => out.push_str("\"\" "),
                _ => {
                    out.push_str(t.text(&self.src));
                    out.push(' ');
                }
            }
        }
        out
    }
}

/// A borrowed, code-token-only view over a [`WorkspaceFile`], with the
/// pattern-matching helpers the token-scanning rules share.
struct CodeView<'a> {
    src: &'a str,
    tokens: &'a [Token],
    code: Vec<usize>,
}

impl<'a> CodeView<'a> {
    fn new(wf: &'a WorkspaceFile) -> CodeView<'a> {
        CodeView {
            src: &wf.src,
            tokens: &wf.sf.tokens,
            code: wf.code(),
        }
    }

    fn len(&self) -> usize {
        self.code.len()
    }

    fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    fn text(&self, ci: usize) -> &str {
        self.tok(ci).text(self.src)
    }

    fn is_ident(&self, ci: usize, w: &str) -> bool {
        ci < self.len() && self.tok(ci).kind == TokenKind::Ident && self.text(ci) == w
    }

    fn is_punct(&self, ci: usize, p: &str) -> bool {
        ci < self.len() && self.tok(ci).kind == TokenKind::Punct && self.text(ci) == p
    }

    /// Whether code tokens `ci` and `ci + 1` form an adjacent `::`.
    fn double_colon(&self, ci: usize) -> bool {
        ci + 1 < self.len()
            && self.is_punct(ci, ":")
            && self.is_punct(ci + 1, ":")
            && self.tok(ci).end == self.tok(ci + 1).start
    }
}

/// The workspace root, derived from this crate's manifest location
/// (`crates/audit` → two levels up). Valid wherever the workspace is
/// checked out, regardless of the invoking directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit always sits two levels below the workspace root")
        .to_path_buf()
}

/// Loads, lexes and parses every `.rs` file under `root/crates`.
///
/// # Errors
///
/// Returns an error if a file cannot be read, or cannot be lexed — the
/// lint refuses to pass vacuously on a tree it cannot analyze.
pub fn load_workspace(root: &Path) -> io::Result<Vec<WorkspaceFile>> {
    let mut out = Vec::new();
    for file in rust_sources(&root.join("crates"))? {
        let rel = rel_path(root, &file);
        let src = fs::read_to_string(&file)?;
        let wf = WorkspaceFile::new(rel.clone(), src)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{rel}: {e}")))?;
        out.push(wf);
    }
    Ok(out)
}

/// Runs every registered lint over the workspace at `root`, applies
/// `// audit: allow(...)` suppressions, and returns the surviving
/// findings sorted by file and line.
///
/// # Errors
///
/// Returns an error if a workspace source file cannot be read or lexed —
/// the lint refuses to pass vacuously on an unreadable tree.
pub fn run_all_lints(root: &Path) -> io::Result<Vec<Finding>> {
    let files = load_workspace(root)?;
    let mut findings = Vec::new();
    let mut suppressions = Vec::new();

    for wf in &files {
        // `safety-comment` + `unsafe-safety-format`, across every crate.
        // The audit crate itself is skipped: its tests embed
        // deliberately-broken fixtures.
        if !wf.rel.starts_with("crates/audit/") {
            findings.extend(check_unsafe_safety(wf));
        }

        // `hot-path-panic`, on the kernel hot-path files.
        if HOT_PATHS.contains(&wf.rel.as_str()) {
            findings.extend(check_hot_path_panics(wf));
        }

        // `raw-parallelism`: raw thread primitives only inside the
        // execution runtime. Tests and benches are exempt
        // (determinism/stress suites drive the pool from OS threads
        // deliberately), as is the audit crate (fixture literals).
        if !wf.rel.starts_with(EXEC_CRATE)
            && !wf.rel.starts_with("crates/audit/")
            && !wf.rel.contains("/tests/")
            && !wf.rel.contains("/benches/")
        {
            findings.extend(check_raw_parallelism(wf));
        }

        // `kernel-dispatch`: raw GEMM inner loops only inside the
        // microkernel module — tensor/sparse compute funnels through
        // `block_gemm` so the backend registry governs every path.
        // Tests and benches are exempt (reference implementations are
        // exactly what parity suites hand-roll).
        if (wf.rel.starts_with("crates/tensor/") || wf.rel.starts_with("crates/sparse/"))
            && !wf.rel.starts_with(KERNEL_DIR)
            && !wf.rel.contains("/tests/")
            && !wf.rel.contains("/benches/")
        {
            findings.extend(check_kernel_dispatch(wf));
        }

        // `feature-gate-parity`, across every crate except the audit
        // crate's own fixtures.
        if !wf.rel.starts_with("crates/audit/") {
            findings.extend(check_feature_gate_parity(wf));
        }

        // `try-twin`, on the public sparse ops file.
        if wf.rel == SPARSE_OPS {
            findings.extend(check_try_twins(wf));
        }

        // Suppression comments: collect where they apply, and lint their
        // own form (`suppression-justification`).
        let (sup, sup_findings) = collect_suppressions(wf);
        suppressions.extend(sup);
        findings.extend(sup_findings);
    }

    // `telemetry-parity`: the feature-gated implementation file pairs.
    for pair in TELEMETRY_PAIRS {
        let enabled = find_file(&files, pair.0)?;
        let disabled = find_file(&files, pair.1)?;
        findings.extend(check_telemetry_parity(*pair, enabled, disabled));
    }

    // `fault-site-telemetry`: the catalogue follows the naming scheme and
    // every registered site is wired somewhere.
    let sites_wf = find_file(&files, FAULT_SITES)?;
    let sites = parse_fault_sites(&sites_wf.src);
    findings.extend(check_fault_site_counters(FAULT_SITES, &sites));
    let mut other_sources = String::new();
    for wf in &files {
        if wf.rel == FAULT_SITES || wf.rel.starts_with("crates/audit/") {
            continue;
        }
        other_sources.push_str(&wf.code_only());
        other_sources.push('\n');
    }
    findings.extend(check_fault_site_references(
        FAULT_SITES,
        &sites,
        &other_sources,
    ));

    // `error-exhaustive`: every audited error variant is constructed
    // outside tests, somewhere in the workspace.
    findings.extend(check_error_exhaustive(&files));

    // Apply suppressions (file-level findings, line 0, are not
    // suppressible; neither is the suppression lint itself).
    findings.retain(|f| {
        f.line == 0
            || f.rule == "suppression-justification"
            || !suppressions
                .iter()
                .any(|s| s.file == f.file && s.slug == f.rule && s.applies_line == f.line)
    });

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn find_file<'a>(files: &'a [WorkspaceFile], rel: &str) -> io::Result<&'a WorkspaceFile> {
    files.iter().find(|wf| wf.rel == rel).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("missing workspace file {rel}"),
        )
    })
}

// ---------------------------------------------------------------------------
// safety-comment + unsafe-safety-format
// ---------------------------------------------------------------------------

/// `safety-comment` + `unsafe-safety-format`: every `unsafe` keyword in
/// code must carry a `// SAFETY:` comment on the same line or in the
/// contiguous comment block directly above it, and the comment must state
/// the invariant being relied on (at least [`MIN_SAFETY_WORDS`] words
/// after the colon), not merely exist.
pub fn check_unsafe_safety(wf: &WorkspaceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = &wf.sf.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text(&wf.src) != "unsafe" {
            continue;
        }
        // Gather candidate justification comments: same-line comments plus
        // the contiguous comment block immediately above (no blank line or
        // code token in between).
        let mut comments: Vec<&str> = Vec::new();
        // Contiguous block above, collected top-down.
        let mut above: Vec<&str> = Vec::new();
        let mut j = i;
        while j > 0 {
            j -= 1;
            let p = &tokens[j];
            // Tokens on the `unsafe` line itself (e.g. the `let pat =` of
            // `let x = unsafe { … }`) don't end the block: the comment
            // above the statement's line justifies the whole statement.
            if p.line == t.line {
                if p.is_comment() {
                    above.push(p.text(&wf.src));
                }
                continue;
            }
            match p.kind {
                TokenKind::Whitespace => {
                    if p.text(&wf.src).matches('\n').count() >= 2 {
                        break; // blank line ends the block
                    }
                }
                TokenKind::LineComment | TokenKind::BlockComment => {
                    above.push(p.text(&wf.src));
                }
                _ => {
                    // Code on the same line as a preceding comment means
                    // that comment is a trailing comment of other code;
                    // stop the walk.
                    break;
                }
            }
        }
        above.reverse();
        comments.extend(above);
        // Same-line comments (trailing the unsafe block's first line).
        for n in tokens.iter().skip(i + 1) {
            if n.line > t.line {
                break;
            }
            if n.is_comment() {
                comments.push(n.text(&wf.src));
            }
        }

        let safety_at = comments.iter().position(|c| c.contains("SAFETY:"));
        match safety_at {
            None => findings.push(Finding {
                file: wf.rel.clone(),
                line: t.line,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment justifying it".to_string(),
            }),
            Some(at) => {
                // The justification is everything after `SAFETY:` in that
                // comment plus any continuation comment lines below it.
                let first = comments[at];
                let tail = &first[first.find("SAFETY:").expect("just matched") + "SAFETY:".len()..];
                let mut text = comment_words(tail);
                for c in comments.iter().skip(at + 1) {
                    text.extend(comment_words(c));
                }
                if text.len() < MIN_SAFETY_WORDS {
                    findings.push(Finding {
                        file: wf.rel.clone(),
                        line: t.line,
                        rule: "unsafe-safety-format",
                        message: format!(
                            "SAFETY comment must state the invariant relied on \
                             (found only `{}`; want >= {MIN_SAFETY_WORDS} words)",
                            text.join(" ")
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Minimum number of words a SAFETY justification must contain after the
/// colon for `unsafe-safety-format` to accept it.
pub const MIN_SAFETY_WORDS: usize = 4;

/// The alphanumeric words of a comment's text (comment markers stripped).
fn comment_words(c: &str) -> Vec<String> {
    c.split(|ch: char| !(ch.is_alphanumeric() || ch == '_' || ch == '\''))
        .filter(|w| w.chars().any(char::is_alphanumeric))
        .map(str::to_string)
        .collect()
}

// ---------------------------------------------------------------------------
// hot-path-panic
// ---------------------------------------------------------------------------

/// `hot-path-panic`: `.unwrap()` / `.expect(` are banned from the
/// non-test portion of a kernel hot-path file. Test-gated items (found
/// structurally via their `#[cfg(test)]` attribution) are exempt.
pub fn check_hot_path_panics(wf: &WorkspaceFile) -> Vec<Finding> {
    let cv = CodeView::new(wf);
    let mut findings = Vec::new();
    for i in 1..cv.len() {
        let (name, pat) = match cv.text(i) {
            "unwrap" => ("unwrap", ".unwrap()"),
            "expect" => ("expect", ".expect("),
            _ => continue,
        };
        let _ = name;
        if cv.tok(i).kind != TokenKind::Ident || !cv.is_punct(i - 1, ".") {
            continue;
        }
        if wf.sf.in_test_item(cv.tok(i).start) {
            continue;
        }
        findings.push(Finding {
            file: wf.rel.clone(),
            line: cv.tok(i).line,
            rule: "hot-path-panic",
            message: format!("`{pat}` in a kernel hot path; propagate the error instead"),
        });
    }
    findings
}

// ---------------------------------------------------------------------------
// try-twin
// ---------------------------------------------------------------------------

/// `try-twin`: every top-level `pub fn` in the sparse ops file that is
/// not itself a `try_*` function must have a `try_*` twin.
pub fn check_try_twins(wf: &WorkspaceFile) -> Vec<Finding> {
    let names: Vec<(usize, &str)> = wf
        .sf
        .items
        .iter()
        .filter(|it| {
            it.kind == ItemKind::Fn
                && it.vis == model::Vis::Pub
                && it.owner.is_none()
                && it.mod_path.is_empty()
                && !it.is_test_gated()
        })
        .map(|it| (it.line, it.name.as_str()))
        .collect();
    let mut findings = Vec::new();
    for (line, name) in &names {
        if name.starts_with("try_") {
            continue;
        }
        let twin = format!("try_{name}");
        if !names.iter().any(|(_, n)| *n == twin) {
            findings.push(Finding {
                file: wf.rel.clone(),
                line: *line,
                rule: "try-twin",
                message: format!("public sparse op `{name}` has no fallible `{twin}` twin"),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// telemetry-parity
// ---------------------------------------------------------------------------

/// `telemetry-parity`: the enabled and disabled implementations of a
/// feature-gated pair (`pair` names the two files, enabled first) must
/// expose the same public items with the same signatures.
pub fn check_telemetry_parity(
    pair: (&str, &str),
    enabled: &WorkspaceFile,
    disabled: &WorkspaceFile,
) -> Vec<Finding> {
    let e = public_parity_items(&enabled.sf);
    let d = public_parity_items(&disabled.sf);
    let mut findings = Vec::new();
    for item in &e {
        if !d.contains(item) {
            findings.push(parity_finding(pair.1, item, "missing or differs"));
        }
    }
    for item in &d {
        if !e.contains(item) {
            findings.push(parity_finding(pair.0, item, "missing or differs"));
        }
    }
    findings
}

fn parity_finding(file: &str, item: &str, what: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line: 0,
        rule: "telemetry-parity",
        message: format!("public item `{item}` {what} in this implementation"),
    }
}

/// Normalized public item keys for the parity rules: top-level `pub`
/// structs and enums by name, top-level `pub fn`s by signature, and
/// inherent-impl `pub fn`s by `Owner::signature`.
fn public_parity_items(sf: &SourceFile) -> Vec<String> {
    let mut items = Vec::new();
    for it in &sf.items {
        if it.vis != model::Vis::Pub || it.is_test_gated() {
            continue;
        }
        match it.kind {
            ItemKind::Struct if it.mod_path.is_empty() => {
                items.push(format!("struct {}", it.name));
            }
            ItemKind::Enum if it.mod_path.is_empty() => {
                items.push(format!("enum {}", it.name));
            }
            ItemKind::Fn => {
                let sig = it.signature.clone().unwrap_or_default();
                match &it.owner {
                    Some(owner) => items.push(format!("{owner}::{sig}")),
                    None if it.mod_path.is_empty() => items.push(sig),
                    None => {}
                }
            }
            _ => {}
        }
    }
    items
}

// ---------------------------------------------------------------------------
// raw-parallelism
// ---------------------------------------------------------------------------

/// `raw-parallelism`: raw thread-spawning primitives are banned outside
/// the execution runtime crate — kernels launch through
/// `megablocks_exec::LaunchPlan`, never by spawning threads themselves.
/// Test-gated items are exempt, like the hot-path rule.
pub fn check_raw_parallelism(wf: &WorkspaceFile) -> Vec<Finding> {
    let cv = CodeView::new(wf);
    let mut findings = Vec::new();
    for i in 0..cv.len() {
        let pat = if cv.is_ident(i, "thread")
            && cv.double_colon(i + 1)
            && (cv.is_ident(i + 3, "spawn")
                || cv.is_ident(i + 3, "scope")
                || cv.is_ident(i + 3, "Builder"))
        {
            format!("thread::{}", cv.text(i + 3))
        } else if cv.is_ident(i, "crossbeam")
            && cv.double_colon(i + 1)
            && cv.is_ident(i + 3, "thread")
        {
            "crossbeam::thread".to_string()
        } else {
            continue;
        };
        if wf.sf.in_test_item(cv.tok(i).start) {
            continue;
        }
        findings.push(Finding {
            file: wf.rel.clone(),
            line: cv.tok(i).line,
            rule: "raw-parallelism",
            message: format!(
                "`{pat}` outside crates/exec; launch through \
                 megablocks_exec::LaunchPlan instead"
            ),
        });
    }
    findings
}

// ---------------------------------------------------------------------------
// kernel-dispatch
// ---------------------------------------------------------------------------

/// `kernel-dispatch`: a `+=` whose right-hand side multiplies, inside
/// triple-nested `for` loops, is the shape of a hand-rolled GEMM inner
/// loop. Outside [`KERNEL_DIR`] those are banned in the tensor and
/// sparse crates — compute routes through `megablocks_tensor::block_gemm`
/// so the kernel backend registry governs every path. Test-gated items
/// are exempt, like the raw-parallelism rule.
///
/// The loop tracker skips `for<` (higher-ranked trait bounds) and only
/// counts a `for` with an `in` before its body brace; depth-1 and
/// depth-2 accumulations (axpy, reductions, norms) never trip the rule.
pub fn check_kernel_dispatch(wf: &WorkspaceFile) -> Vec<Finding> {
    let cv = CodeView::new(wf);
    let mut findings = Vec::new();
    // Brace depths at which a `for` body opened; the stack height is the
    // current loop-nesting depth.
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut pending_for = false;
    let mut i = 0;
    while i < cv.len() {
        if cv.is_ident(i, "for") && !cv.is_punct(i + 1, "<") {
            let mut j = i + 1;
            while j < cv.len() && !cv.is_punct(j, "{") {
                if cv.is_ident(j, "in") {
                    pending_for = true;
                    break;
                }
                j += 1;
            }
        } else if cv.is_punct(i, "{") {
            depth += 1;
            if pending_for {
                loop_depths.push(depth);
                pending_for = false;
            }
        } else if cv.is_punct(i, "}") {
            if loop_depths.last() == Some(&depth) {
                loop_depths.pop();
            }
            depth = depth.saturating_sub(1);
        } else if loop_depths.len() >= 3
            && cv.is_punct(i, "+")
            && cv.is_punct(i + 1, "=")
            && cv.tok(i).end == cv.tok(i + 1).start
            && !wf.sf.in_test_item(cv.tok(i).start)
        {
            // Scan the right-hand side (through `;`) for a binary `*`:
            // one whose left neighbour ends a value (ident, number or a
            // closing bracket). A deref `*` follows an operator instead.
            let mut j = i + 2;
            while j < cv.len() && !cv.is_punct(j, ";") {
                let value_on_left = j > 0
                    && (matches!(cv.tok(j - 1).kind, TokenKind::Ident | TokenKind::Number)
                        || cv.is_punct(j - 1, ")")
                        || cv.is_punct(j - 1, "]"));
                if cv.is_punct(j, "*") && value_on_left {
                    findings.push(Finding {
                        file: wf.rel.clone(),
                        line: cv.tok(i).line,
                        rule: "kernel-dispatch",
                        message: "raw GEMM inner loop (`+=` of a product at for-loop \
                                  depth >= 3) outside crates/tensor/src/kernel; route \
                                  through megablocks_tensor::block_gemm"
                            .to_string(),
                    });
                    break;
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    findings
}

// ---------------------------------------------------------------------------
// feature-gate-parity
// ---------------------------------------------------------------------------

/// `feature-gate-parity`: items gated on one of [`GATED_FEATURES`] must
/// have a counterpart in the opposite cfg branch, so flipping the feature
/// can never change the API surface:
///
/// * a gated `fn` (any visibility — private gated fns are still API to
///   their module) needs an opposite-gated fn of the same name, owner and
///   normalized signature;
/// * same-name gated inline `mod` twins are compared on their public-ish
///   member items;
/// * a gated public `mod`/`struct`/`enum`/`const`/`type` with no
///   opposite-gated twin at all is flagged. Private gated mods with no
///   twin are allowed (their callers gate at the statement level).
///
/// Items inherited into a gated mod are covered by the mod pairing, so
/// only gates attached directly to an item (`own_gates`) trigger the fn
/// check. Test-gated items are exempt.
pub fn check_feature_gate_parity(wf: &WorkspaceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for feature in GATED_FEATURES {
        for (idx, it) in wf.sf.items.iter().enumerate() {
            let Some(not) = own_feature_gate(it, feature) else {
                continue;
            };
            if it.is_test_gated() {
                continue;
            }
            match it.kind {
                ItemKind::Fn => {
                    let counterpart = wf.sf.items.iter().any(|other| {
                        other.kind == ItemKind::Fn
                            && other.name == it.name
                            && other.mod_path == it.mod_path
                            && other.owner == it.owner
                            && own_feature_gate(other, feature) == Some(!not)
                            && other.signature == it.signature
                    });
                    let near_miss = wf.sf.items.iter().any(|other| {
                        other.kind == ItemKind::Fn
                            && other.name == it.name
                            && other.mod_path == it.mod_path
                            && other.owner == it.owner
                            && own_feature_gate(other, feature) == Some(!not)
                    });
                    if !counterpart {
                        findings.push(gate_parity_finding(
                            wf,
                            it,
                            feature,
                            not,
                            if near_miss {
                                "a counterpart whose signature differs"
                            } else {
                                "no counterpart"
                            },
                        ));
                    }
                }
                ItemKind::Mod => {
                    let twin = wf.sf.items.iter().enumerate().find(|(oi, other)| {
                        *oi != idx
                            && other.kind == ItemKind::Mod
                            && other.name == it.name
                            && other.mod_path == it.mod_path
                            && own_feature_gate(other, feature) == Some(!not)
                    });
                    match twin {
                        Some((_, twin)) => {
                            let mine = mod_member_keys(&wf.sf, it);
                            let theirs = mod_member_keys(&wf.sf, twin);
                            for missing in mine.difference(&theirs) {
                                findings.push(Finding {
                                    file: wf.rel.clone(),
                                    line: twin.line,
                                    rule: "feature-gate-parity",
                                    message: format!(
                                        "gated mod `{}` twin lacks public item `{missing}` \
                                         present in the opposite `{feature}` branch",
                                        it.name
                                    ),
                                });
                            }
                        }
                        None if it.vis.is_public() => {
                            findings.push(gate_parity_finding(wf, it, feature, not, "no twin mod"));
                        }
                        None => {}
                    }
                }
                ItemKind::Struct | ItemKind::Enum | ItemKind::Const | ItemKind::TypeAlias => {
                    if !it.vis.is_public() {
                        continue;
                    }
                    let counterpart = wf.sf.items.iter().enumerate().any(|(oi, other)| {
                        oi != idx
                            && other.kind == it.kind
                            && other.name == it.name
                            && other.mod_path == it.mod_path
                            && own_feature_gate(other, feature) == Some(!not)
                    });
                    if !counterpart {
                        findings.push(gate_parity_finding(wf, it, feature, not, "no counterpart"));
                    }
                }
                _ => {}
            }
        }
    }
    findings
}

fn gate_parity_finding(
    wf: &WorkspaceFile,
    it: &Item,
    feature: &str,
    not: bool,
    what: &str,
) -> Finding {
    let branch = if not {
        format!("cfg(not(feature = \"{feature}\"))")
    } else {
        format!("cfg(feature = \"{feature}\")")
    };
    Finding {
        file: wf.rel.clone(),
        line: it.line,
        rule: "feature-gate-parity",
        message: format!(
            "`{}` is gated on {branch} but has {what} in the opposite branch",
            it.name
        ),
    }
}

/// The feature gate attached *directly* to `it` (not inherited), if any.
fn own_feature_gate(it: &Item, feature: &str) -> Option<bool> {
    it.own_gates.iter().find_map(|g| match g {
        Gate::Feature { name, not } if name == feature => Some(*not),
        _ => None,
    })
}

/// The comparable public-ish member keys of an inline mod item.
fn mod_member_keys(sf: &SourceFile, m: &Item) -> std::collections::BTreeSet<String> {
    sf.items
        .iter()
        .filter(|it| {
            it.span.0 > m.span.0
                && it.span.1 <= m.span.1
                && it.vis.is_public()
                && !it.is_test_gated()
        })
        .filter_map(|it| match it.kind {
            ItemKind::Fn => it.signature.clone(),
            ItemKind::Struct => Some(format!("struct {}", it.name)),
            ItemKind::Enum => Some(format!("enum {}", it.name)),
            ItemKind::Const => Some(format!("const {}", it.name)),
            ItemKind::TypeAlias => Some(format!("type {}", it.name)),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// error-exhaustive
// ---------------------------------------------------------------------------

/// `error-exhaustive`: every variant of the audited error enums
/// ([`AUDITED_ERROR_ENUMS`]) must appear as a path expression
/// (`Enum::Variant`) somewhere in non-test code — a variant nobody can
/// construct is either dead error surface or an unwired failure mode.
/// Appearances inside the declaring enum, inside that enum's own trait
/// impls (`Display`/`Error` formatting), in test files, and in
/// test-gated items do not count.
pub fn check_error_exhaustive(files: &[WorkspaceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for enum_name in AUDITED_ERROR_ENUMS {
        // Locate the (non-test) declaring enum.
        let Some((decl_wf, decl_item)) = files.iter().find_map(|wf| {
            wf.sf
                .items
                .iter()
                .find(|it| {
                    it.kind == ItemKind::Enum && it.name == *enum_name && !it.is_test_gated()
                })
                .map(|it| (wf, it))
        }) else {
            continue;
        };
        for (variant, vline) in &decl_item.variants {
            let mut constructed = false;
            'files: for wf in files {
                if wf.rel.contains("/tests/") || wf.rel.contains("/benches/") {
                    continue;
                }
                let cv = CodeView::new(wf);
                for i in 0..cv.len() {
                    if !cv.is_ident(i, enum_name)
                        || !cv.double_colon(i + 1)
                        || !cv.is_ident(i + 3, variant)
                    {
                        continue;
                    }
                    let off = cv.tok(i).start;
                    if wf.sf.in_test_item(off) {
                        continue;
                    }
                    // Inside the declaring enum itself?
                    if wf.rel == decl_wf.rel && decl_item.span.0 <= off && off < decl_item.span.1 {
                        continue;
                    }
                    // Inside one of the enum's own trait impls
                    // (Display/Error formatting matches)?
                    let in_own_impl = wf.sf.items.iter().any(|it| {
                        it.kind == ItemKind::TraitImpl
                            && it.name == *enum_name
                            && it.span.0 <= off
                            && off < it.span.1
                    });
                    if in_own_impl {
                        continue;
                    }
                    constructed = true;
                    break 'files;
                }
            }
            if !constructed {
                findings.push(Finding {
                    file: decl_wf.rel.clone(),
                    line: *vline,
                    rule: "error-exhaustive",
                    message: format!(
                        "error variant `{enum_name}::{variant}` is never constructed \
                         outside tests — wire it up or remove it"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// suppressions
// ---------------------------------------------------------------------------

/// One parsed `// audit: allow(<rule>) -- <justification>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Workspace-relative file the suppression lives in.
    pub file: String,
    /// The suppressed rule's slug.
    pub slug: String,
    /// The 1-based line the suppression applies to: its own line when it
    /// trails code, otherwise the next line holding a code token.
    pub applies_line: usize,
    /// The 1-based line of the comment itself.
    pub comment_line: usize,
}

/// Parses the file's suppression comments. Returns the well-formed
/// suppressions plus `suppression-justification` findings for malformed
/// ones (unknown rule slug, or missing `-- <justification>` tail).
pub fn collect_suppressions(wf: &WorkspaceFile) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    let tokens = &wf.sf.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text(&wf.src).trim_start_matches('/').trim();
        let Some(directive) = body.strip_prefix("audit:") else {
            continue;
        };
        let directive = directive.trim();
        let mut bad = |msg: String| {
            findings.push(Finding {
                file: wf.rel.clone(),
                line: t.line,
                rule: "suppression-justification",
                message: msg,
            });
        };
        let Some(rest) = directive.strip_prefix("allow(") else {
            bad(format!(
                "malformed audit directive `{body}`; expected \
                 `audit: allow(<rule>) -- <justification>`"
            ));
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("unterminated `allow(` in audit directive".to_string());
            continue;
        };
        let slug = rest[..close].trim();
        if rule_by_slug(slug).is_none() {
            bad(format!(
                "audit suppression names unknown rule `{slug}` \
                 (see `lint --list` for registered rules)"
            ));
            continue;
        }
        let tail = rest[close + 1..].trim();
        let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
        if justification.is_empty() {
            bad(format!(
                "audit suppression of `{slug}` is missing its \
                 `-- <justification>` tail"
            ));
            continue;
        }
        // Where does it apply? Its own line when it trails code on that
        // line, else the next line holding a code token.
        let trails_code = tokens[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| p.is_code());
        let applies_line = if trails_code {
            t.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|n| n.is_code())
                .map_or(t.line + 1, |n| n.line)
        };
        sups.push(Suppression {
            file: wf.rel.clone(),
            slug: slug.to_string(),
            applies_line,
            comment_line: t.line,
        });
    }
    (sups, findings)
}

// ---------------------------------------------------------------------------
// fault-site-telemetry (catalogue parsing + checks)
// ---------------------------------------------------------------------------

/// One fault-injection site parsed out of the resilience catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSite {
    /// The `pub const` identifier (e.g. `EXEC_WORKER_PANIC`).
    pub ident: String,
    /// The site's stable name (e.g. `exec.worker_panic`).
    pub name: String,
    /// Declared injection counter.
    pub injected: String,
    /// Declared detection counter.
    pub detected: String,
    /// Declared recovery counter.
    pub recovered: String,
    /// 1-based line of the `pub const` declaration.
    pub line: usize,
}

/// Parses every `pub const NAME: Site = Site { ... }` block out of the
/// fault-site catalogue source. Field values are read from the original
/// (unstripped) source, since they are string literals.
pub fn parse_fault_sites(src: &str) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    let mut current: Option<FaultSite> = None;
    for (i, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("pub const ") {
            if rest.contains(": Site =") {
                current = Some(FaultSite {
                    ident: ident_prefix(rest),
                    name: String::new(),
                    injected: String::new(),
                    detected: String::new(),
                    recovered: String::new(),
                    line: i + 1,
                });
            }
        }
        if let Some(site) = current.as_mut() {
            for (field, slot) in [
                ("name", &mut site.name),
                ("injected", &mut site.injected),
                ("detected", &mut site.detected),
                ("recovered", &mut site.recovered),
            ] {
                if let Some(value) = quoted_field(trimmed, field) {
                    *slot = value;
                }
            }
            if !site.name.is_empty()
                && !site.injected.is_empty()
                && !site.detected.is_empty()
                && !site.recovered.is_empty()
            {
                sites.push(current.take().expect("just matched as Some"));
            }
        }
    }
    sites
}

/// `fault-site-telemetry` (a): every site's three lifecycle counters must
/// follow the `resilience.{injected,detected,recovered}.<site-name>`
/// naming scheme.
pub fn check_fault_site_counters(file: &str, sites: &[FaultSite]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in sites {
        for (kind, got) in [
            ("injected", &site.injected),
            ("detected", &site.detected),
            ("recovered", &site.recovered),
        ] {
            let want = format!("resilience.{kind}.{}", site.name);
            if *got != want {
                findings.push(Finding {
                    file: file.to_string(),
                    line: site.line,
                    rule: "fault-site-telemetry",
                    message: format!(
                        "fault site `{}` declares {kind} counter `{got}`, expected `{want}`",
                        site.name
                    ),
                });
            }
        }
    }
    findings
}

/// `fault-site-telemetry` (b): every registered site identifier must be
/// referenced in the workspace outside the catalogue itself —
/// `other_sources` is the concatenated code-token text of every other
/// crate file (see [`WorkspaceFile::code_only`]).
pub fn check_fault_site_references(
    file: &str,
    sites: &[FaultSite],
    other_sources: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in sites {
        if !contains_word(other_sources, &site.ident) {
            findings.push(Finding {
                file: file.to_string(),
                line: site.line,
                rule: "fault-site-telemetry",
                message: format!(
                    "fault site `{}` (`{}`) is registered but never referenced \
                     outside the catalogue — wire an injection hook or remove it",
                    site.ident, site.name
                ),
            });
        }
    }
    findings
}

/// The `"..."` value of `field: "..."` on this line, if present.
fn quoted_field(line: &str, field: &str) -> Option<String> {
    let pat = format!("{field}: \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

/// Renders findings as the `--json` machine-readable report: total count,
/// per-rule counts (every registered rule, including zeroes), and the
/// finding list. Dependency-free, hand-escaped.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut counts: BTreeMap<&str, usize> = RULES.iter().map(|r| (r.slug, 0)).collect();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    let mut out = String::from("{");
    out.push_str(&format!("\"total\":{},", findings.len()));
    out.push_str("\"counts\":{");
    let mut first = true;
    for (slug, n) in &counts {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{slug}\":{n}"));
    }
    out.push_str("},\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

/// The leading Rust identifier of `s`.
fn ident_prefix(s: &str) -> String {
    s.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Whether `word` occurs in `s` delimited by non-identifier characters.
fn contains_word(s: &str, word: &str) -> bool {
    let bytes = s.as_bytes();
    let mut start = 0;
    while let Some(pos) = s[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All `.rs` files under `dir`, recursively, skipping `target` directories.
fn rust_sources(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                if entry.file_name() != "target" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf(src: &str) -> WorkspaceFile {
        WorkspaceFile::new("x.rs", src).expect("fixture lexes")
    }

    #[test]
    fn safety_lint_accepts_commented_unsafe() {
        let src = "fn f(v: &[f32]) -> f32 {\n    // SAFETY: i < v.len() checked above.\n    unsafe { *v.get_unchecked(0) }\n}\n";
        assert!(check_unsafe_safety(&wf(src)).is_empty());
    }

    #[test]
    fn safety_lint_flags_bare_unsafe() {
        let src = "fn f(v: &[f32]) -> f32 {\n    unsafe { *v.get_unchecked(0) }\n}\n";
        let f = check_unsafe_safety(&wf(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_lint_ignores_comments_and_strings() {
        let src =
            "// unsafe is discussed here only\nfn f() -> &'static str {\n    \"unsafe { }\"\n}\n";
        assert!(check_unsafe_safety(&wf(src)).is_empty());
    }

    #[test]
    fn safety_lint_reads_multi_line_comment_blocks() {
        let src = "fn f(v: &[f32]) -> f32 {\n    // SAFETY: index is bounded by the loop\n    // condition three lines up.\n    unsafe { *v.get_unchecked(0) }\n}\n";
        assert!(check_unsafe_safety(&wf(src)).is_empty());
    }

    #[test]
    fn safety_lint_handles_multi_line_unsafe_blocks() {
        // A second `unsafe` keyword further down the same block, with no
        // comment of its own, must still be flagged — the regex engine
        // could not see this.
        let src = "fn f(v: &mut [f32]) {\n    // SAFETY: disjoint halves proven by split_at_mut.\n    unsafe {\n        let p = v.as_mut_ptr();\n    }\n    unsafe { *v.get_unchecked_mut(0) = 1.0; }\n}\n";
        let f = check_unsafe_safety(&wf(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn safety_format_flags_vacuous_comments() {
        let src =
            "fn f(v: &[f32]) -> f32 {\n    // SAFETY: ok.\n    unsafe { *v.get_unchecked(0) }\n}\n";
        let f = check_unsafe_safety(&wf(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unsafe-safety-format");
    }

    #[test]
    fn safety_format_accepts_substantive_comments() {
        let src = "fn f(v: &[f32]) -> f32 {\n    // SAFETY: index zero is in bounds because the caller checked is_empty.\n    unsafe { *v.get_unchecked(0) }\n}\n";
        assert!(check_unsafe_safety(&wf(src)).is_empty());
    }

    #[test]
    fn hot_path_lint_flags_unwrap_and_expect() {
        let src = "fn k(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\nfn j(v: Option<u32>) -> u32 {\n    v.expect(\"present\")\n}\n";
        let f = check_hot_path_panics(&wf(src));
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "hot-path-panic"));
    }

    #[test]
    fn hot_path_lint_exempts_test_module_and_docs() {
        let src = "/// Call `.unwrap()` on the result.\nfn k() {}\n#[cfg(test)]\nmod tests {\n    fn t(v: Option<u32>) { v.unwrap(); }\n}\n";
        assert!(check_hot_path_panics(&wf(src)).is_empty());
    }

    #[test]
    fn hot_path_lint_sees_code_after_test_module() {
        // The old engine stopped scanning at the first `#[cfg(test)]`
        // line; the token model exempts only the gated item itself.
        let src = "#[cfg(test)]\nmod tests {\n    fn t(v: Option<u32>) { v.unwrap(); }\n}\nfn k(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let f = check_hot_path_panics(&wf(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn hot_path_lint_allows_unwrap_or_else() {
        let src = "fn k(v: Option<u32>) -> u32 {\n    v.unwrap_or_else(|| 0)\n}\n";
        assert!(check_hot_path_panics(&wf(src)).is_empty());
    }

    #[test]
    fn try_twin_lint_requires_twin() {
        let with_twin = "pub fn sdd() {}\npub fn try_sdd() {}\n";
        assert!(check_try_twins(&wf(with_twin)).is_empty());
        let without = "pub fn sdd() {}\npub fn dsd() {}\npub fn try_dsd() {}\n";
        let f = check_try_twins(&wf(without));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`sdd`"));
    }

    #[test]
    fn try_twin_lint_ignores_nested_functions() {
        let src =
            "mod helpers {\n    pub fn internal() {}\n}\npub fn op() {}\npub fn try_op() {}\n";
        assert!(check_try_twins(&wf(src)).is_empty());
    }

    #[test]
    fn parity_lint_accepts_identical_apis() {
        let enabled = wf("pub struct Counter;\nimpl Counter {\n    pub fn add(&self, n: u64) { let _ = n; }\n}\npub fn counter(name: &'static str) -> Counter { Counter }\n");
        let disabled = wf("pub struct Counter;\nimpl Counter {\n    pub fn add(&self, _n: u64) {}\n}\npub fn counter(_name: &'static str) -> Counter { Counter }\n");
        assert!(check_telemetry_parity(("e.rs", "d.rs"), &enabled, &disabled).is_empty());
    }

    #[test]
    fn parity_lint_flags_missing_method() {
        let enabled = wf("pub struct Counter;\nimpl Counter {\n    pub fn add(&self, n: u64) { let _ = n; }\n    pub fn get(&self) -> u64 { 0 }\n}\n");
        let disabled =
            wf("pub struct Counter;\nimpl Counter {\n    pub fn add(&self, _n: u64) {}\n}\n");
        let f = check_telemetry_parity(("e.rs", "d.rs"), &enabled, &disabled);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Counter::"));
        assert!(f[0].message.contains("get"));
    }

    #[test]
    fn parity_lint_flags_signature_drift() {
        let enabled = wf("pub fn gauge(name: &'static str) -> Gauge { Gauge }\n");
        let disabled = wf("pub fn gauge(name: &str) -> Gauge { Gauge }\n");
        let f = check_telemetry_parity(("e.rs", "d.rs"), &enabled, &disabled);
        assert_eq!(f.len(), 2); // each side reports the other's variant missing
    }

    #[test]
    fn raw_parallelism_lint_flags_spawns() {
        let src =
            "fn k() {\n    std::thread::spawn(|| {});\n    crossbeam::thread::scope(|s| {});\n}\n";
        let f = check_raw_parallelism(&wf(src));
        assert!(f.len() >= 2);
        assert!(f.iter().all(|f| f.rule == "raw-parallelism"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn raw_parallelism_lint_exempts_tests_and_comments() {
        let src = "// thread::spawn is discussed here only\nfn k() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(check_raw_parallelism(&wf(src)).is_empty());
    }

    #[test]
    fn raw_parallelism_lint_ignores_strings() {
        let src = "fn k() -> &'static str {\n    \"thread::spawn\"\n}\n";
        assert!(check_raw_parallelism(&wf(src)).is_empty());
    }

    #[test]
    fn kernel_dispatch_flags_triple_loop_gemm() {
        let src = "fn gemm(a: &[f32], b: &[f32], c: &mut [f32], n: usize) {\n    for i in 0..n {\n        for j in 0..n {\n            for p in 0..n {\n                c[i * n + j] += a[i * n + p] * b[p * n + j];\n            }\n        }\n    }\n}\n";
        let f = check_kernel_dispatch(&wf(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "kernel-dispatch");
        assert_eq!(f[0].line, 5);
        assert!(f[0].message.contains("block_gemm"));
    }

    #[test]
    fn kernel_dispatch_allows_depth_two_accumulation() {
        // axpy / layer-norm style loops accumulate products at depth <= 2
        // — those are not GEMMs and must not trip the rule.
        let src = "fn axpy(y: &mut [f32], a: f32, x: &[f32]) {\n    for i in 0..y.len() {\n        y[i] += a * x[i];\n    }\n}\nfn norms(m: &[f32], n: usize, out: &mut [f32]) {\n    for i in 0..n {\n        for j in 0..n {\n            out[i] += m[i * n + j] * m[i * n + j];\n        }\n    }\n}\n";
        assert!(check_kernel_dispatch(&wf(src)).is_empty());
    }

    #[test]
    fn kernel_dispatch_allows_productless_triple_loops() {
        // Triple-nested loops that only add (no `*` on the RHS) are
        // reductions or copies, not GEMM inner loops. The `i * n` on the
        // *left* of the `+=` must not count.
        let src = "fn sum3(t: &[f32], o: &mut [f32], n: usize) {\n    for i in 0..n {\n        for j in 0..n {\n            for p in 0..n {\n                o[i * n + j] += t[p];\n            }\n        }\n    }\n}\n";
        assert!(check_kernel_dispatch(&wf(src)).is_empty());
    }

    #[test]
    fn kernel_dispatch_exempts_tests_and_skips_hrtb() {
        let src = "fn takes<F: for<'a> Fn(&'a f32)>(f: F) {}\n#[cfg(test)]\nmod tests {\n    fn reference(a: &[f32], b: &[f32], c: &mut [f32], n: usize) {\n        for i in 0..n {\n            for j in 0..n {\n                for p in 0..n {\n                    c[i * n + j] += a[i * n + p] * b[p * n + j];\n                }\n            }\n        }\n    }\n}\n";
        assert!(check_kernel_dispatch(&wf(src)).is_empty());
    }

    #[test]
    fn kernel_dispatch_ignores_deref_multiplication() {
        // `a_val * *p` — the second `*` is a deref; the first, following
        // an ident, is the binary product and still trips the rule.
        let src = "fn f(c: &mut [f32], a: &[f32], p: &f32, n: usize) {\n    for i in 0..n {\n        for j in 0..n {\n            for k in 0..n {\n                c[i] += a[k] * *p;\n            }\n        }\n    }\n}\n";
        assert_eq!(check_kernel_dispatch(&wf(src)).len(), 1);
    }

    #[test]
    fn gate_parity_accepts_fn_twins() {
        let src = "#[cfg(feature = \"sanitize\")]\nfn verify(x: &[f32]) {}\n#[cfg(not(feature = \"sanitize\"))]\nfn verify(_x: &[f32]) {}\n";
        assert!(check_feature_gate_parity(&wf(src)).is_empty());
    }

    #[test]
    fn gate_parity_flags_missing_fn_twin() {
        let src = "#[cfg(feature = \"sanitize\")]\nfn verify(x: &[f32]) {}\n";
        let f = check_feature_gate_parity(&wf(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "feature-gate-parity");
        assert!(f[0].message.contains("no counterpart"));
    }

    #[test]
    fn gate_parity_flags_signature_drift() {
        let src = "#[cfg(feature = \"sanitize\")]\nfn verify(x: &[f32]) -> bool { true }\n#[cfg(not(feature = \"sanitize\"))]\nfn verify(_x: &[f32]) {}\n";
        let f = check_feature_gate_parity(&wf(src));
        assert_eq!(f.len(), 2); // both branches flag the drift
        assert!(f[0].message.contains("signature differs"));
    }

    #[test]
    fn gate_parity_compares_mod_twin_members() {
        let ok = "#[cfg(feature = \"sanitize\")]\nmod sanitize {\n    pub(super) fn check(x: usize) {}\n}\n#[cfg(not(feature = \"sanitize\"))]\nmod sanitize {\n    pub(super) fn check(_x: usize) {}\n}\n";
        assert!(check_feature_gate_parity(&wf(ok)).is_empty());
        let missing = "#[cfg(feature = \"sanitize\")]\nmod sanitize {\n    pub(super) fn check(x: usize) {}\n    pub(super) fn extra() {}\n}\n#[cfg(not(feature = \"sanitize\"))]\nmod sanitize {\n    pub(super) fn check(_x: usize) {}\n}\n";
        let f = check_feature_gate_parity(&wf(missing));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("extra"));
    }

    #[test]
    fn gate_parity_allows_private_untwinned_mod() {
        let src = "#[cfg(feature = \"chaos\")]\nmod active {\n    pub(super) fn arm() {}\n}\n";
        assert!(check_feature_gate_parity(&wf(src)).is_empty());
    }

    #[test]
    fn gate_parity_ignores_test_gated_items() {
        let src = "#[cfg(test)]\nmod tests {\n    #[cfg(feature = \"sanitize\")]\n    fn helper() {}\n}\n";
        assert!(check_feature_gate_parity(&wf(src)).is_empty());
    }

    #[test]
    fn error_exhaustive_flags_unconstructed_variant() {
        let decl = WorkspaceFile::new(
            "crates/x/src/err.rs",
            "pub enum EpError {\n    Used,\n    Orphan,\n}\nimpl std::fmt::Display for EpError {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {\n        match self { EpError::Used => Ok(()), EpError::Orphan => Ok(()) }\n    }\n}\n",
        )
        .unwrap();
        let user = WorkspaceFile::new(
            "crates/x/src/use_site.rs",
            "pub fn f() -> Result<(), super::EpError> {\n    Err(EpError::Used)\n}\n",
        )
        .unwrap();
        let f = check_error_exhaustive(&[decl, user]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "error-exhaustive");
        assert!(f[0].message.contains("Orphan"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn error_exhaustive_ignores_test_constructions() {
        let decl = WorkspaceFile::new(
            "crates/x/src/err.rs",
            "pub enum EpError { Orphan }\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = super::EpError::Orphan; }\n}\n",
        )
        .unwrap();
        let f = check_error_exhaustive(&[decl]);
        assert_eq!(f.len(), 1, "test-only construction must not count");
    }

    #[test]
    fn suppression_parses_and_targets_next_line() {
        let src = "// audit: allow(hot-path-panic) -- index proven in bounds by caller\nfn k(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let (sups, findings) = collect_suppressions(&wf(src));
        assert!(findings.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].slug, "hot-path-panic");
        assert_eq!(sups[0].applies_line, 2);
    }

    #[test]
    fn suppression_targets_same_line_when_trailing() {
        let src = "fn k(v: Option<u32>) -> u32 { v.unwrap() } // audit: allow(hot-path-panic) -- demo harness only\n";
        let (sups, findings) = collect_suppressions(&wf(src));
        assert!(findings.is_empty());
        assert_eq!(sups[0].applies_line, 1);
    }

    #[test]
    fn suppression_without_justification_is_flagged() {
        let src = "// audit: allow(hot-path-panic)\nfn k() {}\n";
        let (sups, findings) = collect_suppressions(&wf(src));
        assert!(sups.is_empty());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "suppression-justification");
        assert!(findings[0].message.contains("missing"));
    }

    #[test]
    fn suppression_with_unknown_rule_is_flagged() {
        let src = "// audit: allow(no-such-rule) -- because\nfn k() {}\n";
        let (sups, findings) = collect_suppressions(&wf(src));
        assert!(sups.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"));
    }

    fn site_fixture(injected: &str) -> String {
        format!(
            "pub const DEMO_SITE: Site = Site {{\n    name: \"demo.site\",\n    injected: \"{injected}\",\n    detected: \"resilience.detected.demo.site\",\n    recovered: \"resilience.recovered.demo.site\",\n}};\n"
        )
    }

    #[test]
    fn fault_site_parser_reads_the_catalogue_fields() {
        let sites = parse_fault_sites(&site_fixture("resilience.injected.demo.site"));
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].ident, "DEMO_SITE");
        assert_eq!(sites[0].name, "demo.site");
        assert_eq!(sites[0].line, 1);
    }

    #[test]
    fn fault_site_lint_accepts_conforming_counters() {
        let sites = parse_fault_sites(&site_fixture("resilience.injected.demo.site"));
        assert!(check_fault_site_counters("sites.rs", &sites).is_empty());
    }

    #[test]
    fn fault_site_lint_flags_counter_drift() {
        let sites = parse_fault_sites(&site_fixture("resilience.fired.demo.site"));
        let f = check_fault_site_counters("sites.rs", &sites);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "fault-site-telemetry");
        assert!(f[0].message.contains("resilience.injected.demo.site"));
    }

    #[test]
    fn fault_site_lint_flags_unreferenced_sites() {
        let sites = parse_fault_sites(&site_fixture("resilience.injected.demo.site"));
        let wired = "use resilience :: sites :: DEMO_SITE ;\n";
        assert!(check_fault_site_references("sites.rs", &sites, wired).is_empty());
        let unwired = "use resilience :: sites :: OTHER_SITE ;\n";
        let f = check_fault_site_references("sites.rs", &sites, unwired);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never referenced"));
    }

    #[test]
    fn code_only_strips_comments_and_strings() {
        let w = wf("fn f() {\n    // DEMO_SITE in a comment\n    let s = \"DEMO_SITE\";\n}\n");
        let code = w.code_only();
        assert!(!contains_word(&code, "DEMO_SITE"));
        assert!(contains_word(&code, "fn"));
    }

    #[test]
    fn json_report_counts_every_rule() {
        let findings = vec![Finding {
            file: "a.rs".to_string(),
            line: 3,
            rule: "try-twin",
            message: "needs a \"twin\"".to_string(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\"total\":1"));
        assert!(json.contains("\"try-twin\":1"));
        assert!(json.contains("\"safety-comment\":0"));
        assert!(json.contains("needs a \\\"twin\\\""));
    }
}

//! Source-level lints for the MegaBlocks-RS workspace.
//!
//! This crate is the static half of the correctness tooling (the dynamic
//! half — the topology sanitizer and write-disjointness race checker —
//! lives in `megablocks_sparse::audit` behind the `sanitize` feature).
//! It enforces six workspace conventions that `rustc` and `clippy` do
//! not check:
//!
//! 1. **SAFETY comments** — every `unsafe` block in the workspace crates
//!    must be preceded by (or share a line with) a `// SAFETY:` comment
//!    justifying it.
//! 2. **No panics in kernel hot paths** — `.unwrap()` / `.expect(` are
//!    banned from the non-test portions of the kernel files
//!    ([`HOT_PATHS`]); kernels must propagate errors or re-raise worker
//!    panic payloads instead of minting new ones.
//! 3. **`try_*` twins** — every panicking public sparse op in
//!    `crates/sparse/src/ops.rs` must have a fallible `try_*` twin.
//! 4. **Telemetry API parity** — each feature-gated implementation pair
//!    in [`TELEMETRY_PAIRS`] (`enabled.rs`/`disabled.rs` for the metric
//!    registry, `trace_enabled.rs`/`trace_disabled.rs` for the timeline
//!    recorder) must expose identical public items, so flipping the
//!    feature can never change what compiles.
//! 5. **No raw parallelism** — spawning threads directly
//!    (`std::thread::spawn` / `thread::scope` / `thread::Builder` /
//!    `crossbeam::thread`) is banned outside `crates/exec`: every kernel
//!    launch must go through the execution runtime's worker pool, so its
//!    panic-safety and determinism guarantees cover the whole workspace.
//!    Test and bench sources are exempt (they drive the pool from OS
//!    threads on purpose).
//! 6. **Fault-site telemetry** — every fault-injection site registered in
//!    the resilience catalogue ([`FAULT_SITES`]) must declare its three
//!    lifecycle counters following the `resilience.injected.<name>` /
//!    `resilience.detected.<name>` / `resilience.recovered.<name>`
//!    naming scheme, and must be referenced somewhere outside the
//!    catalogue — a registered-but-unwired site, or a site whose
//!    counters drift from the scheme dashboards key on, is a lint
//!    failure.
//!
//! The checks are plain-text analysis (comments and string literals are
//! stripped first); no compiler plumbing, no dependencies. Run them with
//! `cargo run -p megablocks-audit -- lint`.

#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Kernel hot-path files where `.unwrap()` / `.expect(` are banned
/// (workspace-relative).
pub const HOT_PATHS: &[&str] = &[
    "crates/sparse/src/ops.rs",
    "crates/tensor/src/matmul.rs",
    "crates/core/src/permute.rs",
];

/// The file that must provide a `try_*` twin for every public sparse op.
pub const SPARSE_OPS: &str = "crates/sparse/src/ops.rs";

/// The feature-gated telemetry implementation pairs that must agree
/// (enabled variant first, its no-op twin second).
pub const TELEMETRY_PAIRS: &[(&str, &str)] = &[
    (
        "crates/telemetry/src/enabled.rs",
        "crates/telemetry/src/disabled.rs",
    ),
    (
        "crates/telemetry/src/trace_enabled.rs",
        "crates/telemetry/src/trace_disabled.rs",
    ),
];

/// The one directory allowed to use raw thread primitives: the execution
/// runtime owns every spawn in the workspace (workspace-relative prefix).
pub const EXEC_CRATE: &str = "crates/exec/";

/// The fault-injection site catalogue rule 6 parses and cross-references.
pub const FAULT_SITES: &str = "crates/resilience/src/sites.rs";

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line, or 0 when the finding concerns the file as a whole.
    pub line: usize,
    /// Short rule identifier (`safety-comment`, `hot-path-panic`,
    /// `try-twin`, `telemetry-parity`, `raw-parallelism`,
    /// `fault-site-telemetry`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// The workspace root, derived from this crate's manifest location
/// (`crates/audit` → two levels up). Valid wherever the workspace is
/// checked out, regardless of the invoking directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/audit always sits two levels below the workspace root")
        .to_path_buf()
}

/// Runs every lint over the workspace at `root` and returns all findings.
///
/// # Errors
///
/// Returns an error if a workspace source file cannot be read — the lint
/// refuses to pass vacuously on an unreadable tree.
pub fn run_all_lints(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    // Rule 1: SAFETY comments, across every workspace crate. The audit
    // crate itself is skipped: its tests embed deliberately-broken
    // fixtures as string literals.
    for file in rust_sources(&root.join("crates"))? {
        let rel = rel_path(root, &file);
        if rel.starts_with("crates/audit/") {
            continue;
        }
        let src = fs::read_to_string(&file)?;
        findings.extend(check_safety_comments(&rel, &src));
    }

    // Rule 2: no unwrap/expect in kernel hot paths.
    for rel in HOT_PATHS {
        let src = fs::read_to_string(root.join(rel))?;
        findings.extend(check_hot_path_panics(rel, &src));
    }

    // Rule 3: try_* twins for the public sparse ops.
    let ops_src = fs::read_to_string(root.join(SPARSE_OPS))?;
    findings.extend(check_try_twins(SPARSE_OPS, &ops_src));

    // Rule 4: telemetry enabled/disabled API parity, for every
    // feature-gated implementation pair.
    for pair in TELEMETRY_PAIRS {
        let enabled = fs::read_to_string(root.join(pair.0))?;
        let disabled = fs::read_to_string(root.join(pair.1))?;
        findings.extend(check_telemetry_parity(*pair, &enabled, &disabled));
    }

    // Rule 5: raw thread primitives only inside the execution runtime.
    // Tests and benches are exempt (determinism/stress suites drive the
    // pool from OS threads deliberately), as is the audit crate (fixture
    // literals).
    for file in rust_sources(&root.join("crates"))? {
        let rel = rel_path(root, &file);
        if rel.starts_with(EXEC_CRATE)
            || rel.starts_with("crates/audit/")
            || rel.contains("/tests/")
            || rel.contains("/benches/")
        {
            continue;
        }
        let src = fs::read_to_string(&file)?;
        findings.extend(check_raw_parallelism(&rel, &src));
    }

    // Rule 6: the fault-site catalogue follows the telemetry naming
    // scheme and every registered site is wired somewhere.
    let sites_src = fs::read_to_string(root.join(FAULT_SITES))?;
    let sites = parse_fault_sites(&sites_src);
    findings.extend(check_fault_site_counters(FAULT_SITES, &sites));
    let mut other_sources = String::new();
    for file in rust_sources(&root.join("crates"))? {
        let rel = rel_path(root, &file);
        if rel == FAULT_SITES || rel.starts_with("crates/audit/") {
            continue;
        }
        other_sources.push_str(&strip_comments_and_strings(&fs::read_to_string(&file)?));
        other_sources.push('\n');
    }
    findings.extend(check_fault_site_references(
        FAULT_SITES,
        &sites,
        &other_sources,
    ));

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// One fault-injection site parsed out of the resilience catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSite {
    /// The `pub const` identifier (e.g. `EXEC_WORKER_PANIC`).
    pub ident: String,
    /// The site's stable name (e.g. `exec.worker_panic`).
    pub name: String,
    /// Declared injection counter.
    pub injected: String,
    /// Declared detection counter.
    pub detected: String,
    /// Declared recovery counter.
    pub recovered: String,
    /// 1-based line of the `pub const` declaration.
    pub line: usize,
}

/// Parses every `pub const NAME: Site = Site { ... }` block out of the
/// fault-site catalogue source. Field values are read from the original
/// (unstripped) source, since they are string literals.
pub fn parse_fault_sites(src: &str) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    let mut current: Option<FaultSite> = None;
    for (i, line) in src.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("pub const ") {
            if rest.contains(": Site =") {
                current = Some(FaultSite {
                    ident: ident_prefix(rest),
                    name: String::new(),
                    injected: String::new(),
                    detected: String::new(),
                    recovered: String::new(),
                    line: i + 1,
                });
            }
        }
        if let Some(site) = current.as_mut() {
            for (field, slot) in [
                ("name", &mut site.name),
                ("injected", &mut site.injected),
                ("detected", &mut site.detected),
                ("recovered", &mut site.recovered),
            ] {
                if let Some(value) = quoted_field(trimmed, field) {
                    *slot = value;
                }
            }
            if !site.name.is_empty()
                && !site.injected.is_empty()
                && !site.detected.is_empty()
                && !site.recovered.is_empty()
            {
                sites.push(current.take().expect("just matched as Some"));
            }
        }
    }
    sites
}

/// Rule 6a: every site's three lifecycle counters must follow the
/// `resilience.{injected,detected,recovered}.<site-name>` naming scheme.
pub fn check_fault_site_counters(file: &str, sites: &[FaultSite]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in sites {
        for (kind, got) in [
            ("injected", &site.injected),
            ("detected", &site.detected),
            ("recovered", &site.recovered),
        ] {
            let want = format!("resilience.{kind}.{}", site.name);
            if *got != want {
                findings.push(Finding {
                    file: file.to_string(),
                    line: site.line,
                    rule: "fault-site-telemetry",
                    message: format!(
                        "fault site `{}` declares {kind} counter `{got}`, expected `{want}`",
                        site.name
                    ),
                });
            }
        }
    }
    findings
}

/// Rule 6b: every registered site identifier must be referenced in the
/// workspace outside the catalogue itself — `other_sources` is the
/// concatenated, comment-stripped source of every other crate file.
pub fn check_fault_site_references(
    file: &str,
    sites: &[FaultSite],
    other_sources: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in sites {
        if !contains_word(other_sources, &site.ident) {
            findings.push(Finding {
                file: file.to_string(),
                line: site.line,
                rule: "fault-site-telemetry",
                message: format!(
                    "fault site `{}` (`{}`) is registered but never referenced \
                     outside the catalogue — wire an injection hook or remove it",
                    site.ident, site.name
                ),
            });
        }
    }
    findings
}

/// The `"..."` value of `field: "..."` on this line, if present.
fn quoted_field(line: &str, field: &str) -> Option<String> {
    let pat = format!("{field}: \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Rule 1: every `unsafe` keyword in code must carry a `// SAFETY:`
/// comment on the same line or in the contiguous comment block directly
/// above it.
pub fn check_safety_comments(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let code_lines: Vec<&str> = stripped.lines().collect();
    let orig_lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    for (i, code) in code_lines.iter().enumerate() {
        if !contains_word(code, "unsafe") {
            continue;
        }
        let mut justified = orig_lines[i].contains("SAFETY:");
        // Walk the contiguous comment block immediately above.
        let mut j = i;
        while !justified && j > 0 {
            j -= 1;
            let above = orig_lines[j].trim_start();
            if !above.starts_with("//") {
                break;
            }
            justified = above.contains("SAFETY:");
        }
        if !justified {
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment justifying it".to_string(),
            });
        }
    }
    findings
}

/// Rule 2: `.unwrap()` / `.expect(` are banned from the non-test portion
/// of a kernel hot-path file.
pub fn check_hot_path_panics(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let mut findings = Vec::new();
    for (i, (code, orig)) in stripped.lines().zip(src.lines()).enumerate() {
        // Everything below the test module is exempt.
        if orig.contains("#[cfg(test)]") {
            break;
        }
        for pat in [".unwrap()", ".expect("] {
            if code.contains(pat) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "hot-path-panic",
                    message: format!("`{pat}` in a kernel hot path; propagate the error instead"),
                });
            }
        }
    }
    findings
}

/// Rule 3: every top-level `pub fn` in the sparse ops file that is not
/// itself a `try_*` function must have a `try_*` twin.
pub fn check_try_twins(file: &str, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let mut names: Vec<(usize, String)> = Vec::new();
    let mut depth = 0usize;
    for (i, line) in stripped.lines().enumerate() {
        if depth == 0 {
            if let Some(name) = pub_fn_name(line) {
                names.push((i + 1, name));
            }
        }
        depth = next_depth(depth, line);
    }
    let mut findings = Vec::new();
    for (line, name) in &names {
        if name.starts_with("try_") {
            continue;
        }
        let twin = format!("try_{name}");
        if !names.iter().any(|(_, n)| *n == twin) {
            findings.push(Finding {
                file: file.to_string(),
                line: *line,
                rule: "try-twin",
                message: format!("public sparse op `{name}` has no fallible `{twin}` twin"),
            });
        }
    }
    findings
}

/// Rule 4: the enabled and disabled implementations of a feature-gated
/// pair (`pair` names the two files, enabled first) must expose the same
/// public items with the same signatures.
pub fn check_telemetry_parity(
    pair: (&str, &str),
    enabled_src: &str,
    disabled_src: &str,
) -> Vec<Finding> {
    let enabled = public_items(enabled_src);
    let disabled = public_items(disabled_src);
    let mut findings = Vec::new();
    for item in &enabled {
        if !disabled.contains(item) {
            findings.push(parity_finding(pair.1, item, "missing or differs"));
        }
    }
    for item in &disabled {
        if !enabled.contains(item) {
            findings.push(parity_finding(pair.0, item, "missing or differs"));
        }
    }
    findings
}

/// Rule 5: raw thread-spawning primitives are banned outside the
/// execution runtime crate — kernels launch through
/// `megablocks_exec::LaunchPlan`, never by spawning threads themselves.
/// The `#[cfg(test)]` portion of a file is exempt, like the hot-path rule.
pub fn check_raw_parallelism(file: &str, src: &str) -> Vec<Finding> {
    const BANNED: [&str; 4] = [
        "crossbeam::thread",
        "thread::spawn",
        "thread::scope",
        "thread::Builder",
    ];
    let stripped = strip_comments_and_strings(src);
    let mut findings = Vec::new();
    for (i, (code, orig)) in stripped.lines().zip(src.lines()).enumerate() {
        // Everything below the test module is exempt.
        if orig.contains("#[cfg(test)]") {
            break;
        }
        for pat in BANNED {
            if code.contains(pat) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: i + 1,
                    rule: "raw-parallelism",
                    message: format!(
                        "`{pat}` outside crates/exec; launch through \
                         megablocks_exec::LaunchPlan instead"
                    ),
                });
            }
        }
    }
    findings
}

fn parity_finding(file: &str, item: &str, what: &str) -> Finding {
    Finding {
        file: file.to_string(),
        line: 0,
        rule: "telemetry-parity",
        message: format!("public item `{item}` {what} in this implementation"),
    }
}

/// Extracts normalized public item signatures: `struct Name`, `enum Name`,
/// and `pub fn` signatures (free functions and inherent-impl methods,
/// prefixed with their owning type).
fn public_items(src: &str) -> Vec<String> {
    let stripped = strip_comments_and_strings(src);
    let lines: Vec<&str> = stripped.lines().collect();
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut impl_owner: Option<(String, usize)> = None; // (type, entry depth)
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        let trimmed = line.trim_start();
        if depth == 0 {
            if let Some(rest) = trimmed
                .strip_prefix("pub struct ")
                .or_else(|| trimmed.strip_prefix("pub enum "))
            {
                let name: String = ident_prefix(rest);
                let kind = if trimmed.starts_with("pub struct") {
                    "struct"
                } else {
                    "enum"
                };
                items.push(format!("{kind} {name}"));
            } else if let Some(rest) = trimmed.strip_prefix("impl ") {
                // Inherent impls only: `impl Trait for Type` adds no public
                // items of its own.
                if !contains_word(rest, "for") {
                    impl_owner = Some((ident_prefix(rest), depth));
                }
            }
        }
        let in_impl = matches!(&impl_owner, Some((_, d)) if depth == d + 1);
        if (depth == 0 || in_impl) && trimmed.starts_with("pub fn ") {
            // Capture the signature, possibly spanning lines, up to the
            // body's `{` or a trailing `;`.
            let mut sig = String::new();
            let mut j = i;
            loop {
                let l = lines[j];
                let end = l.find('{').or_else(|| l.find(';'));
                match end {
                    Some(pos) => {
                        sig.push_str(&l[..pos]);
                        break;
                    }
                    None => {
                        sig.push_str(l);
                        sig.push(' ');
                    }
                }
                j += 1;
                if j == lines.len() {
                    break;
                }
            }
            let owner = match &impl_owner {
                Some((name, d)) if depth == *d + 1 => format!("{name}::"),
                _ => String::new(),
            };
            items.push(format!("{owner}{}", normalize_signature(&sig)));
        }
        let new_depth = next_depth(depth, line);
        if let Some((_, d)) = &impl_owner {
            if new_depth <= *d && line.contains('}') {
                impl_owner = None;
            }
        }
        depth = new_depth;
        i += 1;
    }
    items
}

/// Collapses whitespace and strips the `_` prefix convention off unused
/// parameter names so `(&self, _n: u64)` equals `(&self, n: u64)`.
fn normalize_signature(sig: &str) -> String {
    let collapsed = sig.split_whitespace().collect::<Vec<_>>().join(" ");
    collapsed.replace("(_", "(").replace(", _", ", ")
}

/// The leading Rust identifier of `s`.
fn ident_prefix(s: &str) -> String {
    s.chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// The name of a top-level `pub fn` declared on this (stripped) line.
fn pub_fn_name(line: &str) -> Option<String> {
    let rest = line.trim_start().strip_prefix("pub fn ")?;
    let name = ident_prefix(rest);
    (!name.is_empty()).then_some(name)
}

/// Brace depth after processing one stripped line starting at `depth`.
fn next_depth(depth: usize, line: &str) -> usize {
    let mut d = depth;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d = d.saturating_sub(1),
            _ => {}
        }
    }
    d
}

/// Whether `word` occurs in `s` delimited by non-identifier characters.
fn contains_word(s: &str, word: &str) -> bool {
    let bytes = s.as_bytes();
    let mut start = 0;
    while let Some(pos) = s[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replaces comments and string/char literals with spaces, preserving the
/// line structure, so the lints only ever match real code tokens.
fn strip_comments_and_strings(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                // Line comment: blank to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                // Block comment: blank through the closing `*/`.
                out.push_str("  ");
                i += 2;
                while i < chars.len() {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        out.push_str("  ");
                        i += 2;
                        break;
                    }
                    out.push(if chars[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            '"' => {
                // String literal (escape-aware): blank the contents.
                out.push(' ');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => {
                            out.push_str("  ");
                            i += 2;
                        }
                        '"' => {
                            out.push(' ');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            out.push('\n');
                            i += 1;
                        }
                        _ => {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: `'x'` / `'\n'` are literals;
                // `'a` followed by anything else is a lifetime.
                if next == Some('\\') {
                    out.push_str("    ");
                    i += 3; // ' \ x
                    if chars.get(i) == Some(&'\'') {
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') {
                    out.push_str("   ");
                    i += 3;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// All `.rs` files under `dir`, recursively, skipping `target` directories.
fn rust_sources(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                if entry.file_name() != "target" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_lint_accepts_commented_unsafe() {
        let src = "fn f(v: &[f32]) -> f32 {\n    // SAFETY: i < v.len() checked above.\n    unsafe { *v.get_unchecked(0) }\n}\n";
        assert!(check_safety_comments("x.rs", src).is_empty());
    }

    #[test]
    fn safety_lint_flags_bare_unsafe() {
        let src = "fn f(v: &[f32]) -> f32 {\n    unsafe { *v.get_unchecked(0) }\n}\n";
        let f = check_safety_comments("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_lint_ignores_comments_and_strings() {
        let src =
            "// unsafe is discussed here only\nfn f() -> &'static str {\n    \"unsafe { }\"\n}\n";
        assert!(check_safety_comments("x.rs", src).is_empty());
    }

    #[test]
    fn safety_lint_reads_multi_line_comment_blocks() {
        let src = "fn f(v: &[f32]) -> f32 {\n    // SAFETY: index is bounded by the loop\n    // condition three lines up.\n    unsafe { *v.get_unchecked(0) }\n}\n";
        assert!(check_safety_comments("x.rs", src).is_empty());
    }

    #[test]
    fn hot_path_lint_flags_unwrap_and_expect() {
        let src = "fn k(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\nfn j(v: Option<u32>) -> u32 {\n    v.expect(\"present\")\n}\n";
        let f = check_hot_path_panics("x.rs", src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "hot-path-panic"));
    }

    #[test]
    fn hot_path_lint_exempts_test_module_and_docs() {
        let src = "/// Call `.unwrap()` on the result.\nfn k() {}\n#[cfg(test)]\nmod tests {\n    fn t(v: Option<u32>) { v.unwrap(); }\n}\n";
        assert!(check_hot_path_panics("x.rs", src).is_empty());
    }

    #[test]
    fn hot_path_lint_allows_unwrap_or_else() {
        let src = "fn k(v: Option<u32>) -> u32 {\n    v.unwrap_or_else(|| 0)\n}\n";
        assert!(check_hot_path_panics("x.rs", src).is_empty());
    }

    #[test]
    fn try_twin_lint_requires_twin() {
        let with_twin = "pub fn sdd() {}\npub fn try_sdd() {}\n";
        assert!(check_try_twins("x.rs", with_twin).is_empty());
        let without = "pub fn sdd() {}\npub fn dsd() {}\npub fn try_dsd() {}\n";
        let f = check_try_twins("x.rs", without);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`sdd`"));
    }

    #[test]
    fn try_twin_lint_ignores_nested_functions() {
        let src =
            "mod helpers {\n    pub fn internal() {}\n}\npub fn op() {}\npub fn try_op() {}\n";
        assert!(check_try_twins("x.rs", src).is_empty());
    }

    #[test]
    fn parity_lint_accepts_identical_apis() {
        let enabled = "pub struct Counter;\nimpl Counter {\n    pub fn add(&self, n: u64) { let _ = n; }\n}\npub fn counter(name: &'static str) -> Counter { Counter }\n";
        let disabled = "pub struct Counter;\nimpl Counter {\n    pub fn add(&self, _n: u64) {}\n}\npub fn counter(_name: &'static str) -> Counter { Counter }\n";
        assert!(check_telemetry_parity(("e.rs", "d.rs"), enabled, disabled).is_empty());
    }

    #[test]
    fn parity_lint_flags_missing_method() {
        let enabled = "pub struct Counter;\nimpl Counter {\n    pub fn add(&self, n: u64) { let _ = n; }\n    pub fn get(&self) -> u64 { 0 }\n}\n";
        let disabled =
            "pub struct Counter;\nimpl Counter {\n    pub fn add(&self, _n: u64) {}\n}\n";
        let f = check_telemetry_parity(("e.rs", "d.rs"), enabled, disabled);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Counter::pub fn get"));
    }

    #[test]
    fn parity_lint_flags_signature_drift() {
        let enabled = "pub fn gauge(name: &'static str) -> Gauge { Gauge }\n";
        let disabled = "pub fn gauge(name: &str) -> Gauge { Gauge }\n";
        let f = check_telemetry_parity(("e.rs", "d.rs"), enabled, disabled);
        assert_eq!(f.len(), 2); // each side reports the other's variant missing
    }

    #[test]
    fn raw_parallelism_lint_flags_spawns() {
        let src = "fn k() {\n    std::thread::spawn(|| {});\n    crossbeam::thread::scope(|s| {}).unwrap();\n}\n";
        let f = check_raw_parallelism("x.rs", src);
        assert!(f.len() >= 2);
        assert!(f.iter().all(|f| f.rule == "raw-parallelism"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn raw_parallelism_lint_exempts_tests_and_comments() {
        let src = "// thread::spawn is discussed here only\nfn k() {}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(check_raw_parallelism("x.rs", src).is_empty());
    }

    fn site_fixture(injected: &str) -> String {
        format!(
            "pub const DEMO_SITE: Site = Site {{\n    name: \"demo.site\",\n    injected: \"{injected}\",\n    detected: \"resilience.detected.demo.site\",\n    recovered: \"resilience.recovered.demo.site\",\n}};\n"
        )
    }

    #[test]
    fn fault_site_parser_reads_the_catalogue_fields() {
        let sites = parse_fault_sites(&site_fixture("resilience.injected.demo.site"));
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].ident, "DEMO_SITE");
        assert_eq!(sites[0].name, "demo.site");
        assert_eq!(sites[0].line, 1);
    }

    #[test]
    fn fault_site_lint_accepts_conforming_counters() {
        let sites = parse_fault_sites(&site_fixture("resilience.injected.demo.site"));
        assert!(check_fault_site_counters("sites.rs", &sites).is_empty());
    }

    #[test]
    fn fault_site_lint_flags_counter_drift() {
        let sites = parse_fault_sites(&site_fixture("resilience.fired.demo.site"));
        let f = check_fault_site_counters("sites.rs", &sites);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "fault-site-telemetry");
        assert!(f[0].message.contains("resilience.injected.demo.site"));
    }

    #[test]
    fn fault_site_lint_flags_unreferenced_sites() {
        let sites = parse_fault_sites(&site_fixture("resilience.injected.demo.site"));
        let wired = "use resilience::sites::DEMO_SITE;\n";
        assert!(check_fault_site_references("sites.rs", &sites, wired).is_empty());
        let unwired = "use resilience::sites::OTHER_SITE;\n";
        let f = check_fault_site_references("sites.rs", &sites, unwired);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("never referenced"));
    }

    #[test]
    fn stripper_preserves_line_count_and_braces_in_strings() {
        let src = "fn f() {\n    let s = \"{ not a brace }\";\n    let c = '}';\n}\n";
        let stripped = strip_comments_and_strings(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert_eq!(next_depth(0, stripped.lines().nth(1).unwrap()), 0);
        // The whole function still balances.
        let d = stripped.lines().fold(0, next_depth);
        assert_eq!(d, 0);
    }
}

//! End-to-end seeded-violation checks: build a throwaway mini-workspace
//! on disk with one deliberate violation per new rule, run the full lint
//! pass over it, and assert each rule fires exactly where seeded — and
//! that a justified `// audit: allow(...)` suppression removes a finding
//! while an unjustified one becomes a finding itself. This proves the
//! rules are non-vacuous through the same entry point CI uses.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use megablocks_audit::run_all_lints;

/// The demo crate: one seed each for `feature-gate-parity`,
/// `error-exhaustive` and `unsafe-safety-format`.
const DEMO_LIB: &str = r#"//! Seeded-violation fixture.

/// Gated on telemetry with no opposite-branch twin anywhere.
#[cfg(feature = "telemetry")]
pub fn gated_without_twin() {}

/// Audited error enum with an unconstructed variant.
pub enum EpError {
    /// Constructed in `make_error`.
    Used,
    /// Never constructed anywhere in the fixture.
    NeverBuilt,
}

/// Constructs only `EpError::Used`.
pub fn make_error() -> EpError {
    EpError::Used
}

/// The SAFETY justification below is too short to say anything.
pub fn thin_justification() -> usize {
    // SAFETY: fine
    let p = unsafe { core::ptr::null::<u8>().is_null() };
    usize::from(p)
}
"#;

/// A fixture standing in for the hot-path sparse ops file: a justified
/// suppression (must silence the finding), an unsuppressed unwrap (must
/// still fire) and a justification-free allow comment (a finding itself).
const HOT_OPS: &str = r#"//! Hot-path fixture.

/// Suppressed unwrap: the allow comment above the line silences it.
pub fn hot() -> usize {
    let v = [1usize];
    // audit: allow(hot-path-panic) -- fixture: the index exists by construction
    let first = v.first().unwrap();
    *first
}

/// Fallible twin for `hot`.
pub fn try_hot() -> Option<usize> {
    Some(1)
}

/// Unsuppressed unwrap: `hot-path-panic` must fire on this one.
pub fn try_second() -> usize {
    let v = [2usize];
    *v.first().unwrap()
}

// audit: allow(hot-path-panic)
/// The allow comment above has no `-- justification`.
pub fn try_unjustified() -> usize {
    2
}
"#;

fn write_fixture() -> PathBuf {
    let root = std::env::temp_dir().join(format!("mb-audit-seeded-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let demo = root.join("crates/demo/src");
    let sparse = root.join("crates/sparse/src");
    let telemetry = root.join("crates/telemetry/src");
    fs::create_dir_all(&demo).expect("create fixture dirs");
    fs::create_dir_all(&sparse).expect("create fixture dirs");
    fs::create_dir_all(&telemetry).expect("create fixture dirs");
    fs::write(demo.join("lib.rs"), DEMO_LIB).expect("write demo lib");
    fs::write(sparse.join("ops.rs"), HOT_OPS).expect("write hot ops");
    // The telemetry-parity rule refuses to pass vacuously on a missing
    // pair file, so the fixture carries empty (trivially agreeing) pairs.
    for pair in [
        ("enabled.rs", "disabled.rs"),
        ("trace_enabled.rs", "trace_disabled.rs"),
    ] {
        fs::write(telemetry.join(pair.0), "//! fixture\n").expect("write telemetry pair");
        fs::write(telemetry.join(pair.1), "//! fixture\n").expect("write telemetry pair");
    }
    // Likewise the fault-site rule needs its (empty) site catalogue.
    let resilience = root.join("crates/resilience/src");
    fs::create_dir_all(&resilience).expect("create fixture dirs");
    fs::write(resilience.join("sites.rs"), "//! fixture\n").expect("write fault sites");
    root
}

#[test]
fn seeded_violations_fire_and_suppressions_apply() {
    let root = write_fixture();
    let findings = run_all_lints(&root).expect("fixture workspace lexes");

    let mut by_rule: BTreeMap<&str, Vec<(&str, usize)>> = BTreeMap::new();
    for f in &findings {
        by_rule
            .entry(f.rule)
            .or_default()
            .push((f.file.as_str(), f.line));
    }
    let report = || {
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };

    // The three new static rules fire exactly once each, where seeded.
    let gate = &by_rule["feature-gate-parity"];
    assert_eq!(gate.len(), 1, "feature-gate-parity findings:\n{}", report());
    assert_eq!(gate[0].0, "crates/demo/src/lib.rs");

    let exhaustive = &by_rule["error-exhaustive"];
    assert_eq!(
        exhaustive.len(),
        1,
        "error-exhaustive findings:\n{}",
        report()
    );
    assert_eq!(exhaustive[0].0, "crates/demo/src/lib.rs");
    let never_built_line = DEMO_LIB
        .lines()
        .position(|l| l.contains("NeverBuilt"))
        .expect("fixture has NeverBuilt")
        + 1;
    assert_eq!(exhaustive[0].1, never_built_line);

    let safety = &by_rule["unsafe-safety-format"];
    assert_eq!(
        safety.len(),
        1,
        "unsafe-safety-format findings:\n{}",
        report()
    );
    assert_eq!(safety[0].0, "crates/demo/src/lib.rs");

    // The justification-free allow comment is itself a finding...
    let unjustified = &by_rule["suppression-justification"];
    assert_eq!(
        unjustified.len(),
        1,
        "suppression-justification findings:\n{}",
        report()
    );
    assert_eq!(unjustified[0].0, "crates/sparse/src/ops.rs");

    // ...while the justified suppression silenced its unwrap: only the
    // unsuppressed one remains, on the `try_second` body line.
    let panics = &by_rule["hot-path-panic"];
    assert_eq!(panics.len(), 1, "hot-path-panic findings:\n{}", report());
    let unsuppressed_line = HOT_OPS
        .lines()
        .position(|l| l.contains("*v.first().unwrap()"))
        .expect("fixture has the unsuppressed unwrap")
        + 1;
    assert_eq!(panics[0], ("crates/sparse/src/ops.rs", unsuppressed_line));

    // Nothing else fires on the fixture.
    let expected = [
        "feature-gate-parity",
        "error-exhaustive",
        "unsafe-safety-format",
        "suppression-justification",
        "hot-path-panic",
    ];
    for rule in by_rule.keys() {
        assert!(
            expected.contains(rule),
            "unexpected rule `{rule}` fired:\n{}",
            report()
        );
    }

    fs::remove_dir_all(&root).ok();
}

//! The lint pass must hold on the workspace itself — this is the same
//! check CI runs via `cargo run -p megablocks-audit -- lint`, kept as a
//! test so `cargo test` alone catches regressions.

use megablocks_audit::{run_all_lints, workspace_root};

#[test]
fn workspace_is_lint_clean() {
    let findings = run_all_lints(&workspace_root()).expect("workspace sources readable");
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

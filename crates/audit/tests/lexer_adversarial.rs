//! Adversarial lexer properties: the lexer must never panic, never
//! produce a non-tiling token stream, and must round-trip byte-exactly on
//! every input it accepts — including pathological fragment soup built
//! from the constructs most likely to desynchronize a hand-rolled lexer
//! (unbalanced quotes, nested comment markers, raw-string hash fences,
//! lifetimes vs char literals, multibyte unicode).

use megablocks_audit::lexer::{lex, round_trip};
use megablocks_audit::model::SourceFile;
use proptest::prelude::*;

/// Fragments chosen to collide: string openers without closers, comment
/// markers inside strings, hash fences of different depths, `'` in both
/// its lifetime and char-literal roles, and multibyte characters that
/// punish byte-offset arithmetic.
const FRAGMENTS: &[&str] = &[
    "\"",
    "\\\"",
    "\\\\",
    "'",
    "'a",
    "'a'",
    "'\\n'",
    "r\"",
    "r#\"",
    "\"#",
    "r##\"x\"##",
    "//",
    "/*",
    "*/",
    "/**/",
    "/* /* */",
    "\n",
    " ",
    "fn main() {}",
    "let x = 1;",
    "#[cfg(feature = \"x\")]",
    "mod m { }",
    "0xFF",
    "1.5e-3",
    "über",
    "→",
    "🦀",
    "b\"bytes\"",
    "{",
    "}",
    "::",
    "macro_rules! m { () => {} }",
];

fn soup(parts: &[usize]) -> String {
    parts
        .iter()
        .map(|&i| FRAGMENTS[i % FRAGMENTS.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexing_fragment_soup_never_breaks_the_tiling(
        parts in proptest::collection::vec(0usize..1000, 0..40),
    ) {
        let src = soup(&parts);
        // Accept or reject, but never panic and never desynchronize.
        if let Ok(tokens) = lex(&src) {
            let mut offset = 0;
            for t in &tokens {
                prop_assert_eq!(t.start, offset, "gap at byte {} in {:?}", offset, src);
                prop_assert!(t.end > t.start, "empty token in {:?}", src);
                offset = t.end;
            }
            prop_assert_eq!(offset, src.len(), "tokens do not reach EOF of {:?}", src);
            prop_assert_eq!(round_trip(&src, &tokens), src);
        }
    }

    #[test]
    fn item_parser_never_panics_on_fragment_soup(
        parts in proptest::collection::vec(0usize..1000, 0..40),
    ) {
        // The item walker must tolerate arbitrary (even unbalanced) token
        // streams: garbage in, error-or-best-effort out — never a panic.
        let src = soup(&parts);
        let _ = SourceFile::parse(&src);
    }

    #[test]
    fn lexing_is_deterministic(parts in proptest::collection::vec(0usize..1000, 0..30)) {
        let src = soup(&parts);
        let a = lex(&src);
        let b = lex(&src);
        match (a, b) {
            (Ok(ta), Ok(tb)) => prop_assert_eq!(ta, tb),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
            _ => prop_assert!(false, "nondeterministic accept/reject on {:?}", src),
        }
    }
}

//! Golden-corpus check: the token model must hold on the workspace's own
//! sources. Every `.rs` file under `crates/` must lex losslessly (the
//! tokens tile the input and concatenate back to the exact bytes) and
//! parse into the item model. This is the strongest available fixture
//! set — real code, every construct the workspace actually uses — and it
//! grows with the codebase for free.

use std::fs;
use std::path::{Path, PathBuf};

use megablocks_audit::lexer::{lex, round_trip, TokenKind};
use megablocks_audit::model::SourceFile;
use megablocks_audit::workspace_root;

/// Every `.rs` file under `root` (recursive), sorted for stable output.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}"));
        for entry in entries {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[test]
fn every_workspace_source_round_trips_byte_identically() {
    let sources = rust_sources(&workspace_root().join("crates"));
    assert!(
        sources.len() > 20,
        "corpus unexpectedly small: {} files",
        sources.len()
    );
    for path in &sources {
        let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        let tokens = lex(&src).unwrap_or_else(|e| panic!("{}: lex failed: {e}", path.display()));
        // Tokens tile the input: contiguous, in order, covering all bytes.
        let mut offset = 0;
        for t in &tokens {
            assert_eq!(
                t.start,
                offset,
                "{}: gap or overlap at byte {offset} ({:?})",
                path.display(),
                t.kind
            );
            assert!(t.end > t.start, "{}: empty token", path.display());
            offset = t.end;
        }
        assert_eq!(
            offset,
            src.len(),
            "{}: tokens do not cover EOF",
            path.display()
        );
        // And concatenate back to the exact source bytes.
        assert_eq!(
            round_trip(&src, &tokens),
            src,
            "{}: round trip not byte-identical",
            path.display()
        );
    }
}

#[test]
fn every_workspace_source_parses_into_the_item_model() {
    let sources = rust_sources(&workspace_root().join("crates"));
    let mut total_items = 0usize;
    for path in &sources {
        let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        let sf =
            SourceFile::parse(&src).unwrap_or_else(|e| panic!("{}: parse: {e}", path.display()));
        total_items += sf.items.len();
    }
    // The model must actually see the workspace, not vacuously parse
    // empty item lists.
    assert!(
        total_items > 500,
        "suspiciously few items across the workspace: {total_items}"
    );
}

#[test]
fn corpus_line_numbers_are_consistent() {
    // Spot-check the lexer's line accounting against a straightforward
    // newline count on every file: the last token's line never exceeds
    // the file's line count.
    for path in rust_sources(&workspace_root().join("crates")) {
        let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        let tokens = lex(&src).unwrap_or_else(|e| panic!("{}: lex failed: {e}", path.display()));
        let lines = src.lines().count().max(1);
        if let Some(last) = tokens
            .iter()
            .rev()
            .find(|t| t.kind != TokenKind::Whitespace)
        {
            assert!(
                last.line <= lines,
                "{}: token line {} beyond file line count {}",
                path.display(),
                last.line,
                lines
            );
        }
    }
}

//! Figure 4 companion: GEMM throughput scaling on the CPU substrate, plus
//! the analytic A100 tile sweep itself (to keep its cost visible).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megablocks_gpusim::dense::gemm_throughput_tflops;
use megablocks_gpusim::{DeviceSpec, TileShape};
use megablocks_tensor::{init, matmul};

fn bench_cpu_gemm_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu_gemm");
    let mut rng = init::seeded_rng(1);
    for size in [64usize, 128, 256, 512] {
        let a = init::normal(size, size, 1.0, &mut rng);
        let b = init::normal(size, size, 1.0, &mut rng);
        g.throughput(Throughput::Elements((2 * size * size * size) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| matmul(&a, &b))
        });
    }
    g.finish();
}

fn bench_tile_model(c: &mut Criterion) {
    let dev = DeviceSpec::a100_sxm4_80gb();
    c.bench_function("a100_model_fig4_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for size in [512usize, 1024, 2048, 4096, 8192, 16384] {
                for tile in TileShape::CUTLASS_SWEEP {
                    acc += gemm_throughput_tflops(&dev, tile, size, size, size);
                }
            }
            acc
        })
    });
}

/// Short measurement settings: the CI box has one core and the benches
/// exist for regression *tracking*, not publication-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_cpu_gemm_sizes, bench_tile_model
}
criterion_main!(benches);

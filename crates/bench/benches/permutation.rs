//! Routing and permutation benchmarks: topology metadata construction
//! (including the transpose secondary index, §5.2's custom kernel),
//! padded gather/scatter, and the router itself.

use criterion::{criterion_group, criterion_main, Criterion};
use megablocks_core::{padded_gather, padded_scatter, PermuteInfo, Router};
use megablocks_sparse::{BlockSize, Topology};
use megablocks_tensor::init;
use rand::Rng;

fn bench_permutation(c: &mut Criterion) {
    let mut rng = init::seeded_rng(0);
    let experts = 16;
    let tokens = 4096;
    let hidden = 128;
    let block = BlockSize::new(32).expect("nonzero");

    let expert_indices: Vec<usize> = (0..tokens).map(|_| rng.gen_range(0..experts)).collect();
    let routing_weights = vec![1.0f32; tokens];
    let x = init::normal(tokens, hidden, 1.0, &mut rng);

    let mut g = c.benchmark_group("permutation");
    g.bench_function("permute_info_build", |b| {
        b.iter(|| PermuteInfo::with_alignment(&expert_indices, experts, 1, block.get()))
    });
    let info = PermuteInfo::with_alignment(&expert_indices, experts, 1, block.get());
    g.bench_function("topology_build_with_transpose_index", |b| {
        b.iter(|| Topology::for_moe(info.padded_tokens_per_expert(), 256, block).expect("aligned"))
    });
    g.bench_function("padded_gather", |b| b.iter(|| padded_gather(&x, &info)));
    let gathered = padded_gather(&x, &info);
    g.bench_function("padded_scatter", |b| {
        b.iter(|| padded_scatter(&gathered, &info, &routing_weights))
    });
    g.finish();

    let router = Router::new(hidden, experts, 1, &mut rng);
    c.bench_function("router_forward_4096_tokens", |b| {
        b.iter(|| router.forward(&x))
    });
}

/// Short measurement settings: the CI box has one core and the benches
/// exist for regression *tracking*, not publication-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_permutation
}
criterion_main!(benches);

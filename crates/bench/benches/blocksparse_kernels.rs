//! CPU benchmarks of the block-sparse kernels against their dense
//! equivalents — the execution-substrate counterpart of Figure 9 (the
//! A100-model version lives in `repro fig9`).
//!
//! The interesting comparisons:
//! * SDD on a block-diagonal topology vs a full dense GEMM of the same
//!   output shape (the sparse kernel should win by ~the sparsity factor);
//! * SDD vs batched matmul of the same useful FLOPs (near parity);
//! * DS^TD through transpose indices vs explicit transposition (§5.1.4).

use criterion::{criterion_group, criterion_main, Criterion};
use megablocks_sparse::{ops, BlockSize, BlockSparseMatrix, Topology};
use megablocks_tensor::{batched_matmul, init, matmul, BatchedMatrix};

struct Setup {
    topo: Topology,
    x: megablocks_tensor::Matrix,
    w1: megablocks_tensor::Matrix,
    h: BlockSparseMatrix,
    w2: megablocks_tensor::Matrix,
    dy: megablocks_tensor::Matrix,
    xb: BatchedMatrix,
    w1b: BatchedMatrix,
}

fn setup() -> Setup {
    // 8 experts, 64 tokens each, hidden 128, ffn 256, block 32.
    let experts = 8;
    let per_expert = 64;
    let hidden = 128;
    let ffn = 256;
    let block = BlockSize::new(32).expect("nonzero");
    let tokens = experts * per_expert;
    let topo = Topology::for_moe(&vec![per_expert; experts], ffn, block).expect("aligned");
    let mut rng = init::seeded_rng(0);
    let x = init::normal(tokens, hidden, 1.0, &mut rng);
    let w1 = init::normal(hidden, experts * ffn, 0.05, &mut rng);
    let w2 = init::normal(experts * ffn, hidden, 0.05, &mut rng);
    let h = ops::sdd(&x, &w1, &topo);
    let dy = init::normal(tokens, hidden, 1.0, &mut rng);
    let xb = BatchedMatrix::from_matrices(
        (0..experts)
            .map(|_| init::normal(per_expert, hidden, 1.0, &mut rng))
            .collect(),
    )
    .expect("uniform batch");
    let w1b = BatchedMatrix::from_matrices(
        (0..experts)
            .map(|_| init::normal(hidden, ffn, 0.05, &mut rng))
            .collect(),
    )
    .expect("uniform batch");
    Setup {
        topo,
        x,
        w1,
        h,
        w2,
        dy,
        xb,
        w1b,
    }
}

fn bench_kernels(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("blocksparse");

    g.bench_function("sdd_block_diagonal", |b| {
        b.iter(|| ops::sdd(&s.x, &s.w1, &s.topo))
    });
    g.bench_function("dense_gemm_same_shape", |b| {
        // Computes the full (mostly discarded) dense product.
        b.iter(|| matmul(&s.x, &s.w1))
    });
    g.bench_function("batched_matmul_same_flops", |b| {
        b.iter(|| batched_matmul(&s.xb, &s.w1b))
    });
    g.bench_function("dsd", |b| b.iter(|| ops::dsd(&s.h, &s.w2)));
    g.bench_function("sdd_t", |b| b.iter(|| ops::sdd_t(&s.dy, &s.w2, &s.topo)));
    g.bench_function("dst_d_transpose_indices", |b| {
        b.iter(|| ops::dst_d(&s.h, &s.dy))
    });
    g.bench_function("dst_d_explicit_transpose", |b| {
        b.iter(|| ops::dst_d_explicit(&s.h, &s.dy))
    });
    g.bench_function("ddt_s", |b| b.iter(|| ops::ddt_s(&s.x, &s.h)));
    g.finish();
}

/// Short measurement settings: the CI box has one core and the benches
/// exist for regression *tracking*, not publication-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_kernels
}
criterion_main!(benches);

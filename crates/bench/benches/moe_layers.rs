//! Layer-level CPU benchmarks: dropless MoE vs token-dropping MoE vs dense
//! FFN, forward and forward+backward.

use criterion::{criterion_group, criterion_main, Criterion};
use megablocks_core::{CapacityFactor, DenseFfn, DroplessMoe, DroppingMoe, MoeConfig};
use megablocks_tensor::init;

fn cfg() -> MoeConfig {
    MoeConfig::new(64, 128, 8).with_block_size(16)
}

fn bench_moe_layers(c: &mut Criterion) {
    let mut rng = init::seeded_rng(0);
    let dropless = DroplessMoe::new(cfg(), &mut rng);
    let dropping = DroppingMoe::new(cfg().with_capacity(CapacityFactor::Fixed(1.0)), &mut rng);
    let dynamic = DroppingMoe::new(cfg().with_capacity(CapacityFactor::Dynamic), &mut rng);
    let dense = DenseFfn::new(64, 8 * 128, &mut rng); // parameter-matched expert total
    let x = init::normal(256, 64, 1.0, &mut rng);

    let mut g = c.benchmark_group("moe_forward");
    g.bench_function("dmoe", |b| b.iter(|| dropless.forward(&x)));
    g.bench_function("dropping_cf1", |b| b.iter(|| dropping.forward(&x)));
    g.bench_function("dropping_dynamic", |b| b.iter(|| dynamic.forward(&x)));
    g.bench_function("dense_ffn", |b| b.iter(|| dense.forward(&x)));
    g.finish();

    let mut g = c.benchmark_group("moe_forward_backward");
    let dy = init::normal(256, 64, 0.1, &mut rng);
    g.bench_function("dmoe", |b| {
        b.iter_batched(
            || dropless.clone(),
            |mut layer| {
                let out = layer.forward(&x);
                layer.backward(&out.cache, &dy)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("dropping_dynamic", |b| {
        b.iter_batched(
            || dynamic.clone(),
            |mut layer| {
                let out = layer.forward(&x);
                layer.backward(&out.cache, &dy)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Short measurement settings: the CI box has one core and the benches
/// exist for regression *tracking*, not publication-grade statistics.
fn short_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}
criterion_group! {
    name = benches;
    config = short_config();
    targets = bench_moe_layers
}
criterion_main!(benches);

//! `megablocks-bench` — the bench crate's default binary: perf gating
//! and observability-artifact summarizers.
//!
//! ```text
//! cargo run --release -p megablocks-bench -- gate [flags]
//! cargo run -p megablocks-bench -- health results/health_fig2.json
//! cargo run -p megablocks-bench -- trace results/trace_fig2.json
//! ```
//!
//! Subcommands:
//!   gate    Re-run the exec launch benchmark (and, when the committed
//!           BENCH_kernel.json / BENCH_serve.json exist, the microkernel
//!           backend and serving-engine benchmarks) and compare against
//!           the committed baselines; nonzero exit on regression. Flags:
//!           --baseline <path>, --tolerance <frac>, --quick (shrink
//!           iterations), --inflate <factor> (synthetic slowdown, for
//!           proving the gate trips), --kernel-baseline <path>,
//!           --min-kernel-speedup <factor> (absolute tiled-vs-scalar
//!           floor, default 1.3), --kernel-tolerance <frac> (relative
//!           tolerance for the kernel speedups, default 0.5 — wider than
//!           the exec tolerance because 5-12x ratios swing more with
//!           machine load; the floor backstops the contract),
//!           --serve-baseline <path>, --min-serve-speedup <factor>
//!           (absolute batched-vs-sequential floor, default 1.1), and
//!           --serve-tolerance <frac> (default 0.6).
//!   health  Summarize a results/health_<cmd>.json MoE health report.
//!   trace   Summarize a Chrome-trace JSON export (lanes, span counts).

use std::collections::BTreeMap;
use std::process::exit;

use megablocks_bench::gate::{run_gate, GateConfig};
use megablocks_core::health::{parse_health_json, render_health_summary};
use megablocks_telemetry::{parse_chrome_trace, TracePhase};

fn usage() -> ! {
    eprintln!(
        "usage: megablocks-bench <gate|health|trace> [args]\n\
         \n\
         gate [--baseline <path>] [--tolerance <frac>] [--quick] [--inflate <factor>]\n\
         \x20    [--kernel-baseline <path>] [--min-kernel-speedup <factor>]\n\
         \x20    [--kernel-tolerance <frac>] [--serve-baseline <path>]\n\
         \x20    [--min-serve-speedup <factor>] [--serve-tolerance <frac>]\n\
         health <health_json_path>\n\
         trace <trace_json_path>"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gate") => exit(gate_cmd(&args[1..])),
        Some("health") => exit(health_cmd(&args[1..])),
        Some("trace") => exit(trace_cmd(&args[1..])),
        _ => usage(),
    }
}

fn gate_cmd(args: &[String]) -> i32 {
    let mut cfg = GateConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("gate: {flag} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => cfg.baseline = value("--baseline").into(),
            "--trace-baseline" => cfg.trace_baseline = value("--trace-baseline").into(),
            "--kernel-baseline" => cfg.kernel_baseline = value("--kernel-baseline").into(),
            "--serve-baseline" => cfg.serve_baseline = value("--serve-baseline").into(),
            "--serve-tolerance" => {
                cfg.serve_tolerance = value("--serve-tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("gate: --serve-tolerance expects a fraction like 0.5");
                    exit(2);
                })
            }
            "--min-serve-speedup" => {
                cfg.min_serve_speedup = value("--min-serve-speedup").parse().unwrap_or_else(|_| {
                    eprintln!("gate: --min-serve-speedup expects a factor like 1.1");
                    exit(2);
                })
            }
            "--kernel-tolerance" => {
                cfg.kernel_tolerance = value("--kernel-tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("gate: --kernel-tolerance expects a fraction like 0.5");
                    exit(2);
                })
            }
            "--min-kernel-speedup" => {
                cfg.min_kernel_speedup =
                    value("--min-kernel-speedup").parse().unwrap_or_else(|_| {
                        eprintln!("gate: --min-kernel-speedup expects a factor like 1.3");
                        exit(2);
                    })
            }
            "--tolerance" => {
                cfg.tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("gate: --tolerance expects a fraction like 0.25");
                    exit(2);
                })
            }
            "--inflate" => {
                cfg.inflate = value("--inflate").parse().unwrap_or_else(|_| {
                    eprintln!("gate: --inflate expects a factor like 2.0");
                    exit(2);
                })
            }
            "--quick" => cfg.iter_scale = 0.2,
            other => {
                eprintln!("gate: unknown flag {other:?}");
                exit(2);
            }
        }
    }
    run_gate(&cfg)
}

fn health_cmd(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("health: cannot read {path}: {e}");
            return 2;
        }
    };
    match parse_health_json(&src) {
        Ok(records) => {
            print!("{}", render_health_summary(&records));
            if let Some(worst) = records
                .iter()
                .max_by(|a, b| a.imbalance.total_cmp(&b.imbalance))
            {
                println!(
                    "worst step: {} (imbalance {:.4}, padding overhead {:.4}, drop rate {:.4})",
                    worst.step, worst.imbalance, worst.padding_overhead, worst.drop_rate
                );
            }
            0
        }
        Err(e) => {
            eprintln!("health: cannot parse {path}: {e}");
            2
        }
    }
}

fn trace_cmd(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace: cannot read {path}: {e}");
            return 2;
        }
    };
    let snap = match parse_chrome_trace(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace: cannot parse {path}: {e}");
            return 2;
        }
    };
    println!(
        "{}: {} lanes, {} events ({} dropped)",
        path,
        snap.lanes.len(),
        snap.events.len(),
        snap.dropped_events
    );
    for lane in &snap.lanes {
        let n = snap.events.iter().filter(|e| e.tid == lane.tid).count();
        println!("  lane {:>3} {:<24} {n} events", lane.tid, lane.name);
    }
    // Top span families by total duration.
    let mut totals: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for ev in &snap.events {
        if let TracePhase::Complete { dur_us } = ev.phase {
            let t = totals.entry(ev.name.as_str()).or_insert((0, 0));
            t.0 += 1;
            t.1 += dur_us;
        }
    }
    let mut rows: Vec<_> = totals.into_iter().collect();
    rows.sort_by_key(|(_, (_, total))| std::cmp::Reverse(*total));
    println!("top span families:");
    for (name, (calls, total_us)) in rows.into_iter().take(12) {
        println!("  {name:<34} {calls:>8} calls {total_us:>12} µs total");
    }
    println!("open in chrome://tracing or https://ui.perfetto.dev");
    0
}
